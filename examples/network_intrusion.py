#!/usr/bin/env python3
"""Network intrusion detection: a Snort-style ruleset on the PAP.

The paper's motivating deployment: hundreds of signature rules
compiled into one NFA, scanning packet payloads at line rate.  This
example builds a Snort-like ruleset (literals, character classes,
unbounded gaps), generates Becchi-style traffic with match probability
0.75, and compares sequential AP execution against PAP on 1-rank and
4-rank boards — including what the enumeration machinery did
(flows planned, deactivated, converged, invalidated).

Run:  python examples/network_intrusion.py
"""

from __future__ import annotations

from repro import PAPConfig, ParallelAutomataProcessor, run_sequential
from repro.ap.geometry import BoardGeometry
from repro.workloads.regexgen import RegexSuiteParams, generate_ruleset
from repro.workloads.tracegen import pm_trace

TRAFFIC_BYTES = 120_000


def main() -> None:
    params = RegexSuiteParams(
        num_groups=12,
        patterns_per_group=20,
        class_fraction=0.25,
        dotstar_fraction=0.05,
        min_length=6,
        max_length=18,
    )
    automaton, patterns = generate_ruleset(params, seed=11, name="snortlike")
    print(
        f"ruleset: {len(patterns)} signatures -> "
        f"{automaton.num_states} STEs in {params.num_groups} rule groups"
    )

    traffic = pm_trace(automaton, TRAFFIC_BYTES, pm=0.75, seed=3)
    baseline = run_sequential(automaton, traffic)
    print(
        f"sequential: {len(baseline.reports)} alerts over "
        f"{TRAFFIC_BYTES // 1000} kB of traffic "
        f"({baseline.seconds() * 1e3:.2f} ms modeled)"
    )

    for ranks in (1, 4):
        config = PAPConfig(geometry=BoardGeometry(ranks=ranks))
        if ranks == 4:
            # 64 segments cut this capture into ~2 kB pieces, so the
            # fixed per-segment costs (state-vector readout, host
            # decode) would dwarf them.  Model a production-sized 8 MB
            # capture instead: shrink those constants by the same
            # factor, exactly as the benchmark harness does.
            config = PAPConfig(
                geometry=config.geometry,
                timing=config.timing.scaled_for_input(
                    len(traffic), 8 * 1024 * 1024
                ),
            )
        pap = ParallelAutomataProcessor(automaton, config=config)
        result = pap.run(traffic)
        assert result.reports == baseline.reports
        speedup = baseline.total_cycles / result.total_cycles
        suffix = " (modeled as an 8 MB capture)" if ranks == 4 else ""
        print(
            f"{ranks} rank(s): {result.num_segments} parallel segments, "
            f"speedup {speedup:.1f}x{suffix}"
            + (" [golden fallback]" if result.golden_fallback else "")
        )
        print(
            f"   flows: avg active {result.average_active_flows:.2f}, "
            f"{result.deactivations} deactivated, "
            f"{result.convergence_merges} converged, "
            f"{result.fiv_invalidations} FIV-killed; "
            f"false-path report amplification "
            f"{result.event_amplification:.2f}x"
        )


if __name__ == "__main__":
    main()

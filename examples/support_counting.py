#!/usr/bin/env python3
"""On-chip support counting with AP counter elements.

The D480 ships 768 saturating counters and 2,304 boolean elements per
device to augment pattern matching (paper Section 2.1).  The canonical
use is Apriori-style support counting: instead of streaming every
pattern occurrence to the host, a counter per candidate fires exactly
once when the candidate reaches the support threshold — turning a
chatty report stream into a handful of events.

This example mines SPM candidates over a transaction stream, attaches
one counter per candidate plus an AND-gate over two related candidates,
and contrasts the raw report volume with the counter event volume.

Run:  python examples/support_counting.py
"""

from __future__ import annotations

from collections import Counter

from repro.ap.counters import CounterBank, CounterMode
from repro.automata.execution import run_automaton
from repro.workloads.spm import spm_benchmark, transaction_trace

NUM_CANDIDATES = 40
SUPPORT_THRESHOLD = 5
STREAM_BYTES = 60_000


def main() -> None:
    automaton, candidates = spm_benchmark(num_patterns=NUM_CANDIDATES, seed=8)
    stream = transaction_trace(
        candidates, STREAM_BYTES, seed=3, hit_fraction=0.5
    )
    result = run_automaton(automaton, stream)
    support = Counter(report.code for report in result.report_set)
    print(
        f"{NUM_CANDIDATES} candidates over {STREAM_BYTES // 1000} kB: "
        f"{len(result.reports)} raw report events"
    )

    bank = CounterBank()
    for code in range(NUM_CANDIDATES):
        inputs = [
            ste.sid
            for ste in automaton.states()
            if ste.reporting and ste.code == code
        ]
        bank.add_counter(inputs, SUPPORT_THRESHOLD, mode=CounterMode.LATCH)

    # A boolean element: fire when candidates 0 and 1 complete in the
    # same cycle (co-occurrence within one transaction tail).
    inputs_01 = [
        ste.sid
        for ste in automaton.states()
        if ste.reporting and ste.code in (0, 1)
    ]
    gate = bank.add_boolean("and", inputs_01)

    counter_events, boolean_firings = bank.process(result.reports)
    frequent = sorted(e.counter_id for e in counter_events)
    print(
        f"counters fired for {len(frequent)} frequent candidates "
        f"(threshold {SUPPORT_THRESHOLD}): {frequent[:10]}"
        + ("..." if len(frequent) > 10 else "")
    )
    print(
        f"host now drains {len(counter_events)} counter events instead of "
        f"{len(result.reports)} reports "
        f"({len(result.reports) / max(1, len(counter_events)):.0f}x less)"
    )
    if boolean_firings:
        offset, _ = boolean_firings[0]
        print(f"AND gate {gate}: candidates 0 and 1 co-fired at offset {offset}")
    else:
        print(f"AND gate {gate}: no same-cycle co-occurrence of 0 and 1")

    # The counters agree with host-side counting.
    expected = {
        code
        for code, count in support.items()
        if count >= SUPPORT_THRESHOLD
    }
    assert set(frequent) >= expected
    print("counter results verified against host-side support counting")


if __name__ == "__main__":
    main()

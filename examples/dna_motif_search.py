#!/usr/bin/env python3
"""Approximate DNA motif search with Hamming and Levenshtein automata.

Bioinformatics is the paper's second headline domain: matching motifs
in DNA within an error budget.  This example builds both distance
automata for a set of reference motifs, searches a synthetic genome,
cross-checks every match against brute-force oracles, and runs the
search in parallel on the PAP.

Run:  python examples/dna_motif_search.py
"""

from __future__ import annotations

import random

from repro import PAPConfig, ParallelAutomataProcessor, run_sequential
from repro.ap.geometry import BoardGeometry
from repro.automata.builder import merge_all
from repro.workloads.hamming import hamming_automaton, hamming_matches
from repro.workloads.levenshtein import (
    levenshtein_automaton,
    levenshtein_matches,
)

GENOME_BYTES = 60_000
MOTIF_LENGTH = 12
DISTANCE = 2


def synthetic_genome(motifs: list[bytes], seed: int = 5) -> bytes:
    rng = random.Random(seed)
    genome = bytearray(
        rng.choice(b"ACGT") for _ in range(GENOME_BYTES)
    )
    # Plant noisy copies of each motif.
    for position in range(800, GENOME_BYTES - MOTIF_LENGTH, 2500):
        noisy = bytearray(rng.choice(motifs))
        for _ in range(rng.randint(0, DISTANCE)):
            noisy[rng.randrange(len(noisy))] = rng.choice(b"ACGT")
        genome[position : position + len(noisy)] = noisy
    return bytes(genome)


def main() -> None:
    rng = random.Random(1)
    motifs = [
        bytes(rng.choice(b"ACGT") for _ in range(MOTIF_LENGTH))
        for _ in range(6)
    ]
    genome = synthetic_genome(motifs)
    print(f"searching {len(motifs)} motifs, length {MOTIF_LENGTH}, "
          f"distance {DISTANCE}, genome {GENOME_BYTES // 1000} kB")

    for kind, build, oracle in (
        ("Hamming", hamming_automaton, hamming_matches),
        ("Levenshtein", levenshtein_automaton, levenshtein_matches),
    ):
        machines = [
            build(motif, DISTANCE, report_code=code)
            for code, motif in enumerate(motifs)
        ]
        automaton = merge_all(machines, name=kind)

        baseline = run_sequential(automaton, genome)
        # Cross-check the automaton against the brute-force oracle.
        for code, motif in enumerate(motifs):
            automaton_hits = {
                r.offset for r in baseline.reports if r.code == code
            }
            assert automaton_hits == oracle(motif, genome, DISTANCE), (
                kind,
                code,
            )

        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=BoardGeometry(ranks=1))
        )
        result = pap.run(genome)
        assert result.reports == baseline.reports
        print(
            f"{kind:<12} {automaton.num_states:>5} states, "
            f"{len(baseline.reports):>4} matches, "
            f"speedup {baseline.total_cycles / result.total_cycles:.1f}x "
            f"on {result.num_segments} segments "
            f"({result.deactivations} flows deactivated)"
        )




if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sequential pattern mining over transaction streams (the SPM case).

Data mining is the paper's third domain: Apriori-style candidate
patterns matched against transaction streams, where NFA processing
takes 33-95% of execution time.  This example mines ordered item
patterns with within-transaction gap automata, shows how
connected-component merging collapses thousands of enumeration paths
into a handful of flows, and reports the PAP speedup.

Run:  python examples/itemset_mining.py
"""

from __future__ import annotations

from collections import Counter

from repro import PAPConfig, ParallelAutomataProcessor, run_sequential
from repro.ap.geometry import BoardGeometry
from repro.workloads.spm import spm_benchmark, transaction_trace

NUM_CANDIDATES = 300
STREAM_BYTES = 100_000


def main() -> None:
    automaton, candidates = spm_benchmark(
        num_patterns=NUM_CANDIDATES, seed=2
    )
    print(
        f"{NUM_CANDIDATES} candidate patterns -> "
        f"{automaton.num_states} states "
        f"(~{automaton.num_states // NUM_CANDIDATES} per candidate machine)"
    )

    stream = transaction_trace(
        candidates, STREAM_BYTES, seed=9, hit_fraction=0.1
    )
    baseline = run_sequential(automaton, stream)

    # Support counting: how often each candidate matched.
    support = Counter(report.code for report in baseline.reports)
    top = support.most_common(3)
    print(
        f"stream: {STREAM_BYTES // 1000} kB, "
        f"{len(baseline.reports)} pattern occurrences; top candidates: "
        + ", ".join(f"#{code} x{count}" for code, count in top)
    )

    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=BoardGeometry(ranks=1))
    )
    plan = pap.plan(stream)
    assert plan.partition_choice is not None
    print(
        f"partition symbol {chr(plan.partition_choice.symbol)!r} "
        f"(the transaction delimiter), enumeration range "
        f"{plan.partition_choice.range_size}, "
        f"max planned flows {plan.max_planned_flows}"
    )

    result = pap.run(stream)
    assert result.reports == baseline.reports
    print(
        f"speedup {baseline.total_cycles / result.total_cycles:.1f}x on "
        f"{result.num_segments} segments "
        f"(ideal {result.num_segments}x; avg active flows "
        f"{result.average_active_flows:.2f})"
    )


if __name__ == "__main__":
    main()

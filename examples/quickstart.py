#!/usr/bin/env python3
"""Quickstart: compile patterns, run them sequentially and in parallel.

Compiles a small ruleset to a homogeneous (ANML-style) automaton, runs
it over a synthetic byte stream on the sequential Automata Processor
baseline and on the Parallel Automata Processor, verifies both produce
identical matches, and prints the modeled speedup.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    ONE_RANK,
    PAPConfig,
    ParallelAutomataProcessor,
    compile_ruleset,
    run_sequential,
)

PATTERNS = [
    "virus[0-9]{2}",  # unanchored, bounded repetition
    "worm.{3}load",  # wildcard gap
    "^GET /",  # anchored header match
    "exploit|payload",  # alternation
]


def make_stream(length: int = 200_000, seed: int = 7) -> bytes:
    """Random text with pattern hits sprinkled in."""
    rng = random.Random(seed)
    alphabet = b"abcdefghijklmnopqrstuvwxyz /0123456789"
    stream = bytearray(rng.choice(alphabet) for _ in range(length))
    hits = [b"virus42", b"wormXYZload", b"exploit", b"payload"]
    for position in range(500, length - 20, 1500):
        hit = rng.choice(hits)
        stream[position : position + len(hit)] = hit
    stream[0:5] = b"GET /"
    return bytes(stream)


def main() -> None:
    automaton, stats = compile_ruleset(PATTERNS, name="quickstart")
    print(
        f"compiled {stats.num_rules} rules -> {automaton.num_states} states "
        f"({stats.compression:.0%} saved by prefix merging)"
    )

    data = make_stream()

    baseline = run_sequential(automaton, data)
    print(
        f"sequential AP: {baseline.symbol_cycles} symbol cycles, "
        f"{len(baseline.reports)} matches, "
        f"{baseline.seconds() * 1e3:.2f} ms modeled"
    )

    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=ONE_RANK)
    )
    result = pap.run(data)
    assert result.reports == baseline.reports, "PAP must match the baseline"

    choice = result.partition_choice
    assert choice is not None
    print(
        f"parallel AP:   {result.num_segments} segments, cut at symbol "
        f"{choice.symbol!r} (enumeration range {choice.range_size}), "
        f"{result.total_cycles} cycles"
    )
    print(
        f"speedup: {baseline.total_cycles / result.total_cycles:.1f}x "
        f"(ideal {result.num_segments}x); "
        f"avg active flows {result.average_active_flows:.2f}"
    )

    for report in sorted(result.reports)[:5]:
        print(
            f"  match: rule {report.code} at byte offset {report.offset}"
        )


if __name__ == "__main__":
    main()

"""Predictive-family rules (AP301/AP302): divergence-backed speedup
judgements under the uniform no-trace profile."""

import pytest

from repro.ap.geometry import BoardGeometry
from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.lint import LintConfig, Severity, run_lint
from repro.workloads.suite import build_benchmark

ONE_RANK = LintConfig(geometry=BoardGeometry(ranks=1))


def full_loop(length: int, name: str = "loop") -> Automaton:
    """A single-component full-label chain whose tail feeds back into
    the second state: every enumeration flow sits on a recurrent
    always-matching cycle, so the uniform divergence pass can kill
    none of them (one surviving flow per chain state)."""
    automaton = Automaton(name)
    prev = automaton.add_state(
        CharClass.full(), start=StartKind.START_OF_DATA
    )
    loop_head = None
    for index in range(length - 1):
        nxt = automaton.add_state(
            CharClass.full(), reporting=(index == length - 2)
        )
        automaton.add_edge(prev, nxt)
        if loop_head is None:
            loop_head = nxt
        prev = nxt
    automaton.add_edge(prev, loop_head)
    return automaton


class TestPredictedBlowupAP301:
    def test_fires_when_survivors_cap_speedup(self):
        # 9 survivors + ASG over 16 segments: predicted 1.6x < 2.0x.
        report = run_lint(
            full_loop(10), config=ONE_RANK, families=("predictive",)
        )
        [diag] = [d for d in report if d.code == "AP301"]
        assert diag.severity is Severity.WARNING
        assert diag.data["segments"] == 16
        assert diag.data["surviving_flows"] == 9
        assert diag.data["predicted_speedup"] == pytest.approx(1.6)
        assert "AP302" not in report.codes()

    def test_silent_when_speedup_clears_threshold(self):
        # 7 survivors: 16 / 8 = 2.0x, exactly at the payoff floor.
        report = run_lint(
            full_loop(8), config=ONE_RANK, families=("predictive",)
        )
        assert "AP301" not in report.codes()
        assert "AP302" not in report.codes()


class TestCrossoverAP302:
    def test_fires_when_survivors_reach_segment_count(self):
        report = run_lint(
            full_loop(20), config=ONE_RANK, families=("predictive",)
        )
        [diag] = [d for d in report if d.code == "AP302"]
        assert diag.severity is Severity.WARNING
        assert diag.data["surviving_flows"] == 19
        assert diag.data["surviving_flows"] + 1 >= diag.data["segments"]
        # The two predictive findings are disjoint by construction.
        assert "AP301" not in report.codes()

    def test_boundary_is_exact(self):
        # 15 survivors + 1 == 16 segments: the crossover line itself.
        report = run_lint(
            full_loop(16), config=ONE_RANK, families=("predictive",)
        )
        assert "AP302" in report.codes()
        assert "AP301" not in report.codes()


class TestPredictiveStaysQuiet:
    def test_acyclic_chain_resolves_cleanly(self):
        # Same widths, no back edge: the divergence pass kills every
        # flow at the chain depth, so parallelization is predicted fine.
        automaton = Automaton("acyclic")
        prev = automaton.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA
        )
        for _ in range(19):
            nxt = automaton.add_state(CharClass.full())
            automaton.add_edge(prev, nxt)
            prev = nxt
        report = run_lint(
            automaton, config=ONE_RANK, families=("predictive",)
        )
        assert report.codes() == set()

    def test_literal_ruleset_is_clean(self):
        automaton = Automaton("hub")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("abc"))
        report = run_lint(
            automaton, config=ONE_RANK, families=("predictive",)
        )
        assert report.codes() == set()

    def test_silent_without_a_placement(self):
        # Unplaceable replica: no segment count, nothing to predict
        # (capacity rules own that failure).
        tiny = LintConfig(
            geometry=BoardGeometry(
                ranks=1, devices_per_rank=1, stes_per_half_core=4
            )
        )
        report = run_lint(
            full_loop(10), config=tiny, families=("predictive",)
        )
        assert "AP301" not in report.codes()
        assert "AP302" not in report.codes()

    @pytest.mark.parametrize(
        "name", ["ExactMatch", "Ranges05", "Dotstar03", "Snort"]
    )
    def test_real_benchmarks_parallelize(self, name):
        # The evaluation suite measures 3-13x speedups; the predictive
        # family must not second-guess workloads that demonstrably scale.
        instance = build_benchmark(name, scale=0.05, seed=7)
        report = run_lint(
            instance.automaton, config=ONE_RANK, families=("predictive",)
        )
        assert report.codes() == set()

"""Each lint rule fires on a purpose-built bad automaton and stays
silent on a clean one."""

import pytest

from repro.ap.geometry import BoardGeometry
from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.lint import LintConfig, Severity, run_lint

TINY_BOARD = BoardGeometry(
    ranks=1, devices_per_rank=1, stes_per_half_core=4
)


def full_chain(length: int, name: str = "chain") -> Automaton:
    """START_OF_DATA head followed by full-label states, no self loops
    (so nothing is always-active and every symbol's range is wide)."""
    automaton = Automaton(name)
    prev = automaton.add_state(
        CharClass.full(), start=StartKind.START_OF_DATA
    )
    for _ in range(length - 1):
        nxt = automaton.add_state(CharClass.full())
        automaton.add_edge(prev, nxt)
        prev = nxt
    return automaton


class TestStructuralRules:
    def test_ap001_no_start_states(self):
        automaton = Automaton("nostart")
        automaton.add_state(CharClass.single("a"))
        report = run_lint(automaton, families=("structural",))
        assert "AP001" in report.codes()
        assert report.has_errors

    def test_ap002_empty_label(self):
        automaton = Automaton("empty")
        sid = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        bad = automaton.add_state(CharClass.empty())
        automaton.add_edge(sid, bad)
        report = run_lint(automaton, families=("structural",))
        [diag] = [d for d in report if d.code == "AP002"]
        assert diag.severity is Severity.ERROR
        assert diag.states == (bad,)

    def test_ap004_unreachable_state(self):
        automaton = Automaton("island")
        builder.literal(automaton, "ab")
        island = automaton.add_state(CharClass.single("z"))
        report = run_lint(automaton, families=("structural",))
        [diag] = [d for d in report if d.code == "AP004"]
        assert diag.severity is Severity.WARNING
        assert island in diag.states

    def test_ap005_dead_state(self):
        automaton = Automaton("dead")
        head = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        reporter = automaton.add_state(
            CharClass.single("b"), reporting=True
        )
        dead_end = automaton.add_state(CharClass.single("c"))
        automaton.add_edge(head, reporter)
        automaton.add_edge(head, dead_end)
        report = run_lint(automaton, families=("structural",))
        [diag] = [d for d in report if d.code == "AP005"]
        assert diag.states == (dead_end,)

    def test_ap005_silent_without_reporting_states(self):
        # No reporting states anywhere: dead-state analysis is vacuous
        # (a pure filter is legal), so AP005 must stay quiet.
        automaton = Automaton("filter")
        prev = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        for symbol in "bc":
            nxt = automaton.add_state(CharClass.single(symbol))
            automaton.add_edge(prev, nxt)
            prev = nxt
        report = run_lint(automaton, families=("structural",))
        assert "AP005" not in report.codes()
        assert "AP008" in report.codes()

    def test_ap006_reporting_successors(self):
        automaton = Automaton("loopy")
        sid = automaton.add_state(
            CharClass.single("a"),
            start=StartKind.ALL_INPUT,
            reporting=True,
        )
        automaton.add_edge(sid, sid)
        report = run_lint(automaton, families=("structural",))
        assert "AP006" in report.codes()

    def test_ap007_duplicate_report_codes_aggregated(self):
        automaton = Automaton("dupes")
        for _ in range(3):
            automaton.add_state(
                CharClass.single("a"),
                start=StartKind.ALL_INPUT,
                reporting=True,
                report_code=7,
            )
        report = run_lint(automaton, families=("structural",))
        diags = [d for d in report if d.code == "AP007"]
        assert len(diags) == 1  # aggregated, not one per code
        assert diags[0].states == (0, 1, 2)

    def test_ap009_stale_analysis_short_circuits(self):
        automaton = Automaton("stale")
        builder.literal(automaton, "ab")
        analysis = AutomatonAnalysis(automaton)
        automaton.add_state(CharClass.single("z"))
        report = run_lint(automaton, analysis=analysis)
        assert report.codes() == {"AP009"}
        assert report.has_errors

    def test_clean_ruleset_has_no_structural_errors(self):
        automaton = Automaton("clean")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
        report = run_lint(automaton, families=("structural",))
        assert not report.has_errors


class TestParallelizationRules:
    def test_ap101_oversized_symbol_range(self):
        automaton = full_chain(8, "wide")
        config = LintConfig(max_enumeration_range=4)
        report = run_lint(automaton, config=config, families=("parallel",))
        [diag] = [d for d in report if d.code == "AP101"]
        assert diag.severity is Severity.WARNING
        assert diag.data["range"] == 7  # head is parentless, excluded
        assert diag.data["threshold"] == 4

    def test_ap101_silent_below_threshold(self):
        automaton = full_chain(3, "narrow")
        config = LintConfig(max_enumeration_range=4)
        report = run_lint(automaton, config=config, families=("parallel",))
        assert "AP101" not in report.codes()

    def test_ap102_unit_blowup(self):
        automaton = full_chain(8, "units")
        config = LintConfig(max_flows=4)
        report = run_lint(automaton, config=config, families=("parallel",))
        [diag] = [d for d in report if d.code == "AP102"]
        assert diag.data["units"] == 7

    def test_ap103_flow_cache_overflow_single_component(self):
        automaton = full_chain(8, "flows")
        config = LintConfig(max_flows=4)
        report = run_lint(automaton, config=config, families=("parallel",))
        [diag] = [d for d in report if d.code == "AP103"]
        assert diag.data["flows"] == 7
        assert diag.data["components"] == 1

    def test_ap103_silent_when_components_absorb_units(self):
        # 8 disconnected two-state patterns: one unit per component, so
        # component merging packs everything into one flow.
        automaton = Automaton("many")
        for _ in range(8):
            head = automaton.add_state(
                CharClass.full(), start=StartKind.ALL_INPUT
            )
            tail = automaton.add_state(CharClass.single("x"))
            automaton.add_edge(head, tail)
        config = LintConfig(max_flows=4)
        report = run_lint(automaton, config=config, families=("parallel",))
        assert "AP103" not in report.codes()

    def test_ap104_single_component_note(self):
        automaton = full_chain(4, "one")
        report = run_lint(automaton, families=("parallel",))
        assert "AP104" in report.codes()

    def test_ap105_no_always_active_note(self):
        automaton = Automaton("noasg")
        builder.literal(automaton, "abc")
        report = run_lint(automaton, families=("parallel",))
        assert "AP105" in report.codes()

    def test_ap105_silent_with_hub(self):
        automaton = Automaton("hub")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
        report = run_lint(automaton, families=("parallel",))
        assert "AP105" not in report.codes()


class TestCapacityRules:
    def test_ap201_component_exceeds_half_core(self):
        automaton = full_chain(8, "big")
        config = LintConfig(geometry=TINY_BOARD)
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP201"]
        assert diag.severity is Severity.ERROR
        assert diag.data["size"] == 8

    def test_ap202_board_overflow(self):
        # Three 3-state components on a 2-half-core board of capacity 4:
        # every component fits a half-core, the replica does not fit.
        automaton = Automaton("wide")
        for _ in range(3):
            head = automaton.add_state(
                CharClass.single("a"), start=StartKind.START_OF_DATA
            )
            mid = automaton.add_state(CharClass.single("b"))
            tail = automaton.add_state(CharClass.single("c"))
            automaton.add_edge(head, mid)
            automaton.add_edge(mid, tail)
        geometry = BoardGeometry(
            ranks=1, devices_per_rank=1, stes_per_half_core=4
        )
        config = LintConfig(geometry=geometry)
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP202"]
        assert diag.severity is Severity.ERROR
        assert diag.data["needed"] == 3
        assert diag.data["available"] == 2
        assert "AP201" not in report.codes()

    def test_ap203_no_parallel_segments(self):
        # Two 3-state components fill both half-cores: replica fits,
        # but no second replica does.
        automaton = Automaton("snug")
        for _ in range(2):
            head = automaton.add_state(
                CharClass.single("a"), start=StartKind.START_OF_DATA
            )
            mid = automaton.add_state(CharClass.single("b"))
            tail = automaton.add_state(CharClass.single("c"))
            automaton.add_edge(head, mid)
            automaton.add_edge(mid, tail)
        config = LintConfig(geometry=TINY_BOARD)
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP203"]
        assert diag.severity is Severity.WARNING

    def test_ap204_output_region_overflow(self):
        automaton = Automaton("reporty")
        for _ in range(3):
            automaton.add_state(
                CharClass.single("a"),
                start=StartKind.ALL_INPUT,
                reporting=True,
            )
        config = LintConfig(reporting_elements_per_device=2)
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP204"]
        assert diag.severity is Severity.ERROR
        assert diag.data == {"reporting": 3, "budget": 2}

    def test_ap205_counter_budget(self):
        automaton = Automaton("counted")
        builder.literal(automaton, "ab")
        config = LintConfig(counters_used=1_000)  # > 768 per device
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP205"]
        assert diag.severity is Severity.ERROR
        assert diag.data["budget"] == 768

    def test_ap206_boolean_budget(self):
        automaton = Automaton("bools")
        builder.literal(automaton, "ab")
        config = LintConfig(booleans_used=3_000)  # > 2304 per device
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP206"]
        assert diag.data["budget"] == 2_304

    def test_ap207_routing_pressure(self):
        # Dense component: 4 states, every ordered pair an edge (12
        # edges > 2x4 proxy limit at factor 2 on a 4-STE half-core).
        automaton = Automaton("dense")
        sids = [
            automaton.add_state(
                CharClass.single("a"), start=StartKind.START_OF_DATA
            )
            for _ in range(4)
        ]
        for src in sids:
            for dst in sids:
                if src != dst:
                    automaton.add_edge(src, dst)
        config = LintConfig(geometry=TINY_BOARD, routing_edge_factor=2.0)
        report = run_lint(automaton, config=config, families=("capacity",))
        [diag] = [d for d in report if d.code == "AP207"]
        assert diag.data["edges"] == 12
        assert diag.data["limit"] == 8

    def test_capacity_clean_on_default_board(self):
        automaton = Automaton("ok")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("abc"))
        report = run_lint(automaton, families=("capacity",))
        assert not report.has_errors


class TestFamilies:
    def test_unknown_family_rejected(self):
        automaton = Automaton("x")
        builder.literal(automaton, "a")
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown rule"):
            run_lint(automaton, families=("bogus",))

    def test_family_restriction_filters_codes(self):
        automaton = Automaton("nostart")
        automaton.add_state(CharClass.single("a"))
        report = run_lint(automaton, families=("capacity",))
        assert all(d.code.startswith("AP2") for d in report)

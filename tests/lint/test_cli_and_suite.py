"""CLI wiring of ``repro lint`` and the suite-wide cleanliness bar:
every bundled benchmark generator must lint without errors."""

import json

import pytest

from repro.cli import main
from repro.lint import Severity, run_lint
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

SMALL = ["ExactMatch", "Ranges05", "Dotstar03"]


class TestLintCli:
    def test_lint_benchmark_text(self, capsys):
        exit_code = main(
            ["lint", "ExactMatch", "--scale", "0.05", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "error(s)" in out and "warning(s)" in out

    def test_lint_benchmark_json(self, capsys):
        exit_code = main(
            [
                "lint",
                "ExactMatch",
                "--scale",
                "0.05",
                "--format",
                "json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        [report] = payload["reports"]
        assert report["automaton"]
        for diagnostic in report["diagnostics"]:
            assert diagnostic["code"].startswith("AP")

    def test_lint_family_restriction(self, capsys):
        exit_code = main(
            [
                "lint",
                "ExactMatch",
                "--scale",
                "0.05",
                "--rules",
                "capacity",
                "--format",
                "json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        for diagnostic in payload["reports"][0]["diagnostics"]:
            assert diagnostic["code"].startswith("AP2")

    def test_lint_json_file_target(self, tmp_path, capsys):
        from repro.automata.anml import Automaton, StartKind
        from repro.automata.charclass import CharClass
        from repro.automata.serialization import dumps

        automaton = Automaton("from-file")
        automaton.add_state(
            CharClass.single("a"),
            start=StartKind.START_OF_DATA,
            reporting=True,
        )
        path = tmp_path / "tiny.json"
        path.write_text(dumps(automaton), encoding="utf-8")
        exit_code = main(["lint", str(path)])
        assert exit_code == 0
        assert "from-file" in capsys.readouterr().out

    def test_lint_unknown_target_exits(self):
        with pytest.raises(SystemExit, match="unknown lint target"):
            main(["lint", "NoSuchBenchmark"])

    def test_lint_broken_file_reports_instead_of_crashing(
        self, tmp_path, capsys
    ):
        # Files load WITHOUT Automaton.validate so the linter itself
        # reports AP002 (and exits 1) rather than raising.
        import json

        from repro.automata.anml import Automaton, StartKind
        from repro.automata.charclass import CharClass
        from repro.automata.serialization import automaton_to_dict

        automaton = Automaton("busted")
        automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        payload = automaton_to_dict(automaton)
        payload["states"][0]["label"] = "0"  # empty character class
        path = tmp_path / "busted.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        exit_code = main(["lint", str(path)])
        assert exit_code == 1
        assert "AP002" in capsys.readouterr().out

    def test_lint_unreadable_file_exits_cleanly(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(SystemExit, match="cannot load"):
            main(["lint", str(path)])

    def test_lint_unknown_family_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown rule families"):
            main(["lint", "ExactMatch", "--rules", "bogus"])

    def test_lint_fail_on_warning(self, capsys):
        # ExactMatch automata are single-component: AP104 (info) and
        # usually at least one warning-free run; pick a benchmark known
        # to warn (Dotstar03 has reporting hubs) and require exit 1 only
        # when warnings exist.
        exit_code = main(
            [
                "lint",
                "ExactMatch",
                "--scale",
                "0.05",
                "--fail-on",
                "warning",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        warnings = sum(
            1
            for report in payload["reports"]
            for diagnostic in report["diagnostics"]
            if diagnostic["severity"] in ("warning", "error")
        )
        assert exit_code == (1 if warnings else 0)


class TestSuiteCleanliness:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_lints_without_errors(self, name):
        instance = build_benchmark(name, scale=0.02, seed=7)
        report = run_lint(instance.automaton)
        errors = report.at_least(Severity.ERROR)
        assert not len(errors), [
            f"{d.code}: {d.message}" for d in errors
        ]

    def test_cli_suite_gate(self, capsys):
        # The same bar the CI job enforces, on a few small benchmarks
        # to keep the test fast.
        exit_code = main(
            ["lint", *SMALL, "--scale", "0.02", "--severity", "error"]
        )
        assert exit_code == 0

"""LintReport container, severity ordering, renderers, and registry."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    FAMILIES,
    REGISTRY,
    Diagnostic,
    LintReport,
    Severity,
    format_diagnostic,
    render_json,
    render_text,
    rules_for,
)


def _diag(code: str, severity: Severity, states=()) -> Diagnostic:
    return Diagnostic(
        code=code,
        rule="some-rule",
        severity=severity,
        message=f"message for {code}",
        automaton="toy",
        states=tuple(states),
    )


SAMPLE = LintReport(
    automaton="toy",
    diagnostics=(
        _diag("AP001", Severity.ERROR),
        _diag("AP004", Severity.WARNING, states=(3, 5)),
        _diag("AP008", Severity.INFO),
    ),
)


class TestSeverity:
    def test_total_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.WARNING
        assert max(Severity) is Severity.ERROR

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        with pytest.raises(ConfigurationError):
            Severity.parse("fatal")


class TestLintReport:
    def test_counts_and_codes(self):
        assert len(SAMPLE) == 3
        assert SAMPLE.has_errors
        assert SAMPLE.num_errors == 1
        assert SAMPLE.num_warnings == 1
        assert SAMPLE.num_infos == 1
        assert SAMPLE.codes() == {"AP001", "AP004", "AP008"}

    def test_at_least_filters(self):
        warnings_up = SAMPLE.at_least(Severity.WARNING)
        assert warnings_up.codes() == {"AP001", "AP004"}
        assert SAMPLE.at_least(Severity.INFO).codes() == SAMPLE.codes()
        assert not SAMPLE.at_least(Severity.ERROR).num_warnings

    def test_to_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(SAMPLE.to_dict()))
        assert payload["automaton"] == "toy"
        assert [d["code"] for d in payload["diagnostics"]] == [
            "AP001",
            "AP004",
            "AP008",
        ]
        assert payload["diagnostics"][1]["states"] == [3, 5]


class TestRenderers:
    def test_format_diagnostic_shape(self):
        line = format_diagnostic(_diag("AP004", Severity.WARNING, (3, 5)))
        assert line.startswith("toy: warning AP004")
        assert "states: 3, 5" in line

    def test_render_text_summary_line(self):
        text = render_text(SAMPLE)
        assert "1 error(s), 1 warning(s), 1 note(s)" in text
        assert "AP001" in text and "AP008" in text

    def test_render_text_severity_filter_keeps_summary(self):
        text = render_text(SAMPLE, min_severity=Severity.ERROR)
        assert "AP008" not in text
        # The summary still counts the whole report.
        assert "1 error(s), 1 warning(s), 1 note(s)" in text

    def test_render_json_is_valid_json(self):
        payload = json.loads(render_json([SAMPLE]))
        assert payload["reports"][0]["automaton"] == "toy"

    def test_render_json_severity_filter(self):
        payload = json.loads(
            render_json([SAMPLE], min_severity=Severity.WARNING)
        )
        codes = [
            d["code"] for d in payload["reports"][0]["diagnostics"]
        ]
        assert codes == ["AP001", "AP004"]


class TestRegistry:
    def test_codes_are_unique_and_well_formed(self):
        for code, registered in REGISTRY.items():
            assert code == registered.code
            assert code.startswith("AP") and code[2:].isdigit()
            assert registered.family in FAMILIES

    def test_rules_for_all_families_in_code_order(self):
        codes = [r.code for r in rules_for()]
        assert codes == sorted(codes)
        assert len(codes) == len(REGISTRY)

    def test_rules_for_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            rules_for(("structural", "vibes"))

    def test_every_family_has_rules(self):
        for family in FAMILIES:
            assert rules_for((family,))

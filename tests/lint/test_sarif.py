"""SARIF rendering and the shared ``--fail-on`` severity gate."""

import json

import pytest

from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import (
    Severity,
    render_sarif,
    run_lint,
    sarif_run,
    severity_gate,
    severity_to_level,
)
from repro.lint.diagnostics import Diagnostic


@pytest.fixture
def error_report():
    automaton = Automaton("nostart")
    automaton.add_state(CharClass.single("a"))
    return run_lint(automaton, families=("structural",))


@pytest.fixture
def clean_report():
    automaton = Automaton("clean")
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
    return run_lint(automaton, families=("structural",))


class TestSarifRendering:
    def test_log_shape(self, error_report):
        log = json.loads(render_sarif(error_report))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"]

    def test_severity_level_mapping(self):
        assert severity_to_level(Severity.INFO) == "note"
        assert severity_to_level(Severity.WARNING) == "warning"
        assert severity_to_level(Severity.ERROR) == "error"

    def test_results_reference_rule_metadata(self, error_report):
        log = json.loads(render_sarif(error_report))
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        for result in run["results"]:
            assert result["ruleId"] == rules[result["ruleIndex"]]["id"]
        # Registered rules carry their registry summary and default
        # severity for SARIF viewers.
        registered = [r for r in rules if "shortDescription" in r]
        assert registered
        for rule in registered:
            assert rule["defaultConfiguration"]["level"] in (
                "note",
                "warning",
                "error",
            )

    def test_logical_location_names_the_automaton(self, error_report):
        log = json.loads(render_sarif(error_report))
        for result in log["runs"][0]["results"]:
            [location] = result["locations"]
            [logical] = location["logicalLocations"]
            assert logical["name"] == "nostart"
            assert logical["kind"] == "module"

    def test_min_severity_filters_results(self, error_report):
        everything = json.loads(render_sarif(error_report))
        errors_only = json.loads(
            render_sarif(error_report, min_severity=Severity.ERROR)
        )
        all_results = everything["runs"][0]["results"]
        error_results = errors_only["runs"][0]["results"]
        assert len(error_results) < len(all_results)
        assert all(r["level"] == "error" for r in error_results)

    def test_many_reports_one_run(self, error_report, clean_report):
        log = json.loads(render_sarif([error_report, clean_report]))
        assert len(log["runs"]) == 1

    def test_unregistered_codes_get_bare_metadata(self):
        diagnostic = Diagnostic(
            code="ZZ999",
            rule="made-up",
            severity=Severity.INFO,
            message="synthetic",
            automaton="x",
        )
        run = sarif_run([diagnostic], tool_name="custom")
        [rule] = run["tool"]["driver"]["rules"]
        assert rule == {"id": "ZZ999", "name": "made-up"}
        assert run["tool"]["driver"]["name"] == "custom"

    def test_states_and_data_land_in_properties(self):
        diagnostic = Diagnostic(
            code="ZZ001",
            rule="r",
            severity=Severity.WARNING,
            message="m",
            automaton="x",
            states=(1, 2),
            data={"k": 3},
        )
        run = sarif_run([diagnostic])
        [result] = run["results"]
        assert result["properties"] == {"states": [1, 2], "data": {"k": 3}}


class TestSeverityGate:
    def test_never_disables_the_gate(self, error_report):
        assert severity_gate(error_report, "never") is False

    def test_threshold_semantics(self, error_report, clean_report):
        assert severity_gate(error_report, "error") is True
        assert severity_gate(error_report, "warning") is True
        assert severity_gate(clean_report, "error") is False
        # Info-level findings still trip an info-threshold gate.
        assert severity_gate(clean_report, "info") is bool(
            len(clean_report)
        )

    def test_any_report_can_trip_the_gate(self, error_report, clean_report):
        assert severity_gate([clean_report, error_report], "error") is True

    def test_bad_threshold_rejected(self, error_report):
        with pytest.raises(ConfigurationError):
            severity_gate(error_report, "catastrophic")


class TestLintSarifCli:
    def test_lint_format_sarif(self, capsys):
        exit_code = main(
            ["lint", "ExactMatch", "--scale", "0.05", "--format", "sarif"]
        )
        assert exit_code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        for result in run["results"]:
            assert result["ruleId"].startswith("AP")

    def test_sarif_respects_fail_on(self, tmp_path, capsys):
        # A broken automaton must still emit SARIF *and* exit 1.
        from repro.automata.serialization import automaton_to_dict

        automaton = Automaton("busted")
        automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        payload = automaton_to_dict(automaton)
        payload["states"][0]["label"] = "0"
        path = tmp_path / "busted.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        exit_code = main(["lint", str(path), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        codes = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert "AP002" in codes

"""The pre-deployment lint gate: PAP and deploy_plan refuse automata
with error-level structural findings unless linting is opted out.

``Automaton.validate`` already rejects the always-fatal shapes (no
starts, empty labels, dangling edges) at every pipeline entry, so the
gate wiring is exercised by temporarily upgrading the unreachable-state
rule (``AP004``) to an error on an automaton validate accepts.
"""

import dataclasses

import pytest

from repro.ap.device import Board
from repro.ap.geometry import BoardGeometry
from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.core.config import PAPConfig
from repro.core.deployment import deploy_plan
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import LintError
from repro.lint import REGISTRY, Severity, lint_gate, run_lint

TINY = BoardGeometry(ranks=1, devices_per_rank=2, stes_per_half_core=64)


def bad_automaton() -> Automaton:
    """Structurally broken: a state with an empty label.  Rejected by
    ``Automaton.validate`` too, so only ``lint_gate`` sees it directly."""
    automaton = Automaton("bad")
    head = automaton.add_state(
        CharClass.single("a"), start=StartKind.START_OF_DATA
    )
    hole = automaton.add_state(CharClass.empty(), reporting=True)
    automaton.add_edge(head, hole)
    return automaton


def island_automaton() -> Automaton:
    """Passes ``validate`` but has an unreachable state (``AP004``)."""
    automaton = Automaton("island")
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub, builder.classes_for("abc"))
    automaton.add_state(CharClass.single("z"))
    return automaton


def good_automaton() -> Automaton:
    automaton = Automaton("good")
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub, builder.classes_for("abc"))
    return automaton


@pytest.fixture
def strict_unreachable(monkeypatch):
    """Upgrade AP004 to an error for the duration of one test."""
    upgraded = dataclasses.replace(
        REGISTRY["AP004"], default_severity=Severity.ERROR
    )
    monkeypatch.setitem(REGISTRY, "AP004", upgraded)


class TestLintGate:
    def test_gate_raises_with_report_attached(self):
        with pytest.raises(LintError) as excinfo:
            lint_gate(bad_automaton())
        report = excinfo.value.report
        assert report is not None
        assert "AP002" in report.codes()

    def test_gate_passes_clean_automaton(self):
        report = lint_gate(good_automaton())
        assert not report.has_errors

    def test_gate_tolerates_warnings(self):
        report = lint_gate(island_automaton())
        assert "AP004" in report.codes()

    def test_gate_default_checks_structural_family_only(self):
        # Capacity problems stay the placement layer's job (typed
        # PlacementError/CapacityError); the default gate only looks at
        # structural codes.
        report = lint_gate(island_automaton())
        assert all(d.code.startswith("AP0") for d in report)


class TestPapGate:
    def test_pap_gate_refuses_errors(self, strict_unreachable):
        with pytest.raises(LintError, match="AP004"):
            ParallelAutomataProcessor(island_automaton())

    def test_pap_lint_opt_out(self, strict_unreachable):
        pap = ParallelAutomataProcessor(island_automaton(), lint=False)
        assert pap.automaton.name == "island"

    def test_pap_accepts_warnings_by_default(self):
        pap = ParallelAutomataProcessor(
            island_automaton(), config=PAPConfig(geometry=TINY)
        )
        assert pap.automaton.name == "island"


class TestDeployGate:
    def _plan(self, automaton):
        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=TINY), lint=False
        )
        return pap.plan(b"abcabcabc" * 32)

    def test_deploy_gate_refuses_errors(self, strict_unreachable):
        automaton = island_automaton()
        plan = self._plan(automaton)
        with pytest.raises(LintError, match="lint gate"):
            deploy_plan(Board(geometry=TINY), automaton, plan)

    def test_deploy_lint_opt_out(self, strict_unreachable):
        automaton = island_automaton()
        plan = self._plan(automaton)
        deployment = deploy_plan(
            Board(geometry=TINY), automaton, plan, lint=False
        )
        assert deployment is not None

    def test_deploy_accepts_good_automaton(self):
        automaton = good_automaton()
        plan = self._plan(automaton)
        deployment = deploy_plan(Board(geometry=TINY), automaton, plan)
        assert deployment is not None


class TestStaleAnalysisGate:
    def test_stale_analysis_is_an_error(self):
        automaton = good_automaton()
        analysis = AutomatonAnalysis(automaton)
        automaton.add_state(CharClass.single("z"))
        report = run_lint(automaton, analysis=analysis)
        assert report.codes() == {"AP009"}
        with pytest.raises(LintError):
            lint_gate(automaton, analysis=analysis)

"""Unit tests for structural analysis (ranges, CCs, ASG, parents)."""

import pytest

from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


@pytest.fixture
def two_patterns():
    """Two disconnected unanchored patterns: .*abc and .*xbz."""
    automaton = Automaton("two")
    hub_a = builder.star_self_loop(automaton)  # 0
    builder.attach_pattern(automaton, hub_a, builder.classes_for("abc"))  # 1,2,3
    hub_b = builder.star_self_loop(automaton)  # 4
    builder.attach_pattern(automaton, hub_b, builder.classes_for("xbz"))  # 5,6,7
    return automaton


class TestSymbolRanges:
    def test_range_contains_labeled_enterable_states(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        # 'b' labels state 2 (in abc) and state 6 (in xbz); hubs match too.
        assert analysis.symbol_range(ord("b")) == frozenset({0, 2, 4, 6})

    def test_range_of_unused_symbol_is_hubs_only(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        assert analysis.symbol_range(ord("q")) == frozenset({0, 4})

    def test_unenterable_state_excluded_from_range(self):
        automaton = Automaton()
        builder.literal(automaton, "ab")
        orphan = automaton.add_state(CharClass.single("a"))  # no preds, no start
        analysis = AutomatonAnalysis(automaton)
        assert orphan not in analysis.symbol_range(ord("a"))

    def test_start_states_are_enterable(self):
        automaton = Automaton()
        builder.literal(automaton, "ab")
        analysis = AutomatonAnalysis(automaton)
        assert 0 in analysis.symbol_range(ord("a"))

    def test_range_sizes_matches_symbol_range(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        sizes = analysis.range_sizes()
        assert sizes.shape == (256,)
        for symbol in (ord("a"), ord("b"), ord("q")):
            assert sizes[symbol] == len(analysis.symbol_range(symbol))

    def test_label_matrix_shape_and_content(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        matrix = analysis.label_matrix()
        assert matrix.shape == (8, 256)
        assert matrix[0].all()  # hub matches everything
        assert matrix[1, ord("a")] and not matrix[1, ord("b")]


class TestConnectedComponents:
    def test_disconnected_patterns_are_separate(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        components = analysis.connected_components()
        assert len(components) == 2
        assert frozenset({0, 1, 2, 3}) in components
        assert frozenset({4, 5, 6, 7}) in components

    def test_component_index_consistent(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        index = analysis.component_index()
        components = analysis.connected_components()
        for cid, members in enumerate(components):
            for sid in members:
                assert index[sid] == cid

    def test_undirected_connectivity(self):
        # a -> c <- b : one component despite no directed a..b path.
        automaton = Automaton()
        a = automaton.add_state(CharClass.single("a"), start=StartKind.START_OF_DATA)
        b = automaton.add_state(CharClass.single("b"), start=StartKind.START_OF_DATA)
        c = automaton.add_state(CharClass.single("c"))
        automaton.add_edge(a, c)
        automaton.add_edge(b, c)
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 1

    def test_isolated_states_are_singletons(self):
        automaton = Automaton()
        automaton.add_state(CharClass.single("a"), start=StartKind.START_OF_DATA)
        automaton.add_state(CharClass.single("b"), start=StartKind.START_OF_DATA)
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 2


class TestAlwaysActive:
    def test_star_hub_is_depth_zero(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        assert analysis.always_active_depths() == {0: 0, 4: 0}
        assert analysis.always_active_states() == frozenset({0, 4})

    def test_start_of_data_full_self_loop_is_depth_zero(self):
        automaton = Automaton()
        sid = automaton.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA
        )
        automaton.add_edge(sid, sid)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.always_active_depths() == {sid: 0}

    def test_full_label_child_of_hub_has_depth_one(self):
        automaton = Automaton()
        hub = builder.star_self_loop(automaton)
        child = automaton.add_state(CharClass.full())
        automaton.add_edge(hub, child)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.always_active_depths() == {hub: 0, child: 1}
        assert analysis.always_active_states(max_depth=0) == frozenset({hub})
        assert analysis.always_active_states(max_depth=1) == frozenset(
            {hub, child}
        )

    def test_partial_label_never_always_active(self):
        automaton = Automaton()
        sid = automaton.add_state(
            CharClass.single("a"), start=StartKind.ALL_INPUT
        )
        automaton.add_edge(sid, sid)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.always_active_depths() == {}

    def test_path_independent_includes_all_input_starts(self):
        automaton = Automaton()
        head = automaton.add_state(
            CharClass.single("a"), start=StartKind.ALL_INPUT
        )
        tail = automaton.add_state(CharClass.single("b"), reporting=True)
        automaton.add_edge(head, tail)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.path_independent_states() == frozenset({head})

    def test_self_loop_without_start_not_always_active(self):
        automaton = Automaton()
        builder.literal(automaton, "a")
        loop = automaton.add_state(CharClass.full())
        automaton.add_edge(loop, loop)
        automaton.add_edge(0, loop)
        analysis = AutomatonAnalysis(automaton)
        assert loop not in analysis.always_active_depths()


class TestReachability:
    def test_reachable_from_starts(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        assert analysis.reachable_states() == frozenset(range(8))

    def test_unreachable_island(self):
        automaton = Automaton()
        builder.literal(automaton, "ab")
        island = automaton.add_state(CharClass.single("z"))
        other = automaton.add_state(CharClass.single("z"))
        automaton.add_edge(island, other)
        analysis = AutomatonAnalysis(automaton)
        assert island not in analysis.reachable_states()
        assert other not in analysis.reachable_states()


class TestCacheHygiene:
    def test_mutation_after_analysis_rejected(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        analysis.connected_components()
        two_patterns.add_state(CharClass.single("z"))
        with pytest.raises(AutomatonError, match="mutated"):
            analysis.connected_components()

    def test_parents_of_delegates(self, two_patterns):
        analysis = AutomatonAnalysis(two_patterns)
        assert analysis.parents_of(2) == (1,)


class TestEmptyAutomaton:
    """Every analysis view must degrade gracefully on zero states."""

    def test_all_views_empty(self):
        analysis = AutomatonAnalysis(Automaton("empty"))
        assert analysis.reachable_states() == frozenset()
        assert analysis.coreachable_states() == frozenset()
        assert analysis.dead_states() == frozenset()
        assert analysis.connected_components() == []
        assert analysis.path_independent_states() == frozenset()
        assert analysis.symbol_range(ord("a")) == frozenset()

    def test_range_sizes_all_zero(self):
        analysis = AutomatonAnalysis(Automaton("empty"))
        sizes = analysis.range_sizes()
        assert len(sizes) == 256
        assert not sizes.any()


class TestEveryStateStarts:
    def test_all_states_reachable_and_enterable(self):
        automaton = Automaton("starts")
        for symbol in "abc":
            automaton.add_state(
                CharClass.single(symbol), start=StartKind.ALL_INPUT
            )
        analysis = AutomatonAnalysis(automaton)
        assert analysis.reachable_states() == frozenset(range(3))
        # All-input starts are path independent by definition.
        assert analysis.path_independent_states() == frozenset(range(3))
        for symbol in "abc":
            assert analysis.symbol_range(ord(symbol))

    def test_no_dead_states_without_reporting(self):
        automaton = Automaton("starts")
        for symbol in "ab":
            automaton.add_state(
                CharClass.single(symbol), start=StartKind.START_OF_DATA
            )
        analysis = AutomatonAnalysis(automaton)
        # No reporting states: dead-state analysis is vacuous, not total.
        assert analysis.dead_states() == frozenset()


class TestSingleSelfLoop:
    def test_full_self_loop_is_always_active(self):
        automaton = Automaton("loop")
        sid = automaton.add_state(
            CharClass.full(), start=StartKind.ALL_INPUT, reporting=True
        )
        automaton.add_edge(sid, sid)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.always_active_states(0) == frozenset({sid})
        assert analysis.path_independent_states() == frozenset({sid})
        assert analysis.connected_components() == [frozenset({sid})]
        assert analysis.dead_states() == frozenset()

    def test_partial_self_loop_not_always_active(self):
        automaton = Automaton("loop")
        sid = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        automaton.add_edge(sid, sid)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.always_active_states(0) == frozenset()


class TestCoreachability:
    def test_dead_branch_detected(self):
        automaton = Automaton("fork")
        head = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        live = automaton.add_state(CharClass.single("b"), reporting=True)
        dead = automaton.add_state(CharClass.single("c"))
        automaton.add_edge(head, live)
        automaton.add_edge(head, dead)
        analysis = AutomatonAnalysis(automaton)
        assert analysis.coreachable_states() == frozenset({head, live})
        assert analysis.dead_states() == frozenset({dead})

    def test_unreachable_state_is_not_dead(self):
        # Dead = reachable but report-less; an unreachable state is a
        # different defect (AP004 vs AP005) and must not double-report.
        automaton = Automaton("island")
        builder.literal(automaton, "ab")
        island = automaton.add_state(CharClass.single("z"))
        analysis = AutomatonAnalysis(automaton)
        assert island not in analysis.dead_states()


class TestStaleness:
    def test_is_fresh_tracks_version(self):
        automaton = Automaton("v")
        builder.literal(automaton, "ab")
        analysis = AutomatonAnalysis(automaton)
        assert analysis.is_fresh()
        automaton.add_state(CharClass.single("z"))
        assert not analysis.is_fresh()

    def test_stale_coreachability_rejected(self):
        automaton = Automaton("v")
        builder.literal(automaton, "ab")
        analysis = AutomatonAnalysis(automaton)
        analysis.coreachable_states()
        automaton.add_state(CharClass.single("z"))
        with pytest.raises(AutomatonError, match="mutated"):
            analysis.coreachable_states()
        with pytest.raises(AutomatonError, match="mutated"):
            analysis.dead_states()

    def test_edge_mutation_also_staleness(self):
        automaton = Automaton("v")
        sids = builder.literal(automaton, "ab")
        analysis = AutomatonAnalysis(automaton)
        assert analysis.is_fresh()
        automaton.add_edge(sids[-1], sids[0])
        assert not analysis.is_fresh()

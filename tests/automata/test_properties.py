"""Property-based tests on the automata substrate's invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.charclass import ALPHABET_SIZE, CharClass
from repro.automata.execution import run_automaton
from repro.automata.prefix_merge import merge_common_prefixes
from repro.automata.random_gen import random_input, random_ruleset_automaton
from repro.automata.serialization import loads, dumps

symbol_sets = st.frozensets(
    st.integers(0, ALPHABET_SIZE - 1), max_size=12
)


class TestCharClassAlgebra:
    @settings(max_examples=100)
    @given(a=symbol_sets, b=symbol_sets)
    def test_operations_match_set_semantics(self, a, b):
        ca, cb = CharClass(a), CharClass(b)
        assert set(ca | cb) == a | b
        assert set(ca & cb) == a & b
        assert set(ca - cb) == a - b
        assert set(ca ^ cb) == a ^ b

    @settings(max_examples=100)
    @given(a=symbol_sets)
    def test_complement_involution(self, a):
        klass = CharClass(a)
        assert klass.complement().complement() == klass
        assert len(klass) + len(klass.complement()) == ALPHABET_SIZE

    @settings(max_examples=100)
    @given(a=symbol_sets)
    def test_intervals_partition_membership(self, a):
        klass = CharClass(a)
        covered = set()
        for low, high in klass.intervals():
            assert low <= high
            covered.update(range(low, high + 1))
        assert covered == a

    @settings(max_examples=50)
    @given(a=symbol_sets, b=symbol_sets)
    def test_subset_consistency(self, a, b):
        assert CharClass(a).issubset(CharClass(b)) == (a <= b)
        assert CharClass(a).isdisjoint(CharClass(b)) == a.isdisjoint(b)


class TestPrefixMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
    def test_merge_preserves_report_sets(self, seed, data_seed):
        automaton = random_ruleset_automaton(seed, num_patterns=6)
        merged = merge_common_prefixes(automaton)
        assert merged.num_states <= automaton.num_states
        data = random_input(data_seed, length=100)
        before = {
            (r.offset, r.code)
            for r in run_automaton(automaton, data).report_set
        }
        after = {
            (r.offset, r.code)
            for r in run_automaton(merged, data).report_set
        }
        assert before == after

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_merge_is_idempotent(self, seed):
        automaton = random_ruleset_automaton(seed, num_patterns=6)
        once = merge_common_prefixes(automaton)
        twice = merge_common_prefixes(once)
        assert twice.num_states == once.num_states


class TestSerializationProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
    def test_roundtrip_preserves_semantics(self, seed, data_seed):
        automaton = random_ruleset_automaton(seed, num_patterns=4)
        clone = loads(dumps(automaton))
        data = random_input(data_seed, length=80)
        assert (
            run_automaton(clone, data).report_set
            == run_automaton(automaton, data).report_set
        )


class TestUnionLinearity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed_a=st.integers(0, 5_000),
        seed_b=st.integers(0, 5_000),
        data_seed=st.integers(0, 5_000),
    )
    def test_union_reports_are_union_of_reports(
        self, seed_a, seed_b, data_seed
    ):
        """Disjoint union = run both machines: the linearity property
        the whole enumeration scheme rests on."""
        left = random_ruleset_automaton(seed_a, num_patterns=3)
        right = random_ruleset_automaton(seed_b, num_patterns=3)
        union = left.union(right)
        data = random_input(data_seed, length=80)

        left_reports = {
            (r.offset, r.element) for r in run_automaton(left, data).reports
        }
        right_reports = {
            (r.offset, r.element + len(left))
            for r in run_automaton(right, data).reports
        }
        union_reports = {
            (r.offset, r.element) for r in run_automaton(union, data).reports
        }
        assert union_reports == left_reports | right_reports


class TestRandomGenerators:
    def test_random_automaton_always_has_starts(self):
        for seed in range(25):
            automaton = random_automaton_checked(seed)
            assert automaton.start_states()

    def test_ruleset_reports_have_pattern_codes(self):
        automaton = random_ruleset_automaton(3, num_patterns=5)
        codes = {s.code for s in automaton.states() if s.reporting}
        assert codes <= set(range(5))


def random_automaton_checked(seed):
    from repro.automata.random_gen import random_automaton

    automaton = random_automaton(seed)
    automaton.validate()
    return automaton

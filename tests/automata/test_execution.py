"""Unit tests for the functional executor (the VASim substitute)."""

import pytest

from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.automata.execution import (
    CompiledAutomaton,
    FlowExecution,
    Report,
    run_automaton,
)


def literal_automaton(text, **kwargs):
    automaton = Automaton(f"lit-{text}")
    builder.literal(automaton, text, **kwargs)
    return automaton


class TestAnchoredMatching:
    def test_match_at_start(self):
        result = run_automaton(literal_automaton("abc"), b"abcxx")
        assert {r.offset for r in result.report_set} == {2}

    def test_anchored_does_not_match_later(self):
        result = run_automaton(literal_automaton("abc"), b"xabc")
        assert not result.report_set

    def test_no_match(self):
        result = run_automaton(literal_automaton("abc"), b"abd")
        assert not result.report_set

    def test_report_carries_code(self):
        automaton = literal_automaton("ab", report_code=99)
        result = run_automaton(automaton, b"ab")
        (report,) = result.report_set
        assert report.code == 99
        assert report.offset == 1


class TestUnanchoredMatching:
    @pytest.fixture
    def hub_automaton(self):
        automaton = Automaton("hub")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(
            automaton, hub, builder.classes_for("abc"), report_code=1
        )
        return automaton

    def test_matches_at_every_occurrence(self, hub_automaton):
        result = run_automaton(hub_automaton, b"abc-abc-abc")
        assert sorted(r.offset for r in result.report_set) == [2, 6, 10]

    def test_overlapping_matches(self):
        automaton = Automaton()
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("aa"))
        result = run_automaton(automaton, b"aaaa")
        assert sorted(r.offset for r in result.report_set) == [1, 2, 3]

    def test_all_input_chain_without_hub(self):
        automaton = Automaton()
        builder.unanchored(automaton, builder.classes_for("ab"))
        result = run_automaton(automaton, b"zabzab")
        assert sorted(r.offset for r in result.report_set) == [2, 5]


class TestStepSemantics:
    def test_start_of_data_enabled_only_first_symbol(self):
        automaton = literal_automaton("a")
        result = run_automaton(automaton, b"aa")
        assert {r.offset for r in result.report_set} == {0}

    def test_multiple_start_states_race(self):
        automaton = Automaton()
        builder.literal(automaton, "ax", report_code=1)
        builder.literal(automaton, "ay", report_code=2)
        result = run_automaton(automaton, b"ay")
        assert {r.code for r in result.report_set} == {2}

    def test_nondeterministic_fanout(self):
        # One state fans out to two successors with overlapping labels.
        automaton = Automaton()
        head = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        left = automaton.add_state(CharClass("bc"), reporting=True, report_code=1)
        right = automaton.add_state(CharClass("cd"), reporting=True, report_code=2)
        automaton.add_edges(head, [left, right])
        result = run_automaton(automaton, b"ac")
        assert {r.code for r in result.report_set} == {1, 2}

    def test_final_current_is_matched_set(self):
        automaton = literal_automaton("ab")
        result = run_automaton(automaton, b"ab")
        assert result.final_current == frozenset({1})

    def test_transitions_counter(self):
        automaton = literal_automaton("ab")
        result = run_automaton(automaton, b"ab")
        assert result.transitions == 2  # 'a' matched, then 'b'

    def test_base_offset_shifts_reports(self):
        automaton = Automaton()
        builder.unanchored(automaton, builder.classes_for("b"))
        result = run_automaton(automaton, b"ab", base_offset=100)
        assert {r.offset for r in result.report_set} == {101}

    def test_empty_input(self):
        result = run_automaton(literal_automaton("a"), b"")
        assert not result.reports
        assert result.final_current == frozenset()


class TestFlowExecution:
    def test_incremental_equals_batch(self):
        automaton = Automaton()
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("abab"))
        compiled = CompiledAutomaton(automaton)
        data = b"xababab"

        batch = FlowExecution(compiled)
        batch.run(data)

        inc = FlowExecution(compiled)
        inc.run(data[:3], 0)
        inc.run(data[3:], 3)

        assert inc.state_vector() == batch.state_vector()
        assert inc.reports == batch.reports

    def test_initial_current_seeds_execution(self):
        automaton = literal_automaton("abc")
        compiled = CompiledAutomaton(automaton)
        # Seed as if 'a' (state 0) just matched; disable start-of-data.
        flow = FlowExecution(
            compiled, initial_current=[0], one_shot=frozenset()
        )
        flow.run(b"bc", base_offset=1)
        assert {r.offset for r in flow.reports} == {2}

    def test_one_shot_override_suppresses_start(self):
        automaton = literal_automaton("abc")
        compiled = CompiledAutomaton(automaton)
        flow = FlowExecution(compiled, one_shot=frozenset())
        flow.run(b"abc")
        assert not flow.reports

    def test_persistent_override(self):
        automaton = literal_automaton("ab")
        compiled = CompiledAutomaton(automaton)
        # Persistently enable the 'a' head: matches restart at any offset.
        flow = FlowExecution(
            compiled, persistent=frozenset({0}), one_shot=frozenset()
        )
        flow.run(b"abxab")
        assert sorted(r.offset for r in flow.reports) == [1, 4]

    def test_excluded_states_never_enter_current(self):
        automaton = Automaton()
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
        compiled = CompiledAutomaton(automaton)
        flow = FlowExecution(
            compiled,
            persistent=frozenset(),
            one_shot=frozenset(),
            initial_current=[hub],
            excluded=frozenset({hub}),
        )
        flow.run(b"ab")
        # The hub fed the chain on the first step but was itself dropped
        # from every subsequent current set.
        assert hub not in flow.current
        assert flow.state_vector() == frozenset({2})  # the 'b' tail

    def test_is_dead_lifecycle(self):
        automaton = literal_automaton("ab")
        compiled = CompiledAutomaton(automaton)
        flow = FlowExecution(compiled)
        assert not flow.is_dead()  # one-shot start still pending
        flow.step(ord("z"), 0)
        assert flow.is_dead()  # start consumed, current empty

    def test_persistent_flow_never_dead(self):
        automaton = Automaton()
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
        compiled = CompiledAutomaton(automaton)
        flow = FlowExecution(compiled)
        flow.run(b"zzzz")
        assert not flow.is_dead()

    def test_clone_is_independent(self):
        automaton = literal_automaton("ab")
        compiled = CompiledAutomaton(automaton)
        flow = FlowExecution(compiled)
        flow.step(ord("a"), 0)
        twin = flow.clone()
        twin.step(ord("b"), 1)
        assert twin.reports and not flow.reports
        assert flow.state_vector() == frozenset({0})


class TestReportValue:
    def test_reports_are_ordered_and_hashable(self):
        first = Report(offset=1, element=2, code=3)
        second = Report(offset=2, element=0, code=0)
        assert first < second
        assert len({first, second, first}) == 2

    def test_report_set_deduplicates(self):
        # Two STE copies of one accepting state may report the same code
        # at the same offset; dedup happens at the Report level only when
        # elements are equal.
        automaton = Automaton()
        builder.literal(automaton, "a", report_code=5)
        builder.literal(automaton, "a", report_code=5)
        result = run_automaton(automaton, b"a")
        assert len(result.reports) == 2
        assert len(result.report_set) == 2  # distinct elements


def latching_reporter_automaton(num_reporters=4):
    """A hub plus ``num_reporters`` trigger->latch chains whose latch
    states are full-label self-loop *reporting* states: once its
    trigger symbol is seen, each latch reports on every later symbol.
    Trigger for reporter ``i`` is byte ``ord('a') + i``."""
    automaton = Automaton("latching-reporters")
    hub = builder.star_self_loop(automaton)
    for index in range(num_reporters):
        trigger = automaton.add_state(
            CharClass.single(ord("a") + index),
            start=StartKind.START_OF_DATA,
        )
        automaton.add_edge(hub, trigger)
        latch = automaton.add_state(
            CharClass.full(), reporting=True, report_code=10 + index
        )
        automaton.add_edge(trigger, latch)
        automaton.add_edge(latch, latch)
    return automaton


class TestLatchedReportDeterminism:
    """Latched-report ordering is a pure function of the execution
    semantics — never of latch arrival order, set iteration order, or
    the interpreter's hash seed (the PR-9 clone-ordering fix).

    The CI determinism job runs this class under two ``PYTHONHASHSEED``
    values; ``test_reports_identical_across_hash_seeds`` additionally
    proves it in-process via subprocesses.
    """

    # Triggers arrive in descending-sid order ('d' first), so latch
    # *insertion* order disagrees with sid order — the arrangement that
    # exposed the pre-fix divergence between an original flow and its
    # clone (which rebuilt the latched list from a frozenset).
    DATA = b"d.c.b.a." + b"xyzw" * 8

    def test_clone_continuation_reports_match_original(self):
        compiled = CompiledAutomaton(latching_reporter_automaton())
        flow = FlowExecution(compiled)
        flow.run(self.DATA[:8])
        twin = flow.clone()
        flow.run(self.DATA[8:], 8)
        twin.run(self.DATA[8:], 8)
        assert twin.reports == flow.reports
        assert len({r.offset for r in flow.reports[-4:]}) == 1, (
            "tail step must carry all four latched reports"
        )

    def test_each_step_emits_ascending_sids(self):
        compiled = CompiledAutomaton(latching_reporter_automaton())
        flow = FlowExecution(compiled)
        flow.run(self.DATA)
        by_offset = {}
        for report in flow.reports:
            by_offset.setdefault(report.offset, []).append(report.element)
        assert max(len(v) for v in by_offset.values()) == 4
        for offset, sids in by_offset.items():
            assert sids == sorted(sids), offset

    def test_reports_identical_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        script = (
            "from tests.automata.test_execution import ("
            "latching_reporter_automaton, TestLatchedReportDeterminism)\n"
            "from repro.automata.execution import ("
            "CompiledAutomaton, FlowExecution)\n"
            "flow = FlowExecution("
            "CompiledAutomaton(latching_reporter_automaton()))\n"
            "data = TestLatchedReportDeterminism.DATA\n"
            "flow.run(data[:8])\n"
            "twin = flow.clone()\n"
            "twin.run(data[8:], 8)\n"
            "print([(r.offset, r.element, r.code) for r in twin.reports])\n"
        )
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", ".", env.get("PYTHONPATH", "")])
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip(), "subprocess must produce reports"

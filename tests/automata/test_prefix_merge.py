"""Unit tests for common-prefix merging."""

import random

from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.automata.execution import run_automaton
from repro.automata.prefix_merge import compression_ratio, merge_common_prefixes
from repro.automata.random_gen import random_input, random_ruleset_automaton


def ruleset(*patterns, anchored=True):
    automaton = Automaton("rules")
    for code, pattern in enumerate(patterns):
        builder.literal(
            automaton,
            pattern,
            start=(
                StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
            ),
            report_code=code,
        )
    return automaton


class TestMerging:
    def test_shared_prefix_is_merged(self):
        automaton = ruleset("abcd", "abce")
        merged = merge_common_prefixes(automaton)
        # 'a','b','c' shared (3 states) + two distinct tails = 5.
        assert merged.num_states == 5

    def test_disjoint_patterns_untouched(self):
        automaton = ruleset("abc", "xyz")
        merged = merge_common_prefixes(automaton)
        assert merged.num_states == automaton.num_states

    def test_identical_nonreporting_chains_fully_merge(self):
        automaton = Automaton()
        builder.literal(automaton, "abc", report_code=1)
        builder.literal(automaton, "abc", report_code=1)
        merged = merge_common_prefixes(automaton)
        assert merged.num_states == 3

    def test_distinct_report_codes_not_merged(self):
        automaton = ruleset("ab", "ab")  # codes 0 and 1
        merged = merge_common_prefixes(automaton)
        # Prefix 'a' merges; the two reporting 'b' tails must survive.
        assert merged.num_states == 3
        assert len(merged.reporting_states()) == 2

    def test_star_hubs_merge(self):
        automaton = Automaton()
        for _ in range(3):
            hub = builder.star_self_loop(automaton)
            builder.attach_pattern(automaton, hub, builder.classes_for("ab"))
        merged = merge_common_prefixes(automaton)
        analysis_states = [
            s for s in merged.states() if s.label == CharClass.full()
        ]
        assert len(analysis_states) == 1

    def test_different_start_kinds_not_merged(self):
        automaton = Automaton()
        builder.literal(automaton, "ab", start=StartKind.START_OF_DATA)
        builder.literal(automaton, "ab", start=StartKind.ALL_INPUT)
        merged = merge_common_prefixes(automaton)
        assert merged.num_states == automaton.num_states


class TestSemanticsPreserved:
    def test_report_stream_preserved_on_literals(self):
        automaton = ruleset("abcd", "abce", "abxy", "zz")
        merged = merge_common_prefixes(automaton)
        for data in (b"abcd", b"abce", b"abxy", b"zz", b"abcz", b"aaaa"):
            original = {
                (r.offset, r.code) for r in run_automaton(automaton, data).reports
            }
            kept = {
                (r.offset, r.code) for r in run_automaton(merged, data).reports
            }
            assert original == kept, data

    def test_report_stream_preserved_on_random_rulesets(self):
        rng = random.Random(11)
        for trial in range(10):
            automaton = random_ruleset_automaton(rng, num_patterns=6)
            merged = merge_common_prefixes(automaton)
            data = random_input(rng, length=80)
            original = {
                (r.offset, r.code)
                for r in run_automaton(automaton, data).report_set
            }
            kept = {
                (r.offset, r.code)
                for r in run_automaton(merged, data).report_set
            }
            assert original == kept, f"trial {trial}"

    def test_merge_is_idempotent(self):
        automaton = ruleset("abcd", "abce", "abxy")
        once = merge_common_prefixes(automaton)
        twice = merge_common_prefixes(once)
        assert twice.num_states == once.num_states


class TestCompressionRatio:
    def test_ratio_computation(self):
        automaton = ruleset("abcd", "abce")
        merged = merge_common_prefixes(automaton)
        assert compression_ratio(automaton, merged) == 1 - 5 / 8

    def test_ratio_empty_automaton(self):
        empty = Automaton()
        assert compression_ratio(empty, empty) == 0.0

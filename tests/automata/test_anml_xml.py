"""Tests for ANML XML import/export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.anml_xml import (
    automaton_from_anml_xml,
    automaton_to_anml_xml,
    parse_symbol_set,
    symbol_set_to_anml,
)
from repro.automata.charclass import ALPHABET_SIZE, CharClass
from repro.automata.execution import run_automaton
from repro.automata.random_gen import random_input, random_ruleset_automaton
from repro.errors import AutomatonError


class TestSymbolSets:
    @pytest.mark.parametrize(
        "klass,expected",
        [
            (CharClass.full(), "*"),
            (CharClass.single("a"), "a"),
            (CharClass.range("a", "c"), "[a-c]"),
            (CharClass("ab"), "[ab]"),
        ],
    )
    def test_rendering(self, klass, expected):
        assert symbol_set_to_anml(klass) == expected

    def test_negation_for_wide_classes(self):
        klass = CharClass.single("a").complement()
        assert symbol_set_to_anml(klass) == "[^a]"

    def test_hex_escapes_for_nonprintable(self):
        assert symbol_set_to_anml(CharClass([0])) == "[\\x00]"

    @pytest.mark.parametrize(
        "text,symbols",
        [
            ("*", set(range(ALPHABET_SIZE))),
            ("a", {97}),
            ("[abc]", {97, 98, 99}),
            ("[a-c]", {97, 98, 99}),
            ("[\\x00-\\x02]", {0, 1, 2}),
        ],
    )
    def test_parsing(self, text, symbols):
        assert set(parse_symbol_set(text)) == symbols

    def test_parse_negated(self):
        klass = parse_symbol_set("[^ab]")
        assert "a" not in klass and "c" in klass

    def test_parse_errors(self):
        with pytest.raises(AutomatonError):
            parse_symbol_set("[abc")
        with pytest.raises(AutomatonError):
            parse_symbol_set("[c-a]")
        with pytest.raises(AutomatonError):
            parse_symbol_set("ab")
        with pytest.raises(AutomatonError):
            parse_symbol_set("[a\\]")

    @settings(max_examples=100)
    @given(
        symbols=st.frozensets(
            st.integers(0, ALPHABET_SIZE - 1), min_size=1, max_size=20
        )
    )
    def test_roundtrip_property(self, symbols):
        klass = CharClass(symbols)
        assert parse_symbol_set(symbol_set_to_anml(klass)) == klass


class TestDocumentRoundTrip:
    @pytest.fixture
    def sample(self):
        automaton = Automaton("sample-net")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(
            automaton, hub, builder.classes_for("hi"), report_code=7
        )
        return automaton

    def test_xml_structure(self, sample):
        text = automaton_to_anml_xml(sample)
        assert "<automata-network" in text
        assert "state-transition-element" in text
        assert 'symbol-set="*"' in text
        assert 'reportcode="7"' in text

    def test_roundtrip_preserves_semantics(self, sample):
        clone = automaton_from_anml_xml(automaton_to_anml_xml(sample))
        data = b"hi there hi"
        assert (
            run_automaton(clone, data).report_set
            == run_automaton(sample, data).report_set
        )

    def test_roundtrip_preserves_structure(self, sample):
        clone = automaton_from_anml_xml(automaton_to_anml_xml(sample))
        assert clone.num_states == sample.num_states
        assert sorted(clone.edges()) == sorted(sample.edges())
        assert clone.state(0).start is StartKind.ALL_INPUT

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
    def test_roundtrip_property(self, seed, data_seed):
        automaton = random_ruleset_automaton(seed, num_patterns=4)
        clone = automaton_from_anml_xml(automaton_to_anml_xml(automaton))
        data = random_input(data_seed, length=60)
        assert (
            run_automaton(clone, data).report_set
            == run_automaton(automaton, data).report_set
        )

    def test_malformed_document_rejected(self):
        with pytest.raises(AutomatonError, match="malformed"):
            automaton_from_anml_xml("<not-closed")
        with pytest.raises(AutomatonError, match="expected"):
            automaton_from_anml_xml("<wrong-root/>")

    def test_unknown_activation_target_rejected(self):
        text = (
            '<automata-network id="x">'
            '<state-transition-element id="a" symbol-set="a" start="all-input">'
            '<activate-on-match element="ghost"/>'
            "</state-transition-element></automata-network>"
        )
        with pytest.raises(AutomatonError, match="unknown STE"):
            automaton_from_anml_xml(text)

    def test_duplicate_ids_rejected(self):
        text = (
            '<automata-network id="x">'
            '<state-transition-element id="a" symbol-set="a" start="all-input"/>'
            '<state-transition-element id="a" symbol-set="b"/>'
            "</automata-network>"
        )
        with pytest.raises(AutomatonError, match="duplicate"):
            automaton_from_anml_xml(text)

    def test_import_hand_written_anml(self):
        """A hand-written ANML fragment in Micron's idiom."""
        text = """<?xml version="1.0"?>
        <automata-network id="demo">
          <state-transition-element id="q0" symbol-set="*" start="all-input">
            <activate-on-match element="q0"/>
            <activate-on-match element="q1"/>
          </state-transition-element>
          <state-transition-element id="q1" symbol-set="[Aa]" start="start-of-data">
            <activate-on-match element="q2"/>
          </state-transition-element>
          <state-transition-element id="q2" symbol-set="[Bb]">
            <report-on-match reportcode="3"/>
          </state-transition-element>
        </automata-network>
        """
        automaton = automaton_from_anml_xml(text)
        reports = run_automaton(automaton, b"xxaB").report_set
        assert {(r.offset, r.code) for r in reports} == {(3, 3)}

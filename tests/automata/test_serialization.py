"""Unit tests for ANML-lite serialization."""

import pytest

from repro.automata import builder
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.automata.execution import run_automaton
from repro.automata.random_gen import random_ruleset_automaton
from repro.automata.serialization import (
    automaton_from_dict,
    automaton_to_dict,
    dumps,
    loads,
)
from repro.errors import AutomatonError


@pytest.fixture
def sample():
    automaton = Automaton("sample")
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(
        automaton, hub, builder.classes_for("hi"), report_code=3
    )
    return automaton


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self, sample):
        clone = automaton_from_dict(automaton_to_dict(sample))
        assert clone.num_states == sample.num_states
        assert sorted(clone.edges()) == sorted(sample.edges())
        assert clone.name == sample.name

    def test_round_trip_preserves_semantics(self, sample):
        clone = loads(dumps(sample))
        data = b"hi there, hi"
        assert (
            run_automaton(clone, data).report_set
            == run_automaton(sample, data).report_set
        )

    def test_round_trip_random(self):
        automaton = random_ruleset_automaton(5, num_patterns=4)
        clone = loads(dumps(automaton))
        assert automaton_to_dict(clone) == automaton_to_dict(automaton)

    def test_start_kinds_survive(self, sample):
        clone = loads(dumps(sample))
        assert clone.state(0).start is StartKind.ALL_INPUT

    def test_report_codes_survive(self, sample):
        clone = loads(dumps(sample))
        assert clone.state(2).report_code == 3

    def test_full_label_survives(self, sample):
        clone = loads(dumps(sample))
        assert clone.state(0).label == CharClass.full()

    def test_indent_option(self, sample):
        assert "\n" in dumps(sample, indent=2)


class TestValidation:
    def test_bad_schema_rejected(self):
        with pytest.raises(AutomatonError, match="schema"):
            automaton_from_dict({"schema": 99, "states": [], "edges": []})

    def test_non_dense_ids_rejected(self, sample):
        payload = automaton_to_dict(sample)
        payload["states"][1]["id"] = 7
        with pytest.raises(AutomatonError, match="non-dense"):
            automaton_from_dict(payload)

    def test_dangling_edge_rejected(self, sample):
        payload = automaton_to_dict(sample)
        payload["edges"].append([0, 99])
        with pytest.raises(AutomatonError):
            automaton_from_dict(payload)

    def test_empty_label_rejected(self, sample):
        payload = automaton_to_dict(sample)
        payload["states"][0]["label"] = "0"
        with pytest.raises(AutomatonError, match="empty label"):
            automaton_from_dict(payload)

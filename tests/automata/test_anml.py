"""Unit tests for the homogeneous automaton data structure."""

import pytest

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


@pytest.fixture
def simple():
    """a -> b -> c with a start-of-data head and reporting tail."""
    automaton = Automaton("simple")
    a = automaton.add_state(CharClass.single("a"), start=StartKind.START_OF_DATA)
    b = automaton.add_state(CharClass.single("b"))
    c = automaton.add_state(CharClass.single("c"), reporting=True, report_code=42)
    automaton.add_edge(a, b)
    automaton.add_edge(b, c)
    return automaton


class TestConstruction:
    def test_ids_are_dense(self, simple):
        assert [s.sid for s in simple.states()] == [0, 1, 2]

    def test_counts(self, simple):
        assert len(simple) == simple.num_states == 3
        assert simple.num_edges == 2

    def test_duplicate_edges_ignored(self, simple):
        before = simple.num_edges
        simple.add_edge(0, 1)
        assert simple.num_edges == before

    def test_add_edges_bulk(self):
        automaton = Automaton()
        sids = [
            automaton.add_state(CharClass.single("x"), start=StartKind.START_OF_DATA)
            for _ in range(3)
        ]
        automaton.add_edges(sids[0], sids[1:])
        assert automaton.successors(sids[0]) == (sids[1], sids[2])

    def test_bad_edge_rejected(self, simple):
        with pytest.raises(AutomatonError):
            simple.add_edge(0, 99)

    def test_bad_state_lookup_rejected(self, simple):
        with pytest.raises(AutomatonError):
            simple.state(-1)


class TestQueries:
    def test_successors_and_predecessors(self, simple):
        assert simple.successors(0) == (1,)
        assert simple.predecessors(1) == (0,)
        assert simple.predecessors(0) == ()

    def test_predecessor_cache_invalidated_by_mutation(self, simple):
        assert simple.predecessors(2) == (1,)
        simple.add_edge(0, 2)
        assert set(simple.predecessors(2)) == {0, 1}

    def test_start_state_partitions(self):
        automaton = Automaton()
        sod = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        alli = automaton.add_state(CharClass.single("b"), start=StartKind.ALL_INPUT)
        automaton.add_state(CharClass.single("c"))
        assert automaton.start_of_data_states() == (sod,)
        assert automaton.all_input_states() == (alli,)
        assert set(automaton.start_states()) == {sod, alli}

    def test_reporting_states(self, simple):
        assert simple.reporting_states() == (2,)
        assert simple.state(2).code == 42

    def test_default_report_code_is_sid(self):
        automaton = Automaton()
        sid = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA, reporting=True
        )
        assert automaton.state(sid).code == sid

    def test_self_loop_detection(self, simple):
        assert not simple.has_self_loop(0)
        simple.add_edge(0, 0)
        assert simple.has_self_loop(0)

    def test_states_matching(self, simple):
        assert simple.states_matching(ord("b")) == (1,)
        assert simple.states_matching(ord("z")) == ()

    def test_edges_iterator(self, simple):
        assert sorted(simple.edges()) == [(0, 1), (1, 2)]

    def test_version_bumps_on_mutation(self, simple):
        version = simple.version
        simple.add_edge(0, 2)
        assert simple.version > version


class TestValidation:
    def test_valid_automaton_passes(self, simple):
        simple.validate()

    def test_no_start_states_rejected(self):
        automaton = Automaton("bad")
        automaton.add_state(CharClass.single("a"))
        with pytest.raises(AutomatonError, match="no start states"):
            automaton.validate()

    def test_empty_automaton_is_valid(self):
        Automaton().validate()


class TestTransforms:
    def test_compact_keeps_subset(self, simple):
        sub = simple.compact([0, 2])
        assert sub.num_states == 2
        assert sub.num_edges == 0  # the bridging state is gone
        assert sub.state(1).code == 42

    def test_compact_renumbers_edges(self, simple):
        sub = simple.compact([1, 2])
        assert sub.successors(0) == (1,)

    def test_copy_is_independent(self, simple):
        twin = simple.copy()
        twin.add_edge(0, 2)
        assert simple.num_edges == 2
        assert twin.num_edges == 3

    def test_union_offsets_ids(self, simple):
        both = simple.union(simple)
        assert both.num_states == 6
        assert both.num_edges == 4
        assert sorted(both.edges()) == [(0, 1), (1, 2), (3, 4), (4, 5)]
        assert both.reporting_states() == (2, 5)

    def test_union_preserves_start_kinds(self, simple):
        both = simple.union(simple)
        assert set(both.start_of_data_states()) == {0, 3}

    def test_repr_mentions_size(self, simple):
        assert "states=3" in repr(simple)

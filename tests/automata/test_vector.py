"""Unit tests for the bit-parallel vector executor.

The contract under test is *bit-identity* with the set-based
:class:`FlowExecution` — not just equal report sets but the same
reports list (order included), the same ``transitions`` counter, and
the same ``state_vector()`` snapshots at every interleaving point.
That is what lets the scheduler treat the strategy as a pure
substitution (see ``tests/exec/test_vector_backend.py`` for the
run-level corpus).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.execution import CompiledAutomaton, FlowExecution
from repro.automata.random_gen import random_automaton, random_ruleset_automaton
from repro.automata.vector import (
    VectorFlowExecution,
    VectorTables,
)
from repro.workloads.suite import build_suite


def assert_twin(label, set_flow, vec_flow):
    assert vec_flow.state_vector() == set_flow.state_vector(), label
    assert vec_flow.transitions == set_flow.transitions, label
    assert vec_flow.symbols_processed == set_flow.symbols_processed, label
    assert vec_flow.reports == set_flow.reports, label
    assert vec_flow.current == set_flow.current, label
    assert vec_flow.is_dead() == set_flow.is_dead(), label


class TestVectorTables:
    def test_encode_decode_round_trip(self):
        automaton = random_ruleset_automaton(5, num_patterns=4)
        tables = CompiledAutomaton(automaton).vector_tables()
        rng = random.Random(5)
        for _ in range(20):
            sids = frozenset(
                rng.sample(range(tables.num_states), rng.randrange(8))
            )
            assert tables.decode(tables.encode(sids)) == sids

    def test_tables_cached_on_compiled_automaton(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(1, num_patterns=2))
        assert compiled.vector_tables() is compiled.vector_tables()

    def test_symbol_classes_partition_the_alphabet(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(9, num_patterns=4))
        tables = compiled.vector_tables()
        assert len(tables.class_of) == 256
        assert set(tables.class_of) == set(range(tables.num_classes))

    def test_class_members_share_match_masks(self):
        """Two symbols in one class must enable exactly the same states
        — the defining property that makes per-class tables sound."""
        compiled = CompiledAutomaton(random_ruleset_automaton(3, num_patterns=4))
        tables = compiled.vector_tables()
        masks = compiled.label_masks
        for symbol in range(256):
            expected = tables.encode(
                sid
                for sid in range(tables.num_states)
                if masks[sid] & (1 << symbol)
            )
            assert tables.match_masks[tables.class_of[symbol]] == expected, symbol

    def test_successor_union_matches_succ_table(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(17, num_patterns=3))
        tables = compiled.vector_tables()
        rng = random.Random(17)
        for _ in range(50):
            cls = rng.randrange(tables.num_classes)
            sids = rng.sample(
                range(tables.num_states), min(6, tables.num_states)
            )
            expected = set()
            for sid in sids:
                expected.update(compiled.succ[sid])
            expected &= set(tables.decode(tables.match_masks[cls]))
            got = set()
            for position, value in enumerate(
                tables.limbs_of(tables.encode(sids))
            ):
                if value:
                    got |= set(
                        tables.decode(
                            tables.successor_union(cls, position, value)
                        )
                    )
            assert got == expected

    def test_limb_cache_budget_bounds_occupancy(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(2, num_patterns=3))
        tables = compiled.vector_tables()
        tables._limb_budget = 3
        rng = random.Random(2)
        flow = VectorFlowExecution(compiled)
        flow.run(bytes(rng.randrange(256) for _ in range(512)))
        cached = sum(
            len(table) for cls in tables._limb_tables for table in cls
        )
        assert cached <= 3
        # Exhausted budget must not change semantics.
        twin = FlowExecution(compiled)
        twin.run(bytes(0 for _ in range(0)))  # align constructor state
        fresh_set = FlowExecution(compiled)
        fresh_vec = VectorFlowExecution(compiled)
        data = bytes(rng.randrange(256) for _ in range(256))
        fresh_set.run(data)
        fresh_vec.run(data)
        assert_twin("budget", fresh_set, fresh_vec)


class TestVectorEquivalence:
    @pytest.mark.parametrize(
        "name", ["Levenshtein", "Bro217", "EntityResolution"]
    )
    def test_suite_workloads_bit_identical(self, name):
        inst = {i.name: i for i in build_suite()}[name]
        compiled = CompiledAutomaton(inst.automaton)
        data = inst.trace(2048, 7)
        set_flow, vec_flow = FlowExecution(compiled), VectorFlowExecution(compiled)
        set_flow.run(data)
        vec_flow.run(data)
        assert_twin(name, set_flow, vec_flow)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), raw=st.binary(min_size=0, max_size=200))
    def test_random_automata_bit_identical(self, seed, raw):
        automaton = random_automaton(seed, num_states=12, alphabet=b"abcd")
        compiled = CompiledAutomaton(automaton)
        data = bytes(b"abcd"[b % 4] for b in raw)
        set_flow, vec_flow = FlowExecution(compiled), VectorFlowExecution(compiled)
        set_flow.run(data)
        vec_flow.run(data)
        assert_twin(seed, set_flow, vec_flow)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), raw=st.binary(min_size=1, max_size=200))
    def test_enumeration_semantics_bit_identical(self, seed, raw):
        """Scheduler-flow kwargs: seeded initial sets, persistent
        path-independent states, no one-shots, excluded states."""
        rng = random.Random(seed)
        automaton = random_ruleset_automaton(seed, num_patterns=3)
        compiled = CompiledAutomaton(automaton)
        n = len(compiled)
        kwargs = dict(
            initial_current=frozenset(rng.sample(range(n), min(4, n))),
            persistent=frozenset(rng.sample(range(n), min(3, n))),
            one_shot=frozenset(),
            excluded=frozenset(rng.sample(range(n), min(2, n))),
        )
        data = bytes(rng.choice(b"abcdef") for _ in range(len(raw)))
        set_flow = FlowExecution(compiled, **kwargs)
        vec_flow = VectorFlowExecution(compiled, **kwargs)
        # Interleave run/step like the TDM scheduler does.
        pos = 0
        while pos < len(data):
            k = rng.choice([1, 7, 16, 64])
            chunk = data[pos : pos + k]
            set_flow.run(chunk, 31 + pos)
            vec_flow.run(chunk, 31 + pos)
            pos += k
        assert_twin(seed, set_flow, vec_flow)

    def test_step_equals_run(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(8, num_patterns=3))
        data = bytes(random.Random(8).choice(b"abcdef") for _ in range(128))
        stepped = VectorFlowExecution(compiled)
        for index, symbol in enumerate(data):
            stepped.step(symbol, index)
        ran = VectorFlowExecution(compiled)
        ran.run(data)
        assert_twin("step-vs-run", ran, stepped)

    def test_clone_round_trip_stays_bit_identical(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(21, num_patterns=4))
        data = bytes(random.Random(21).choice(b"abcdef") for _ in range(512))
        set_flow, vec_flow = FlowExecution(compiled), VectorFlowExecution(compiled)
        set_flow.run(data[:256])
        vec_flow.run(data[:256])
        set_twin, vec_twin = set_flow.clone(), vec_flow.clone()
        set_twin.run(data[256:], 256)
        vec_twin.run(data[256:], 256)
        assert_twin("clone", set_twin, vec_twin)
        # Originals are unperturbed by the twins.
        assert_twin("original", set_flow, vec_flow)

    def test_one_shot_fires_on_first_symbol_only(self):
        automaton = random_ruleset_automaton(13, num_patterns=3)
        compiled = CompiledAutomaton(automaton)
        assert compiled.start_of_data, "seed must exercise one-shots"
        data = bytes(random.Random(13).choice(b"abcdef") for _ in range(64))
        set_flow, vec_flow = FlowExecution(compiled), VectorFlowExecution(compiled)
        # Split exactly after the first symbol: the one-shot set must
        # not re-arm on the second run call.
        for flow in (set_flow, vec_flow):
            flow.run(data[:1], 0)
            flow.run(data[1:], 1)
        assert_twin("one-shot", set_flow, vec_flow)

    def test_empty_run_is_a_no_op(self):
        compiled = CompiledAutomaton(random_ruleset_automaton(2, num_patterns=2))
        vec_flow = VectorFlowExecution(compiled)
        vec_flow.run(b"")
        assert vec_flow.symbols_processed == 0
        assert not vec_flow._started  # empty runs must not consume one-shots
        assert_twin("empty", FlowExecution(compiled), vec_flow)

    def test_report_order_ascending_within_each_step(self):
        """The per-step sid order is part of the bit-identity contract
        (the set path emits ascending sids after the PR-9 determinism
        fix)."""
        compiled = CompiledAutomaton(random_ruleset_automaton(17, num_patterns=5))
        data = bytes(random.Random(17).choice(b"abcdef") for _ in range(512))
        flow = VectorFlowExecution(compiled)
        flow.run(data)
        by_offset: dict[int, list[int]] = {}
        for report in flow.reports:
            by_offset.setdefault(report.offset, []).append(report.element)
        assert any(len(v) > 1 for v in by_offset.values()), (
            "seed must produce multi-report steps"
        )
        for offset, sids in by_offset.items():
            assert sids == sorted(sids), offset

"""Differential tests: the optimized executor vs. a naive reference.

The production executor latches full-label self-loop states and indexes
their successors per symbol (a large constant-factor win on saturated
automata).  This module re-implements the step semantics in the most
literal way possible and asserts the two agree on reports, current
sets, and transition counts for arbitrary automata and inputs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.execution import CompiledAutomaton, FlowExecution, Report
from repro.automata.random_gen import (
    random_automaton,
    random_ruleset_automaton,
)


class NaiveExecution:
    """Literal implementation of the documented step semantics."""

    def __init__(
        self,
        compiled: CompiledAutomaton,
        *,
        initial_current=(),
        persistent=None,
        one_shot=None,
        excluded=frozenset(),
    ) -> None:
        self.compiled = compiled
        self.current = set(initial_current)
        self.persistent = (
            compiled.all_input if persistent is None else persistent
        )
        self.one_shot = (
            compiled.start_of_data if one_shot is None else one_shot
        )
        self.excluded = excluded
        self.reports: list[Report] = []
        self.transitions = 0
        self._started = False

    def step(self, symbol: int, offset: int) -> None:
        compiled = self.compiled
        enabled = set()
        for src in self.current:
            enabled.update(compiled.succ[src])
        enabled |= self.persistent
        if not self._started:
            enabled |= self.one_shot
            self._started = True
        bit = 1 << symbol
        current = {
            sid for sid in enabled if compiled.label_masks[sid] & bit
        }
        current -= self.excluded
        self.current = current
        self.transitions += len(current)
        for sid in current & compiled.reporting:
            self.reports.append(
                Report(
                    offset=offset,
                    element=sid,
                    code=compiled.report_codes[sid],
                )
            )

    def run(self, data: bytes, base_offset: int = 0) -> None:
        for index, symbol in enumerate(data):
            self.step(symbol, base_offset + index)


def assert_equivalent(compiled, data, **kwargs):
    fast = FlowExecution(compiled, **kwargs)
    slow = NaiveExecution(compiled, **kwargs)
    for index, symbol in enumerate(data):
        fast.step(symbol, index)
        slow.step(symbol, index)
        assert fast.state_vector() == frozenset(slow.current), index
    assert sorted(fast.reports) == sorted(slow.reports)
    assert fast.transitions == slow.transitions


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), raw=st.binary(min_size=0, max_size=200))
def test_fast_executor_equals_naive_on_adversarial(seed, raw):
    data = bytes(b"abcd"[b % 4] for b in raw)
    automaton = random_automaton(seed, num_states=10, alphabet=b"abcd")
    assert_equivalent(CompiledAutomaton(automaton), data)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), raw=st.binary(min_size=0, max_size=200))
def test_fast_executor_equals_naive_on_rulesets(seed, raw):
    data = bytes(b"abcdef"[b % 6] for b in raw)
    automaton = random_ruleset_automaton(seed, num_patterns=5)
    assert_equivalent(CompiledAutomaton(automaton), data)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), raw=st.binary(min_size=1, max_size=120))
def test_fast_executor_equals_naive_with_flow_options(seed, raw):
    """Exercise the enumeration-flow parameterizations: seeded current,
    custom persistent set, suppressed one-shot, exclusions."""
    rng = random.Random(seed)
    data = bytes(b"abcd"[b % 4] for b in raw)
    automaton = random_automaton(seed, num_states=9, alphabet=b"abcd")
    compiled = CompiledAutomaton(automaton)
    count = len(automaton)
    kwargs = dict(
        initial_current=frozenset(
            rng.sample(range(count), rng.randint(0, min(4, count)))
        ),
        persistent=frozenset(
            rng.sample(range(count), rng.randint(0, min(3, count)))
        ),
        one_shot=frozenset(
            rng.sample(range(count), rng.randint(0, min(3, count)))
        ),
        excluded=frozenset(
            rng.sample(range(count), rng.randint(0, min(3, count)))
        ),
    )
    assert_equivalent(compiled, data, **kwargs)


def test_saturating_automaton_latches(
):
    """Direct check on the latching fast path: gap-pattern automata
    saturate and the two executors still agree step for step."""
    from repro.workloads.spm import spm_benchmark, transaction_trace

    automaton, items = spm_benchmark(num_patterns=6, seed=1)
    data = transaction_trace(items, 600, seed=2, hit_fraction=0.5)
    assert_equivalent(CompiledAutomaton(automaton), data)


def test_dotstar_latching_equivalence():
    from repro.regex.ruleset import compile_ruleset
    from repro.workloads.tracegen import pm_trace

    automaton, _ = compile_ruleset(["ab.*cd", "x.*y.*z", "^q.*r"])
    data = pm_trace(automaton, 500, seed=3)
    assert_equivalent(CompiledAutomaton(automaton), data)

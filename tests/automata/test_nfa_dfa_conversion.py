"""Tests for classic NFAs, subset construction, and ANML conversion —
including three-way semantic equivalence."""

import random

import pytest

from repro.automata.charclass import CharClass
from repro.automata.conversion import nfa_to_anml
from repro.automata.dfa import subset_construction, symbol_partition
from repro.automata.execution import run_automaton
from repro.automata.nfa import Nfa
from repro.errors import AutomatonError, CapacityError


def build_unanchored_literal(text: bytes) -> Nfa:
    """Classic NFA for .*text with a self-loop start."""
    nfa = Nfa(name=f"nfa-{text!r}")
    start = nfa.add_state(start=True)
    nfa.add_transition(start, CharClass.full(), start)
    previous = start
    for index, byte in enumerate(text):
        state = nfa.add_state(accept=index == len(text) - 1)
        nfa.add_transition(previous, CharClass.single(byte), state)
        previous = state
    return nfa


class TestNfaBasics:
    def test_run_reports_offsets(self):
        nfa = build_unanchored_literal(b"ab")
        offsets = sorted({offset for offset, _ in nfa.run(b"abab")})
        assert offsets == [1, 3]

    def test_accepts_whole_string(self):
        nfa = build_unanchored_literal(b"ab")
        assert nfa.accepts(b"zzab")
        assert not nfa.accepts(b"abz")

    def test_empty_label_rejected(self):
        nfa = Nfa()
        a, b = nfa.add_state(start=True), nfa.add_state()
        with pytest.raises(AutomatonError):
            nfa.add_transition(a, CharClass(), b)

    def test_unknown_state_rejected(self):
        nfa = Nfa()
        nfa.add_state(start=True)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, CharClass.single("a"), 5)

    def test_used_symbols(self):
        nfa = Nfa()
        a, b = nfa.add_state(start=True), nfa.add_state()
        nfa.add_transition(a, CharClass("xy"), b)
        assert nfa.used_symbols() == CharClass("xy")


class TestEpsilon:
    @pytest.fixture
    def epsilon_nfa(self):
        # start --eps--> mid --a--> end(accept); also start --b--> end
        nfa = Nfa()
        start = nfa.add_state(start=True)
        mid = nfa.add_state()
        end = nfa.add_state(accept=True)
        nfa.add_epsilon(start, mid)
        nfa.add_transition(mid, CharClass.single("a"), end)
        nfa.add_transition(start, CharClass.single("b"), end)
        return nfa

    def test_closure(self, epsilon_nfa):
        assert epsilon_nfa.epsilon_closure({0}) == frozenset({0, 1})

    def test_run_follows_epsilon(self, epsilon_nfa):
        assert epsilon_nfa.accepts(b"a")
        assert epsilon_nfa.accepts(b"b")
        assert not epsilon_nfa.accepts(b"c")

    def test_without_epsilon_equivalent(self, epsilon_nfa):
        flat = epsilon_nfa.without_epsilon()
        assert not flat.has_epsilon()
        for text in (b"a", b"b", b"ab", b"", b"c"):
            assert flat.accepts(text) == epsilon_nfa.accepts(text)

    def test_epsilon_into_accept_marks_accepting(self):
        nfa = Nfa()
        start = nfa.add_state(start=True)
        mid = nfa.add_state()
        end = nfa.add_state(accept=True)
        nfa.add_transition(start, CharClass.single("a"), mid)
        nfa.add_epsilon(mid, end)
        flat = nfa.without_epsilon()
        assert flat.accepts(b"a")
        assert mid in flat.accept_states


class TestSymbolPartition:
    def test_partition_covers_alphabet(self):
        nfa = build_unanchored_literal(b"ab")
        classes, symbol_class = symbol_partition(nfa)
        assert sum(len(klass) for klass in classes) == 256
        assert len(symbol_class) == 256
        for index, klass in enumerate(classes):
            for symbol in klass:
                assert symbol_class[symbol] == index

    def test_distinguishable_symbols_split(self):
        nfa = build_unanchored_literal(b"ab")
        classes, _ = symbol_partition(nfa)
        # a, b, and everything-else: exactly 3 classes.
        assert len(classes) == 3


class TestSubsetConstruction:
    def test_dfa_matches_nfa_reports(self):
        nfa = build_unanchored_literal(b"aba")
        dfa = subset_construction(nfa)
        data = b"abababa-aba"
        assert dfa.run(data) == sorted({o for o, _ in nfa.run(data)})

    def test_dfa_accepts_matches_nfa(self):
        nfa = build_unanchored_literal(b"ab")
        dfa = subset_construction(nfa)
        rng = random.Random(7)
        for _ in range(50):
            text = bytes(rng.choice(b"abz") for _ in range(rng.randrange(8)))
            assert dfa.accepts(text) == nfa.accepts(text)

    def test_capacity_guard(self):
        nfa = build_unanchored_literal(b"abcabc")
        with pytest.raises(CapacityError):
            subset_construction(nfa, max_states=2)

    def test_exponential_blowup_exists(self):
        # .*a.{n} forces the DFA to remember n bits: > 2^n states.
        n = 6
        nfa = Nfa()
        start = nfa.add_state(start=True)
        nfa.add_transition(start, CharClass.full(), start)
        previous = start
        chain = [CharClass.single("a")] + [CharClass.full()] * n
        for index, label in enumerate(chain):
            state = nfa.add_state(accept=index == len(chain) - 1)
            nfa.add_transition(previous, label, state)
            previous = state
        dfa = subset_construction(nfa)
        assert dfa.num_states > 2**n


class TestAnmlConversion:
    def test_conversion_preserves_reports(self):
        nfa = build_unanchored_literal(b"abc")
        automaton = nfa_to_anml(nfa)
        data = b"xxabcxabc"
        anml_reports = {
            (r.offset, r.code)
            for r in run_automaton(automaton, data).report_set
        }
        assert anml_reports == set(nfa.run(data))

    def test_conversion_random_equivalence(self):
        rng = random.Random(3)
        for trial in range(15):
            nfa = Nfa(name=f"rand{trial}")
            count = rng.randint(2, 6)
            for index in range(count):
                nfa.add_state(
                    start=index == 0 or rng.random() < 0.2,
                    accept=rng.random() < 0.4,
                )
            for _ in range(rng.randint(1, 12)):
                src, dst = rng.randrange(count), rng.randrange(count)
                label = CharClass(rng.sample(list(b"abc"), rng.randint(1, 2)))
                nfa.add_transition(src, label, dst)
            if nfa.start_states & nfa.accept_states:
                continue  # empty-match shapes are rejected by design
            automaton = nfa_to_anml(nfa)
            data = bytes(rng.choice(b"abc") for _ in range(30))
            anml_reports = {
                (r.offset, r.code)
                for r in run_automaton(automaton, data).report_set
            }
            assert anml_reports == set(nfa.run(data)), f"trial {trial}"

    def test_accepting_start_rejected(self):
        nfa = Nfa()
        both = nfa.add_state(start=True, accept=True)
        other = nfa.add_state()
        nfa.add_transition(both, CharClass.single("a"), other)
        with pytest.raises(AutomatonError, match="empty match"):
            nfa_to_anml(nfa)

    def test_conversion_splits_by_incoming_class(self):
        # q reached on [a] from p1 and on [b] from p2 -> two STE copies.
        nfa = Nfa()
        p1 = nfa.add_state(start=True)
        p2 = nfa.add_state(start=True)
        q = nfa.add_state(accept=True)
        nfa.add_transition(p1, CharClass.single("a"), q)
        nfa.add_transition(p2, CharClass.single("b"), q)
        automaton = nfa_to_anml(nfa)
        copies = [s for s in automaton.states() if s.report_code == q]
        assert len(copies) == 2

    def test_conversion_eliminates_epsilon_first(self):
        nfa = Nfa()
        start = nfa.add_state(start=True)
        mid = nfa.add_state()
        end = nfa.add_state(accept=True)
        nfa.add_epsilon(start, mid)
        nfa.add_transition(mid, CharClass.single("a"), end)
        automaton = nfa_to_anml(nfa)
        reports = run_automaton(automaton, b"a").report_set
        assert {r.offset for r in reports} == {0}

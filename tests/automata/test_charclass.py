"""Unit tests for the 256-symbol character class."""

import pytest

from repro.automata.charclass import ALPHABET_SIZE, CharClass
from repro.errors import AutomatonError


class TestConstruction:
    def test_empty_by_default(self):
        assert len(CharClass()) == 0
        assert not CharClass()

    def test_from_ints_and_chars(self):
        klass = CharClass([97, "b", 0])
        assert "a" in klass
        assert ord("b") in klass
        assert 0 in klass
        assert len(klass) == 3

    def test_single(self):
        klass = CharClass.single("x")
        assert list(klass) == [ord("x")]

    def test_full_has_all_symbols(self):
        full = CharClass.full()
        assert len(full) == ALPHABET_SIZE
        assert full.is_full()
        assert 0 in full and 255 in full

    def test_range_inclusive(self):
        klass = CharClass.range("a", "c")
        assert sorted(klass) == [97, 98, 99]

    def test_range_single_symbol(self):
        assert list(CharClass.range(5, 5)) == [5]

    def test_inverted_range_rejected(self):
        with pytest.raises(AutomatonError):
            CharClass.range("c", "a")

    def test_from_string_deduplicates(self):
        assert len(CharClass.from_string("aab")) == 2

    def test_from_mask_validates_bounds(self):
        with pytest.raises(AutomatonError):
            CharClass.from_mask(1 << 256)
        with pytest.raises(AutomatonError):
            CharClass.from_mask(-1)

    def test_symbol_out_of_range_rejected(self):
        with pytest.raises(AutomatonError):
            CharClass([256])
        with pytest.raises(AutomatonError):
            CharClass(["ab"])


class TestSetAlgebra:
    def test_union(self):
        assert CharClass("ab") | CharClass("bc") == CharClass("abc")

    def test_intersection(self):
        assert CharClass("ab") & CharClass("bc") == CharClass("b")

    def test_difference(self):
        assert CharClass("abc") - CharClass("b") == CharClass("ac")

    def test_symmetric_difference(self):
        assert CharClass("ab") ^ CharClass("bc") == CharClass("ac")

    def test_complement_roundtrip(self):
        klass = CharClass("qz")
        assert klass.complement().complement() == klass
        assert klass.complement().isdisjoint(klass)
        assert len(klass) + len(klass.complement()) == ALPHABET_SIZE

    def test_subset(self):
        assert CharClass("a").issubset(CharClass("ab"))
        assert not CharClass("ac").issubset(CharClass("ab"))

    def test_disjoint(self):
        assert CharClass("ab").isdisjoint(CharClass("cd"))
        assert not CharClass("ab").isdisjoint(CharClass("bc"))


class TestProtocols:
    def test_equality_and_hash_by_value(self):
        assert CharClass("ab") == CharClass("ba")
        assert hash(CharClass("ab")) == hash(CharClass("ba"))
        assert CharClass("ab") != CharClass("ac")

    def test_not_equal_to_other_types(self):
        assert CharClass("a") != "a"

    def test_contains_rejects_other_types_quietly(self):
        assert None not in CharClass("a")

    def test_iteration_is_sorted(self):
        symbols = list(CharClass([200, 5, 97]))
        assert symbols == sorted(symbols) == [5, 97, 200]

    def test_symbols_tuple(self):
        assert CharClass("ba").symbols() == (97, 98)

    def test_sample_lowest(self):
        assert CharClass([9, 3, 7]).sample() == 3

    def test_sample_empty_raises(self):
        with pytest.raises(AutomatonError):
            CharClass().sample()


class TestIntervalsAndSpec:
    def test_intervals_merges_runs(self):
        klass = CharClass([1, 2, 3, 7, 10, 11])
        assert klass.intervals() == [(1, 3), (7, 7), (10, 11)]

    def test_intervals_empty(self):
        assert CharClass().intervals() == []

    def test_spec_star_for_full(self):
        assert CharClass.full().spec() == "*"

    def test_spec_empty(self):
        assert CharClass().spec() == "[]"

    def test_spec_range_rendering(self):
        assert CharClass.range("a", "f").spec() == "[a-f]"

    def test_spec_nonprintable_uses_hex(self):
        assert "\\x00" in CharClass([0]).spec()

    def test_repr_roundtrips_spec(self):
        assert "a-c" in repr(CharClass.range("a", "c"))

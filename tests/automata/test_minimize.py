"""Tests for Hopcroft DFA minimization."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.charclass import CharClass
from repro.automata.dfa import subset_construction
from repro.automata.minimize import minimize
from repro.automata.nfa import Nfa


def unanchored_literal(text: bytes) -> Nfa:
    nfa = Nfa()
    start = nfa.add_state(start=True)
    nfa.add_transition(start, CharClass.full(), start)
    previous = start
    for index, byte in enumerate(text):
        state = nfa.add_state(accept=index == len(text) - 1)
        nfa.add_transition(previous, CharClass.single(byte), state)
        previous = state
    return nfa


def alternation(words: list[bytes]) -> Nfa:
    nfa = Nfa()
    start = nfa.add_state(start=True)
    for word in words:
        previous = start
        for index, byte in enumerate(word):
            state = nfa.add_state(accept=index == len(word) - 1)
            nfa.add_transition(previous, CharClass.single(byte), state)
            previous = state
    return nfa


class TestMinimize:
    def test_removes_duplicate_suffix_states(self):
        # ab|cb: the two 'b' tails are equivalent.
        dfa = subset_construction(alternation([b"ab", b"cb"]))
        minimal = minimize(dfa)
        assert minimal.num_states < dfa.num_states

    def test_language_preserved_exhaustively(self):
        nfa = alternation([b"ab", b"cb", b"ad"])
        dfa = subset_construction(nfa)
        minimal = minimize(dfa)
        for first in b"abcdx":
            for second in b"abcdx":
                word = bytes([first, second])
                assert minimal.accepts(word) == dfa.accepts(word), word

    def test_report_stream_preserved(self):
        nfa = unanchored_literal(b"aba")
        dfa = subset_construction(nfa)
        minimal = minimize(dfa)
        rng = random.Random(0)
        for _ in range(20):
            data = bytes(rng.choice(b"abx") for _ in range(40))
            assert minimal.run(data) == dfa.run(data)

    def test_idempotent(self):
        dfa = subset_construction(unanchored_literal(b"abc"))
        once = minimize(dfa)
        twice = minimize(once)
        assert twice.num_states == once.num_states

    def test_already_minimal_untouched(self):
        # The sliding-window DFA for .*a.{2}z is already minimal-ish;
        # minimization must never grow it.
        nfa = Nfa()
        start = nfa.add_state(start=True)
        nfa.add_transition(start, CharClass.full(), start)
        previous = start
        for index, label in enumerate(
            [CharClass.single("a"), CharClass.full(), CharClass.single("z")]
        ):
            state = nfa.add_state(accept=index == 2)
            nfa.add_transition(previous, label, state)
            previous = state
        dfa = subset_construction(nfa)
        minimal = minimize(dfa)
        assert minimal.num_states <= dfa.num_states

    def test_initial_state_is_zero(self):
        dfa = subset_construction(alternation([b"ab", b"cb"]))
        minimal = minimize(dfa)
        assert not minimal.accepting[0]
        assert minimal.accepts(b"ab")

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.lists(
            st.binary(min_size=1, max_size=3).map(
                lambda raw: bytes(b"abc"[x % 3] for x in raw)
            ),
            min_size=1,
            max_size=4,
        ),
        probe_seed=st.integers(0, 10_000),
    )
    def test_property_language_equivalence(self, words, probe_seed):
        dfa = subset_construction(alternation(words))
        minimal = minimize(dfa)
        assert minimal.num_states <= dfa.num_states
        rng = random.Random(probe_seed)
        for _ in range(30):
            probe = bytes(rng.choice(b"abcx") for _ in range(rng.randrange(6)))
            assert minimal.accepts(probe) == dfa.accepts(probe), probe

    def test_minimality_vs_bruteforce_distinct_behaviors(self):
        """No two states of the minimized DFA behave identically on all
        short probes (a necessary minimality condition)."""
        dfa = minimize(subset_construction(alternation([b"ab", b"cb", b"cd"])))
        probes = [
            bytes(word)
            for length in range(4)
            for word in __import__("itertools").product(b"abcdx", repeat=length)
        ]

        def behavior(state):
            signature = []
            for probe in probes:
                current = state
                for symbol in probe:
                    current = dfa.step(current, symbol)
                signature.append(dfa.accepting[current])
            return tuple(signature)

        behaviors = [behavior(s) for s in range(dfa.num_states)]
        assert len(set(behaviors)) == dfa.num_states

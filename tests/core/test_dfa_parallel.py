"""Tests for the data-parallel DFA scheme (Section 2.2 comparator)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.charclass import CharClass
from repro.automata.dfa import subset_construction
from repro.automata.nfa import Nfa
from repro.core.dfa_parallel import enumerate_segment, parallel_dfa_run
from repro.errors import ConfigurationError


def unanchored(words):
    nfa = Nfa()
    start = nfa.add_state(start=True)
    nfa.add_transition(start, CharClass.full(), start)
    for word in words:
        previous = start
        for index, byte in enumerate(word):
            state = nfa.add_state(accept=index == len(word) - 1)
            nfa.add_transition(previous, CharClass.single(byte), state)
            previous = state
    return nfa


@pytest.fixture(scope="module")
def dfa():
    return subset_construction(unanchored([b"ab", b"bc", b"ca"]))


def sequential_reference(dfa, data):
    state = 0
    accepts = []
    for index, symbol in enumerate(data):
        state = dfa.step(state, symbol)
        if dfa.accepting[state]:
            accepts.append(index)
    return state, accepts


class TestParallelDfa:
    @pytest.mark.parametrize("segments", [1, 2, 4, 7])
    def test_equals_sequential(self, dfa, segments):
        rng = random.Random(segments)
        data = bytes(rng.choice(b"abc") for _ in range(100))
        expected_state, expected_accepts = sequential_reference(dfa, data)
        result = parallel_dfa_run(dfa, data, segments)
        assert result.final_state == expected_state
        assert list(result.accept_offsets) == expected_accepts

    def test_convergence_cuts_work(self, dfa):
        rng = random.Random(9)
        data = bytes(rng.choice(b"abc") for _ in range(200))
        converged = parallel_dfa_run(dfa, data, 4, converge=True)
        naive = parallel_dfa_run(dfa, data, 4, converge=False)
        assert converged.enumerated_steps < naive.enumerated_steps
        assert converged.accept_offsets == naive.accept_offsets

    def test_naive_work_is_states_times_symbols(self, dfa):
        data = b"abcabc"
        result = parallel_dfa_run(dfa, data, 2, converge=False)
        tail = len(data) - result.segments[0].end
        expected = result.segments[0].end + tail * dfa.num_states
        assert result.enumerated_steps == expected

    def test_work_amplification_bounded_by_states(self, dfa):
        rng = random.Random(1)
        data = bytes(rng.choice(b"abc") for _ in range(80))
        result = parallel_dfa_run(dfa, data, 4)
        assert 1.0 <= result.work_amplification <= dfa.num_states

    def test_empty_input(self, dfa):
        result = parallel_dfa_run(dfa, b"", 4)
        assert result.final_state == 0
        assert result.accept_offsets == ()

    def test_zero_segments_rejected(self, dfa):
        with pytest.raises(ConfigurationError):
            parallel_dfa_run(dfa, b"ab", 0)

    def test_segment_trace_shapes(self, dfa):
        data = b"abcabcab"
        trace, _ = enumerate_segment(dfa, data, 2, 6)
        assert len(trace.end_state) == dfa.num_states
        assert len(trace.distinct_after) == 4
        # Distinct path counts never increase (functions compose).
        curve = trace.distinct_after
        assert all(b <= a for a, b in zip(curve, curve[1:]))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        segments=st.integers(1, 8),
        length=st.integers(0, 120),
    )
    def test_property_equivalence(self, dfa, seed, segments, length):
        rng = random.Random(seed)
        data = bytes(rng.choice(b"abcx") for _ in range(length))
        expected_state, expected_accepts = sequential_reference(dfa, data)
        result = parallel_dfa_run(dfa, data, segments)
        assert result.final_state == expected_state
        assert list(result.accept_offsets) == expected_accepts

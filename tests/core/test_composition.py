"""Unit tests for host-side composition (truth masking, M rebuild)."""

import pytest

from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import Report
from repro.ap.events import OutputEvent
from repro.core.composition import compose_segment, unit_truth_map
from repro.core.enumeration import EnumerationUnit
from repro.core.merging import FlowReductionStats, PlannedFlow
from repro.core.partitioning import InputSegment
from repro.core.scheduler import ASG_FLOW_ID, GOLDEN_FLOW_ID, SegmentPlan, SegmentResult, SegmentMetrics
from repro.errors import CompositionError

EMPTY_STATS = FlowReductionStats(0, 0, 0, 0)


@pytest.fixture
def analysis():
    """Two components: .*ab (states 0..2) and .*cd (states 3..5)."""
    automaton = Automaton("comp")
    hub_a = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub_a, builder.classes_for("ab"), report_code=0)
    hub_b = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub_b, builder.classes_for("cd"), report_code=1)
    return AutomatonAnalysis(automaton)


def make_result(
    plan,
    events=(),
    unit_history=None,
    final_currents=None,
    asg_final=frozenset(),
):
    return SegmentResult(
        plan=plan,
        events=list(events),
        unit_history=unit_history or {},
        final_currents=final_currents or {},
        asg_final=asg_final,
        metrics=SegmentMetrics(raw_events=len(events)),
    )


def make_plan(units_by_flow, *, golden=False, start=4, end=8):
    flows = tuple(
        PlannedFlow(flow_id=flow_id, units=tuple(units))
        for flow_id, units in units_by_flow.items()
    )
    return SegmentPlan(
        segment=InputSegment(
            index=0 if golden else 1,
            start=0 if golden else start,
            end=end,
            boundary_symbol=None if golden else ord("a"),
        ),
        flows=flows,
        stats=EMPTY_STATS,
        asg_initial=frozenset(),
        is_golden=golden,
    )


def unit(uid, members, component, parent=None):
    return EnumerationUnit(
        unit_id=uid, parent=parent, members=frozenset(members), component=component
    )


def event(offset, element, flow_id, code=0):
    return OutputEvent(
        offset=offset, report_code=code, element=element, flow_id=flow_id
    )


class TestUnitTruthMap:
    def test_map_over_flows(self):
        units = [unit(0, {1}, 0), unit(1, {2, 3}, 0)]
        plan = make_plan({0: [units[0]], 1: [units[1]]})
        truth = unit_truth_map(plan.flows, frozenset({1, 2}))
        assert truth == {0: True, 1: False}


class TestGoldenComposition:
    def test_everything_true(self, analysis):
        plan = make_plan({}, golden=True)
        result = make_result(
            plan,
            events=[event(3, 2, GOLDEN_FLOW_ID)],
            final_currents={GOLDEN_FLOW_ID: frozenset({0, 2})},
        )
        composed = compose_segment(result, {}, analysis)
        assert composed.true_reports == frozenset(
            {Report(offset=3, element=2, code=0)}
        )
        assert composed.final_matched == frozenset({0, 2})
        assert composed.false_events == 0


class TestEventFiltering:
    def test_asg_events_always_true(self, analysis):
        plan = make_plan({})
        result = make_result(plan, events=[event(5, 2, ASG_FLOW_ID)])
        composed = compose_segment(result, {}, analysis)
        assert len(composed.true_reports) == 1

    def test_true_unit_events_pass(self, analysis):
        u = unit(0, {1}, component=0)
        plan = make_plan({0: [u]})
        result = make_result(
            plan,
            events=[event(5, 2, 0)],
            unit_history={0: [(0, 4)]},
            final_currents={0: frozenset({2})},
        )
        composed = compose_segment(result, {0: True}, analysis)
        assert {r.offset for r in composed.true_reports} == {5}
        assert composed.true_events == 1

    def test_false_unit_events_filtered(self, analysis):
        u = unit(0, {1}, component=0)
        plan = make_plan({0: [u]})
        result = make_result(
            plan,
            events=[event(5, 2, 0)],
            unit_history={0: [(0, 4)]},
            final_currents={0: frozenset({2})},
        )
        composed = compose_segment(result, {0: False}, analysis)
        assert not composed.true_reports
        assert composed.false_events == 1

    def test_cross_component_masking(self, analysis):
        # One flow carries a true unit in component 0 and a false unit
        # in component 1: only component-0 events survive.
        u_true = unit(0, {1}, component=0)
        u_false = unit(1, {4}, component=1)
        plan = make_plan({0: [u_true, u_false]})
        result = make_result(
            plan,
            events=[event(5, 2, 0), event(6, 5, 0, code=1)],
            unit_history={0: [(0, 4)], 1: [(0, 4)]},
            final_currents={0: frozenset({2, 5})},
        )
        composed = compose_segment(result, {0: True, 1: False}, analysis)
        assert {r.element for r in composed.true_reports} == {2}

    def test_convergence_threshold_respected(self, analysis):
        # Unit 1 moved onto flow 0 at offset 6: flow-0 events in its
        # component count for it only from 6 onward.
        u_own = unit(0, {1}, component=0)
        u_moved = unit(1, {4}, component=1)
        plan = make_plan({0: [u_own], 1: [u_moved]})
        result = make_result(
            plan,
            events=[
                event(5, 5, 0, code=1),  # before the move: flow 1's comp
                event(7, 5, 0, code=1),  # after the move
            ],
            unit_history={0: [(0, 4)], 1: [(1, 4), (0, 6)]},
            final_currents={0: frozenset({5}), 1: frozenset()},
        )
        composed = compose_segment(result, {0: False, 1: True}, analysis)
        assert {r.offset for r in composed.true_reports} == {7}

    def test_unknown_unit_in_truth_rejected(self, analysis):
        plan = make_plan({})
        result = make_result(plan)
        with pytest.raises(CompositionError):
            compose_segment(result, {99: True}, analysis)


class TestFinalMatched:
    def test_union_of_asg_and_true_units(self, analysis):
        u_true = unit(0, {1}, component=0)
        u_false = unit(1, {4}, component=1)
        plan = make_plan({0: [u_true], 1: [u_false]})
        result = make_result(
            plan,
            unit_history={0: [(0, 4)], 1: [(1, 4)]},
            final_currents={0: frozenset({2}), 1: frozenset({5})},
            asg_final=frozenset({0, 3}),
        )
        composed = compose_segment(
            result, {0: True, 1: False}, analysis
        )
        # ASG hubs + true unit's component-masked current; the false
        # unit's state 5 is excluded.
        assert composed.final_matched == frozenset({0, 3, 2})

    def test_unit_rehomed_to_asg_contributes_via_asg_final(self, analysis):
        u = unit(0, {1}, component=0)
        plan = make_plan({0: [u]})
        result = make_result(
            plan,
            unit_history={0: [(0, 4), (ASG_FLOW_ID, 6)]},
            final_currents={0: frozenset()},
            asg_final=frozenset({0, 2}),
        )
        composed = compose_segment(result, {0: True}, analysis)
        assert composed.final_matched == frozenset({0, 2})

    def test_cross_component_current_masked_out(self, analysis):
        # A flow's final current includes component-1 states, but its
        # only true unit is in component 0.
        u = unit(0, {1}, component=0)
        plan = make_plan({0: [u]})
        result = make_result(
            plan,
            unit_history={0: [(0, 4)]},
            final_currents={0: frozenset({2, 5})},
        )
        composed = compose_segment(result, {0: True}, analysis)
        assert composed.final_matched == frozenset({2})

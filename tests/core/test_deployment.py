"""Tests for mapping PAP plans onto the board model."""

import pytest

from repro.ap.device import Board
from repro.ap.geometry import BoardGeometry
from repro.core.config import PAPConfig
from repro.core.deployment import deploy_plan
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import CapacityError, PlacementError
from repro.regex.ruleset import compile_ruleset

TINY = BoardGeometry(ranks=1, devices_per_rank=2, stes_per_half_core=64)


@pytest.fixture
def automaton():
    compiled, _ = compile_ruleset(["abc", "xyz", "q[rs]t"])
    return compiled


@pytest.fixture
def pap(automaton):
    return ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=TINY)
    )


@pytest.fixture
def trace():
    return (b"abc xyz qrt " * 64)[:512]


class TestDeployPlan:
    def test_one_replica_per_segment(self, automaton, pap, trace):
        plan = pap.plan(trace)
        board = Board(geometry=TINY)
        deployment = deploy_plan(board, automaton, plan)
        assert len(deployment.segments) == len(plan.segments)
        offsets = [s.first_half_core for s in deployment.segments]
        assert offsets == sorted(set(offsets))

    def test_replicas_programmed(self, automaton, pap, trace):
        plan = pap.plan(trace)
        board = Board(geometry=TINY)
        deployment = deploy_plan(board, automaton, plan)
        for segment in deployment.segments:
            half_core = board.half_core(segment.first_half_core)
            assert half_core.occupancy > 0
            assert half_core.routing.compiled

    def test_flow_slots_bound_per_device(self, automaton, pap, trace):
        plan = pap.plan(trace)
        board = Board(geometry=TINY)
        deployment = deploy_plan(board, automaton, plan)
        for segment_deploy, segment_plan in zip(
            deployment.segments, plan.segments
        ):
            expected = len(segment_plan.flows) + (
                0 if segment_plan.is_golden else 1  # + ASG flow
            )
            assert len(segment_deploy.flow_slots) == expected
        occupied = sum(
            device.state_vector_cache.occupied() for device in board.devices
        )
        assert occupied == sum(
            len(s.flow_slots) for s in deployment.segments
        )

    def test_board_too_small_rejected(self, automaton, pap, trace):
        plan = pap.plan(trace)
        small = Board(
            geometry=BoardGeometry(
                ranks=1, devices_per_rank=1, stes_per_half_core=64
            )
        )
        with pytest.raises(PlacementError, match="half-cores"):
            deploy_plan(small, automaton, plan)

    def test_cache_capacity_enforced(self, automaton, pap, trace):
        plan = pap.plan(trace)
        cramped = Board(
            geometry=BoardGeometry(
                ranks=1,
                devices_per_rank=2,
                stes_per_half_core=64,
                state_vector_cache_entries=0,
            )
        )
        has_flows = any(
            not p.is_golden for p in plan.segments
        )
        if not has_flows:
            pytest.skip("plan has no enumerated segments")
        with pytest.raises(CapacityError, match="state"):
            deploy_plan(cramped, automaton, plan)

    def test_half_cores_used(self, automaton, pap, trace):
        plan = pap.plan(trace)
        board = Board(geometry=TINY)
        deployment = deploy_plan(board, automaton, plan)
        assert deployment.half_cores_used <= board.num_half_cores
        assert deployment.half_cores_used == len(plan.segments)

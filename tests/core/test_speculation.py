"""Tests for the speculative execution extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.automata.random_gen import random_input, random_ruleset_automaton
from repro.core.config import PAPConfig
from repro.core.speculation import SpeculativeAutomataProcessor
from repro.regex.ruleset import compile_ruleset

BOARD = BoardGeometry(ranks=1, devices_per_rank=2)  # 4 half-cores
CONFIG = PAPConfig(geometry=BOARD)


@pytest.fixture(scope="module")
def ruleset():
    automaton, _ = compile_ruleset(["abc", "x[yz]w", "^hdr"])
    return automaton


@pytest.fixture(scope="module")
def trace():
    rng = random.Random(4)
    return bytes(rng.choice(b"abcxyzw h") for _ in range(3000))


class TestCorrectness:
    @pytest.mark.parametrize("predictor", ["cold", "profile", "warmup"])
    def test_reports_equal_sequential(self, ruleset, trace, predictor):
        baseline = run_sequential(ruleset, trace)
        spec = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor=predictor
        )
        result = spec.run(trace)
        assert result.reports == baseline.reports

    def test_custom_predictor_callable(self, ruleset, trace):
        baseline = run_sequential(ruleset, trace)
        spec = SpeculativeAutomataProcessor(
            ruleset,
            config=CONFIG,
            predictor=lambda segment: frozenset({1, 2}),  # mostly wrong
        )
        result = spec.run(trace)
        assert result.reports == baseline.reports
        assert result.mispredictions > 0

    def test_unknown_predictor_rejected(self, ruleset):
        spec = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor="psychic"
        )
        with pytest.raises(ValueError):
            spec.run(b"ab")

    def test_empty_input(self, ruleset):
        spec = SpeculativeAutomataProcessor(ruleset, config=CONFIG)
        result = spec.run(b"")
        assert result.reports == frozenset()
        assert result.total_cycles == 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), data_seed=st.integers(0, 10_000))
    def test_property_reports_equal_sequential(self, seed, data_seed):
        automaton = random_ruleset_automaton(seed, num_patterns=4)
        data = random_input(data_seed, length=400)
        baseline = run_sequential(automaton, data)
        for predictor in ("cold", "profile"):
            result = SpeculativeAutomataProcessor(
                automaton, config=CONFIG, predictor=predictor
            ).run(data)
            assert result.reports == baseline.reports, predictor


class TestSpeculationDynamics:
    def test_cold_predictor_accuracy_reported(self, ruleset, trace):
        spec = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor="cold"
        )
        result = spec.run(trace)
        assert 0.0 <= result.prediction_accuracy <= 1.0
        assert result.mispredictions == sum(
            1 for s in result.segments if not s.correct
        )

    def test_misprediction_costs_rerun(self, ruleset, trace):
        spec = SpeculativeAutomataProcessor(
            ruleset,
            config=CONFIG,
            predictor=lambda segment: frozenset({1}),
        )
        result = spec.run(trace)
        for outcome in result.segments:
            if outcome.correct:
                assert outcome.rerun_cycles == 0
            else:
                assert outcome.rerun_cycles == outcome.segment.length

    def test_correct_speculation_beats_golden(self):
        # A boundary symbol where nothing survives: cold prediction is
        # always right, so speculation parallelizes perfectly.
        automaton, _ = compile_ruleset(["^only-at-start"])
        # Segments must dwarf the fixed validation cost (~1.7k cycles).
        data = b"z" * 40_000
        spec = SpeculativeAutomataProcessor(
            automaton, config=CONFIG, predictor="cold"
        )
        result = spec.run(data)
        assert result.prediction_accuracy == 1.0
        assert result.total_cycles < result.golden_cycles

    def test_never_worse_than_golden(self, ruleset, trace):
        spec = SpeculativeAutomataProcessor(
            ruleset,
            config=CONFIG,
            predictor=lambda segment: frozenset({0}),
        )
        result = spec.run(trace)
        assert result.total_cycles <= result.golden_cycles

    def test_first_segment_always_correct(self, ruleset, trace):
        result = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG
        ).run(trace)
        assert result.segments[0].correct

    def test_warmup_accuracy_improves_with_window(self, ruleset, trace):
        """Longer history windows can only help the warmup predictor
        (NFAs forget; a longer replay subsumes a shorter one here)."""
        short = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor="warmup", warmup_symbols=1
        ).run(trace)
        long = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor="warmup", warmup_symbols=128
        ).run(trace)
        assert long.prediction_accuracy >= short.prediction_accuracy

    def test_warmup_cost_charged(self, ruleset, trace):
        result = SpeculativeAutomataProcessor(
            ruleset, config=CONFIG, predictor="warmup", warmup_symbols=32
        ).run(trace)
        for outcome in result.segments[1:]:
            assert (
                outcome.first_run_cycles == outcome.segment.length + 32
            )

    def test_warmup_window_validated(self, ruleset):
        with pytest.raises(ValueError):
            SpeculativeAutomataProcessor(
                ruleset, config=CONFIG, predictor="warmup", warmup_symbols=0
            )

"""Property-based tests: PAP composition is exactly equivalent to
sequential execution on arbitrary automata, inputs, and configurations.

These are the strongest correctness tests in the repository: hypothesis
searches the space of adversarial automaton shapes (self loops, shared
states, all-input starts, overlapping labels) and inputs, asserting the
deduplicated report set and the final matched set both survive
partitioning, enumeration, merging, convergence, deactivation, FIV, and
composition.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.automata.random_gen import random_automaton, random_ruleset_automaton
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def board(half_cores: int) -> BoardGeometry:
    return BoardGeometry(
        ranks=1, devices_per_rank=max(1, half_cores // 2)
    )


configs = st.builds(
    PAPConfig,
    geometry=st.sampled_from([board(2), board(4), board(8)]),
    tdm_slice_symbols=st.sampled_from([5, 17, 64]),
    convergence_period_steps=st.sampled_from([1, 3, 10]),
    early_check_symbols=st.sampled_from([2, 8]),
    use_connected_components=st.booleans(),
    use_common_parent=st.booleans(),
    use_asg=st.booleans(),
    use_convergence=st.booleans(),
    use_deactivation=st.booleans(),
    use_fiv=st.booleans(),
)

inputs = st.binary(min_size=0, max_size=400).map(
    # Shrink the alphabet so matches actually occur.
    lambda raw: bytes(b"abcdef"[b % 6] for b in raw)
)


@COMMON_SETTINGS
@given(seed=st.integers(0, 10_000), data=inputs, config=configs)
def test_pap_equals_sequential_on_rulesets(seed, data, config):
    automaton = random_ruleset_automaton(seed, num_patterns=4)
    baseline = run_sequential(automaton, data)
    result = ParallelAutomataProcessor(automaton, config=config).run(data)
    assert result.reports == baseline.reports


@COMMON_SETTINGS
@given(seed=st.integers(0, 10_000), data=inputs, config=configs)
def test_pap_equals_sequential_on_adversarial_automata(seed, data, config):
    automaton = random_automaton(seed, num_states=9, alphabet=b"abcd")
    baseline = run_sequential(automaton, data)
    result = ParallelAutomataProcessor(automaton, config=config).run(data)
    assert result.reports == baseline.reports


@COMMON_SETTINGS
@given(seed=st.integers(0, 10_000), data=inputs)
def test_final_matched_set_equals_sequential(seed, data):
    """The composed final matched set of the last segment must equal the
    sequential run's final current set — it is what a further segment
    would compose against."""
    automaton = random_ruleset_automaton(seed, num_patterns=3)
    config = PAPConfig(geometry=board(4), tdm_slice_symbols=16)
    result = ParallelAutomataProcessor(automaton, config=config).run(data)
    if not result.composed:
        assert not data
        return
    sequential = run_sequential(automaton, data)
    del sequential  # reports checked elsewhere; recompute final set:
    from repro.automata.execution import run_automaton

    expected = run_automaton(automaton, data).final_current
    assert result.composed[-1].final_matched == expected


@COMMON_SETTINGS
@given(seed=st.integers(0, 10_000), data=inputs)
def test_pap_never_slower_than_golden(seed, data):
    automaton = random_ruleset_automaton(seed, num_patterns=3)
    config = PAPConfig(geometry=board(4), tdm_slice_symbols=16)
    result = ParallelAutomataProcessor(automaton, config=config).run(data)
    assert result.total_cycles <= result.golden_cycles


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    data=inputs,
    slice_symbols=st.integers(1, 40),
)
def test_tdm_granularity_never_changes_reports(seed, data, slice_symbols):
    """Reports are invariant under the TDM slice size (pure timing knob)."""
    automaton = random_ruleset_automaton(seed, num_patterns=3)
    reference = ParallelAutomataProcessor(
        automaton,
        config=PAPConfig(geometry=board(4), tdm_slice_symbols=64),
    ).run(data)
    variant = ParallelAutomataProcessor(
        automaton,
        config=PAPConfig(geometry=board(4), tdm_slice_symbols=slice_symbols),
    ).run(data)
    assert variant.reports == reference.reports


def test_regression_corpus_of_seeds():
    """A fixed seed corpus kept fast enough for every CI run; hypothesis
    explores beyond it."""
    rng = random.Random(0)
    for _ in range(15):
        seed = rng.randrange(10_000)
        automaton = random_automaton(seed, num_states=8, alphabet=b"abc")
        data = bytes(rng.choice(b"abc") for _ in range(200))
        config = PAPConfig(
            geometry=board(4),
            tdm_slice_symbols=rng.choice([3, 9, 33]),
            convergence_period_steps=rng.choice([1, 2, 10]),
        )
        baseline = run_sequential(automaton, data)
        result = ParallelAutomataProcessor(automaton, config=config).run(data)
        assert result.reports == baseline.reports, seed

"""Unit tests for the TDM segment scheduler."""


from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.core.config import PAPConfig
from repro.core.enumeration import build_units
from repro.core.merging import pack_flows
from repro.core.partitioning import InputSegment
from repro.core.ranges import enumeration_range
from repro.core.scheduler import (
    ASG_FLOW_ID,
    GOLDEN_FLOW_ID,
    SegmentPlan,
    SegmentScheduler,
)
from repro.core.merging import FlowReductionStats

EMPTY_STATS = FlowReductionStats(0, 0, 0, 0)


def hub_automaton():
    """.*ab | .*cd in two components."""
    automaton = Automaton("sched")
    hub_a = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub_a, builder.classes_for("ab"), report_code=0)
    hub_b = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub_b, builder.classes_for("cd"), report_code=1)
    return automaton


def make_scheduler(automaton, **config_overrides):
    analysis = AutomatonAnalysis(automaton)
    config = PAPConfig(tdm_slice_symbols=8, early_check_symbols=4, **config_overrides)
    scheduler = SegmentScheduler(
        CompiledAutomaton(automaton),
        analysis,
        config,
        analysis.path_independent_states(),
    )
    return scheduler, analysis


def plan_for(automaton, analysis, data, start, end, *, golden=False):
    if golden:
        return SegmentPlan(
            segment=InputSegment(index=0, start=start, end=end, boundary_symbol=None),
            flows=(),
            stats=EMPTY_STATS,
            asg_initial=frozenset(),
            is_golden=True,
        )
    boundary = data[start - 1]
    pi = analysis.path_independent_states()
    rng = enumeration_range(analysis, boundary, exclude=pi)
    units = build_units(analysis, rng)
    flow_plan = pack_flows(units, range_size=len(rng))
    asg_initial = frozenset(
        sid
        for sid in pi
        if boundary in analysis.automaton.state(sid).label
    )
    return SegmentPlan(
        segment=InputSegment(
            index=1, start=start, end=end, boundary_symbol=boundary
        ),
        flows=tuple(flow_plan.flows),
        stats=flow_plan.stats,
        asg_initial=asg_initial,
        is_golden=False,
    )


class TestGoldenSegment:
    def test_golden_runs_without_switching(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        data = b"xxabxxcdxx"
        plan = plan_for(automaton, analysis, data, 0, len(data), golden=True)
        result = scheduler.run_segment(data, plan)
        assert result.metrics.finish_cycles == len(data)
        assert result.metrics.context_switch_cycles == 0
        assert {e.flow_id for e in result.events} == {GOLDEN_FLOW_ID}
        assert result.metrics.raw_events == 2

    def test_golden_final_current_is_sequential(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        data = b"xxab"
        plan = plan_for(automaton, analysis, data, 0, len(data), golden=True)
        result = scheduler.run_segment(data, plan)
        from repro.automata.execution import run_automaton

        assert (
            result.final_currents[GOLDEN_FLOW_ID]
            == run_automaton(automaton, data).final_current
        )


class TestEnumeratedSegment:
    def test_asg_flow_present_for_hub_automata(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        data = b"xxxxabxxxxxxxxxx"
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        assert result.asg_final  # hubs always active
        # ASG flow emits always-true events for the .*ab hit at 4..5.
        asg_offsets = {
            e.offset for e in result.events if e.flow_id == ASG_FLOW_ID
        }
        assert 5 in asg_offsets

    def test_no_asg_flow_for_anchored_automata(self):
        automaton = Automaton("anchored")
        builder.literal(automaton, "abcd")
        extra = automaton.add_state(
            builder.classes_for("b")[0],
        )
        automaton.add_edge(0, extra)
        scheduler, analysis = make_scheduler(automaton)
        data = b"abcdabcd"
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        assert result.asg_final == frozenset()
        assert all(e.flow_id != ASG_FLOW_ID for e in result.events)

    def test_deactivation_of_dead_flows(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        # Boundary 'a': the range state is chain position 1; flows whose
        # continuation never sees 'b' die back to the ASG vector.
        data = b"xxxaXXXXXXXXXXXXXXXXXXXXXXXXXX"
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        assert result.metrics.deactivations >= 1
        # Deactivated units re-home to the ASG flow in the history.
        rehomed = [
            entries
            for entries in result.unit_history.values()
            if any(flow_id == ASG_FLOW_ID for flow_id, _ in entries)
        ]
        assert rehomed

    def test_deactivation_disabled_keeps_flows(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(
            automaton, use_deactivation=False
        )
        data = b"xxxaXXXXXXXXXXXXXXXXXXXXXXXXXX"
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        assert result.metrics.deactivations == 0
        assert result.metrics.enum_flows_at_end == len(plan.flows)

    def test_fiv_kills_false_flows_at_arrival(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(
            automaton, use_deactivation=False
        )
        data = b"xxxa" + b"ab" * 20
        plan = plan_for(automaton, analysis, data, 4, len(data))
        truth = {unit.unit_id: False for flow in plan.flows for unit in flow.units}
        result = scheduler.run_segment(
            data, plan, unit_truth=truth, fiv_time=0
        )
        assert result.metrics.fiv_invalidations == len(plan.flows)
        assert result.metrics.fiv_applied_at is not None

    def test_fiv_spares_true_flows(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(
            automaton, use_deactivation=False
        )
        data = b"xxxa" + b"ab" * 20
        plan = plan_for(automaton, analysis, data, 4, len(data))
        truth = {unit.unit_id: True for flow in plan.flows for unit in flow.units}
        result = scheduler.run_segment(
            data, plan, unit_truth=truth, fiv_time=0
        )
        assert result.metrics.fiv_invalidations == 0

    def test_fiv_after_finish_never_applies(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        data = b"xxxaab"
        plan = plan_for(automaton, analysis, data, 4, len(data))
        truth = {unit.unit_id: False for flow in plan.flows for unit in flow.units}
        result = scheduler.run_segment(
            data, plan, unit_truth=truth, fiv_time=10**9
        )
        assert result.metrics.fiv_applied_at is None

    def test_context_switch_accounting(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(
            automaton, use_deactivation=False
        )
        data = b"xxxa" + b"ab" * 14
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        flows = len(plan.flows) + 1  # + ASG
        assert flows > 1
        # Every flow pays 3 cycles per TDM step while multiple are live.
        expected = result.metrics.tdm_steps * flows * 3
        assert result.metrics.context_switch_cycles == expected

    def test_single_flow_pays_no_switching(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        # Boundary symbol with empty enumeration range: ASG flow only.
        data = b"xxxZ" + b"x" * 20
        plan = plan_for(automaton, analysis, data, 4, len(data))
        assert not plan.flows
        result = scheduler.run_segment(data, plan)
        assert result.metrics.context_switch_cycles == 0

    def test_convergence_merges_identical_flows(self):
        # Two parents in one component with distinct children that both
        # die -> their flows converge to the shared ASG vector... use
        # deactivation off and convergence on to observe the merge.
        # ".*ax" and ".*bay" share one hub (one component); boundary 'a'
        # yields two units with distinct parents (hub vs. the 'b'
        # state), hence two flows.  On junk input both unit parts die
        # and the vectors equalize at the ASG part -> convergence.
        automaton = Automaton("conv")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ax"))
        builder.attach_pattern(automaton, hub, builder.classes_for("bay"))
        scheduler, analysis = make_scheduler(
            automaton,
            use_deactivation=False,
            convergence_period_steps=1,
        )
        data = b"xxxa" + b"z" * 28
        plan = plan_for(automaton, analysis, data, 4, len(data))
        assert len(plan.flows) == 2
        result = scheduler.run_segment(data, plan)
        assert result.metrics.convergence_merges >= 1
        merged_units = [
            entries
            for entries in result.unit_history.values()
            if len(entries) > 1
        ]
        assert merged_units

    def test_inline_convergence_checks_are_not_switching_overhead(self):
        # Regression: with overlapped checks disabled, the in-line
        # comparator cycles used to be folded into
        # context_switch_cycles, inflating Figure 10's overhead. They
        # are their own bucket now; switching must match the
        # overlapped-timing run exactly.
        from dataclasses import replace

        from repro.core.config import DEFAULT_CONFIG

        # Same two-flow shape as the convergence-merge test above.
        automaton = Automaton("conv")
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(automaton, hub, builder.classes_for("ax"))
        builder.attach_pattern(automaton, hub, builder.classes_for("bay"))
        data = b"xxxa" + b"z" * 28
        overlapped_sched, analysis = make_scheduler(
            automaton, use_deactivation=False, convergence_period_steps=1
        )
        plan = plan_for(automaton, analysis, data, 4, len(data))
        overlapped = overlapped_sched.run_segment(data, plan)

        timing = replace(
            DEFAULT_CONFIG.timing, convergence_checks_overlapped=False
        )
        inline_sched, _ = make_scheduler(
            automaton,
            use_deactivation=False,
            convergence_period_steps=1,
            timing=timing,
        )
        inline = inline_sched.run_segment(data, plan)

        assert overlapped.metrics.convergence_comparisons > 0
        assert overlapped.metrics.convergence_check_cycles == 0
        assert (
            inline.metrics.convergence_comparisons
            == overlapped.metrics.convergence_comparisons
        )
        assert inline.metrics.convergence_check_cycles == (
            inline.metrics.convergence_comparisons
            * timing.convergence_check_cycles
        )
        assert (
            inline.metrics.context_switch_cycles
            == overlapped.metrics.context_switch_cycles
        )
        assert inline.metrics.finish_cycles == (
            overlapped.metrics.finish_cycles
            + inline.metrics.convergence_check_cycles
        )

    def test_active_flow_samples_monotone_under_deactivation(self):
        automaton = hub_automaton()
        scheduler, analysis = make_scheduler(automaton)
        data = b"xxxa" + b"z" * 60
        plan = plan_for(automaton, analysis, data, 4, len(data))
        result = scheduler.run_segment(data, plan)
        samples = result.metrics.active_flow_samples
        assert samples == sorted(samples, reverse=True)

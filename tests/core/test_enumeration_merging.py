"""Unit tests for enumeration units and flow packing."""

import pytest

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.core.enumeration import (
    EnumerationUnit,
    build_units,
    unit_count_bound,
)
from repro.core.merging import pack_flows
from repro.core.ranges import enumeration_range


@pytest.fixture
def common_parent_automaton():
    """The paper's Figure 5 shape: S0 -> {S2, S5, S46}, S1 -> {S17, S18,
    S46}; all children labeled 'k'."""
    automaton = Automaton()
    s0 = automaton.add_state(CharClass.single("p"), start=StartKind.START_OF_DATA)
    s1 = automaton.add_state(CharClass.single("q"), start=StartKind.START_OF_DATA)
    children_of_s0 = [
        automaton.add_state(CharClass.single("k")) for _ in range(2)
    ]
    children_of_s1 = [
        automaton.add_state(CharClass.single("k")) for _ in range(2)
    ]
    shared = automaton.add_state(CharClass.single("k"), reporting=True)
    automaton.add_edges(s0, children_of_s0 + [shared])
    automaton.add_edges(s1, children_of_s1 + [shared])
    return automaton


class TestBuildUnits:
    def test_parent_grouping_matches_figure5(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        assert len(rng) == 5
        units = build_units(analysis, rng, merge_by_parent=True)
        assert len(units) == 2
        member_sets = {unit.members for unit in units}
        assert frozenset({2, 3, 6}) in member_sets
        assert frozenset({4, 5, 6}) in member_sets

    def test_shared_child_in_both_units(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        units = build_units(analysis, rng, merge_by_parent=True)
        assert all(6 in unit.members for unit in units)

    def test_singletons_without_parent_merging(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        units = build_units(analysis, rng, merge_by_parent=False)
        assert len(units) == 5
        assert all(len(unit.members) == 1 for unit in units)

    def test_duplicate_parent_groups_deduplicated(self):
        # Two parents with identical child sets -> one unit.
        automaton = Automaton()
        p1 = automaton.add_state(CharClass.single("a"), start=StartKind.START_OF_DATA)
        p2 = automaton.add_state(CharClass.single("b"), start=StartKind.START_OF_DATA)
        child = automaton.add_state(CharClass.single("k"), reporting=True)
        automaton.add_edge(p1, child)
        automaton.add_edge(p2, child)
        analysis = AutomatonAnalysis(automaton)
        rng = enumeration_range(analysis, ord("k"))
        units = build_units(analysis, rng, merge_by_parent=True)
        assert len(units) == 1

    def test_unit_component_is_consistent(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        for unit in build_units(analysis, rng):
            for member in unit.members:
                assert analysis.component_index()[member] == unit.component

    def test_unit_ids_dense_and_deterministic(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        first = build_units(analysis, rng)
        second = build_units(analysis, rng)
        assert [u.unit_id for u in first] == list(range(len(first)))
        assert first == second


class TestBuildUnitsEdgeCases:
    def test_empty_range_builds_no_units(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        assert build_units(analysis, frozenset()) == []
        assert unit_count_bound(analysis, frozenset()) == 0

    def test_parentless_states_form_singleton_units(self):
        # START_OF_DATA heads have empty predecessor sets: they must
        # carry their own singleton unit, not vanish from the plan.
        automaton = Automaton()
        heads = [
            automaton.add_state(
                CharClass.single("k"), start=StartKind.START_OF_DATA
            )
            for _ in range(3)
        ]
        analysis = AutomatonAnalysis(automaton)
        rng = frozenset(heads)
        units = build_units(analysis, rng)
        assert len(units) == 3
        assert all(len(unit.members) == 1 for unit in units)

    def test_force_singletons_adds_offset_zero_cover(
        self, common_parent_automaton
    ):
        # At an offset-0 boundary the start-of-data states match with no
        # parent having fired, so they need singleton units on top of
        # the parent groups.
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k")) | frozenset({0, 1})
        plain = build_units(analysis, rng)
        forced = build_units(
            analysis, rng, force_singletons=frozenset({0, 1})
        )
        member_sets = {unit.members for unit in forced}
        assert frozenset({0}) in member_sets
        assert frozenset({1}) in member_sets
        assert len(forced) >= len(plain)

    def test_force_singletons_outside_range_ignored(
        self, common_parent_automaton
    ):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        plain = build_units(analysis, rng)
        forced = build_units(
            analysis, rng, force_singletons=frozenset({0, 1})
        )
        assert forced == plain  # 0 and 1 are not in the range

    def test_full_range_single_component_chain(self):
        # A full-label chain puts every non-head state in the range of
        # every partition symbol: one unit per state (distinct parents),
        # all in one component.
        automaton = Automaton()
        prev = automaton.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA
        )
        for _ in range(5):
            nxt = automaton.add_state(CharClass.full())
            automaton.add_edge(prev, nxt)
            prev = nxt
        analysis = AutomatonAnalysis(automaton)
        rng = enumeration_range(analysis, ord("x"))
        assert len(rng) == 5  # the parentless head is excluded
        units = build_units(analysis, rng)
        assert len(units) == 5
        assert len({unit.component for unit in units}) == 1


class TestUnitCountBound:
    def test_bound_dominates_actual_units(self, common_parent_automaton):
        analysis = AutomatonAnalysis(common_parent_automaton)
        rng = enumeration_range(analysis, ord("k"))
        assert unit_count_bound(analysis, rng) >= len(
            build_units(analysis, rng)
        )

    def test_bound_counts_parentless_states(self):
        automaton = Automaton()
        for _ in range(4):
            automaton.add_state(
                CharClass.single("k"), start=StartKind.START_OF_DATA
            )
        analysis = AutomatonAnalysis(automaton)
        assert unit_count_bound(analysis, frozenset(range(4))) == 4

    def test_bound_overcounts_duplicate_parent_groups(self):
        # Two parents sharing one child: the bound sees two prospective
        # units, dedup leaves one actual unit.
        automaton = Automaton()
        p1 = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        p2 = automaton.add_state(
            CharClass.single("b"), start=StartKind.START_OF_DATA
        )
        child = automaton.add_state(CharClass.single("k"), reporting=True)
        automaton.add_edge(p1, child)
        automaton.add_edge(p2, child)
        analysis = AutomatonAnalysis(automaton)
        rng = enumeration_range(analysis, ord("k"))
        assert unit_count_bound(analysis, rng) == 2
        assert len(build_units(analysis, rng)) == 1


class TestUnitTruth:
    def test_true_when_all_members_matched(self):
        unit = EnumerationUnit(0, parent=9, members=frozenset({1, 2}), component=0)
        assert unit.is_true(frozenset({1, 2, 3}))

    def test_false_when_any_member_missing(self):
        unit = EnumerationUnit(0, parent=9, members=frozenset({1, 2}), component=0)
        assert not unit.is_true(frozenset({1, 3}))

    def test_false_on_empty_matched_set(self):
        unit = EnumerationUnit(0, parent=None, members=frozenset({1}), component=0)
        assert not unit.is_true(frozenset())


def make_units(spec):
    """spec: list of (component, members) tuples."""
    return [
        EnumerationUnit(
            unit_id=index,
            parent=None,
            members=frozenset(members),
            component=component,
        )
        for index, (component, members) in enumerate(spec)
    ]


class TestPackFlows:
    def test_cc_merging_stacks_components(self):
        # 3 components with 2, 1, 3 units -> 3 flows (the max).
        units = make_units(
            [(0, {1}), (0, {2}), (1, {3}), (2, {4}), (2, {5}), (2, {6})]
        )
        plan = pack_flows(units, range_size=6, merge_by_component=True)
        assert len(plan.flows) == 3
        for flow in plan.flows:
            components = [unit.component for unit in flow.units]
            assert len(components) == len(set(components))

    def test_every_unit_packed_exactly_once(self):
        units = make_units([(0, {1}), (0, {2}), (1, {3})])
        plan = pack_flows(units, range_size=3)
        packed = [u.unit_id for flow in plan.flows for u in flow.units]
        assert sorted(packed) == [0, 1, 2]

    def test_no_cc_merging_gives_one_flow_per_unit(self):
        units = make_units([(0, {1}), (0, {2}), (1, {3})])
        plan = pack_flows(units, range_size=3, merge_by_component=False)
        assert len(plan.flows) == 3

    def test_waterfall_stats(self):
        # Range of 6 states; CC sizes 3+3 -> after CC = 3 (max states per
        # component); units per component 2 and 1 -> after parent = 2.
        units = make_units([(0, {1, 2}), (0, {3}), (1, {4, 5, 6})])
        plan = pack_flows(units, range_size=6)
        assert plan.stats.flows_in_range == 6
        assert plan.stats.flows_after_cc == 3
        assert plan.stats.flows_after_parent == 2
        assert plan.stats.planned_flows == 2

    def test_flow_initial_current_unions_members(self):
        units = make_units([(0, {1, 2}), (1, {5})])
        plan = pack_flows(units, range_size=3)
        assert plan.flows[0].initial_current() == frozenset({1, 2, 5})

    def test_empty_units(self):
        plan = pack_flows([], range_size=0)
        assert plan.flows == []
        assert plan.stats.flows_after_cc == 0

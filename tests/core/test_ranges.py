"""Unit tests for range profiling and partition-symbol choice."""

import pytest

from repro.automata import builder
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.core.ranges import (
    choose_partition_symbol,
    enumeration_range,
    range_profile,
)
from repro.errors import ConfigurationError


@pytest.fixture
def hub_ruleset():
    """.*abc and .*xyz off one shared hub."""
    automaton = Automaton()
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub, builder.classes_for("abc"))
    builder.attach_pattern(automaton, hub, builder.classes_for("xyz"))
    return automaton


class TestRangeProfile:
    def test_shape(self, hub_ruleset):
        profile = range_profile(AutomatonAnalysis(hub_ruleset))
        assert len(profile.sizes) == 256
        assert profile.total_states == 7

    def test_min_max_avg(self, hub_ruleset):
        profile = range_profile(AutomatonAnalysis(hub_ruleset))
        # Every symbol reaches the hub; pattern symbols add one state.
        assert profile.minimum == 1
        assert profile.maximum == 2
        assert 1 < profile.average < 2

    def test_range_includes_always_active(self, hub_ruleset):
        # The raw profile counts the hub (Table 1 semantics).
        analysis = AutomatonAnalysis(hub_ruleset)
        assert 0 in analysis.symbol_range(ord("q"))


class TestEnumerationRange:
    def test_excludes_given_states(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        pi = analysis.path_independent_states()
        assert enumeration_range(analysis, ord("q"), exclude=pi) == frozenset()
        assert enumeration_range(analysis, ord("a"), exclude=pi) == frozenset({1})

    def test_parentless_start_of_data_excluded(self):
        # ^hdr's head can only match at offset 0, never at a boundary.
        automaton = Automaton()
        builder.literal(automaton, "ha")
        analysis = AutomatonAnalysis(automaton)
        assert enumeration_range(analysis, ord("h")) == frozenset()

    def test_parentless_all_input_included_when_not_excluded(self):
        automaton = Automaton()
        head = automaton.add_state(
            CharClass.single("a"), start=StartKind.ALL_INPUT
        )
        tail = automaton.add_state(CharClass.single("b"), reporting=True)
        automaton.add_edge(head, tail)
        analysis = AutomatonAnalysis(automaton)
        # Without ASG exclusion the persistent head is enumerable.
        assert head in enumeration_range(analysis, ord("a"))
        # With it, it is not.
        pi = analysis.path_independent_states()
        assert head not in enumeration_range(analysis, ord("a"), exclude=pi)

    def test_interior_state_with_parent_included(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        assert 2 in enumeration_range(analysis, ord("b"))


class TestChoosePartitionSymbol:
    def test_prefers_small_range(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        pi = analysis.path_independent_states()
        # 'q' (range 0 after exclusion) occurs as often as 'a' (range 1).
        data = b"aq" * 50
        choice = choose_partition_symbol(
            analysis, data, num_segments=4, exclude=pi
        )
        assert choice.symbol == ord("q")
        assert choice.range_size == 0

    def test_frequency_gate(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        pi = analysis.path_independent_states()
        # 'q' occurs once: not enough for 4 segments; 'a' wins.
        data = b"q" + b"a" * 50
        choice = choose_partition_symbol(
            analysis, data, num_segments=4, exclude=pi
        )
        assert choice.symbol == ord("a")

    def test_tie_broken_by_frequency(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        pi = analysis.path_independent_states()
        data = b"qqqpp" * 10  # both have range 0; q is more frequent
        choice = choose_partition_symbol(
            analysis, data, num_segments=2, exclude=pi
        )
        assert choice.symbol == ord("q")

    def test_fallback_when_nothing_frequent_enough(self, hub_ruleset):
        analysis = AutomatonAnalysis(hub_ruleset)
        data = b"ab"
        choice = choose_partition_symbol(analysis, data, num_segments=64)
        assert choice.symbol in data

    def test_empty_input_rejected(self, hub_ruleset):
        with pytest.raises(ConfigurationError):
            choose_partition_symbol(
                AutomatonAnalysis(hub_ruleset), b"", num_segments=2
            )

    def test_zero_segments_rejected(self, hub_ruleset):
        with pytest.raises(ConfigurationError):
            choose_partition_symbol(
                AutomatonAnalysis(hub_ruleset), b"ab", num_segments=0
            )

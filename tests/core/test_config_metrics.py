"""Unit tests for PAP configuration and run-level metrics."""

from dataclasses import replace

import pytest

from repro.ap.geometry import FOUR_RANKS, ONE_RANK
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import ConfigurationError
from repro.regex.ruleset import compile_ruleset


class TestConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.tdm_slice_symbols == 256
        assert DEFAULT_CONFIG.convergence_period_steps == 10
        assert DEFAULT_CONFIG.max_flows == 512
        assert DEFAULT_CONFIG.use_connected_components

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PAPConfig(tdm_slice_symbols=0)
        with pytest.raises(ConfigurationError):
            PAPConfig(convergence_period_steps=0)
        with pytest.raises(ConfigurationError):
            PAPConfig(early_check_symbols=0)
        with pytest.raises(ConfigurationError):
            PAPConfig(max_flows=0)

    def test_with_ranks(self):
        assert PAPConfig(geometry=ONE_RANK).with_ranks(4).geometry == FOUR_RANKS

    def test_without_optimizations(self):
        bare = DEFAULT_CONFIG.without_optimizations()
        assert not bare.use_connected_components
        assert not bare.use_common_parent
        assert not bare.use_asg
        assert not bare.use_convergence
        assert not bare.use_deactivation
        assert not bare.use_fiv
        # Non-optimization knobs untouched.
        assert bare.tdm_slice_symbols == DEFAULT_CONFIG.tdm_slice_symbols

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.max_flows = 1  # type: ignore[misc]


class TestRunMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        automaton, _ = compile_ruleset(["abc", "xy+z"])
        config = replace(
            PAPConfig(geometry=ONE_RANK), tdm_slice_symbols=64
        )
        pap = ParallelAutomataProcessor(automaton, config=config)
        data = (b"abc xyz " * 512)[:4096]
        return pap.run(data)

    def test_total_is_min_of_paths(self, result):
        assert result.total_cycles == min(
            result.enumeration_cycles, result.golden_cycles
        )

    def test_event_accounting(self, result):
        assert result.raw_events >= result.true_events > 0
        assert result.event_amplification >= 1.0

    def test_flow_metrics_exposed(self, result):
        assert result.average_active_flows >= 0
        assert 0 <= result.switching_overhead < 1
        assert result.average_tcpu >= 0

    def test_transitions_per_symbol(self, result):
        assert result.transitions_per_symbol() > 0

    def test_counts_are_aggregates(self, result):
        assert result.deactivations == sum(
            r.metrics.deactivations for r in result.segment_results
        )
        assert result.convergence_merges >= 0
        assert result.fiv_invalidations >= 0

    def test_segment_count(self, result):
        assert result.num_segments == len(result.plans) == 16

    def test_empty_run_metrics(self):
        automaton, _ = compile_ruleset(["ab"])
        pap = ParallelAutomataProcessor(automaton)
        result = pap.run(b"")
        assert result.total_cycles == 0
        assert result.average_active_flows == 0.0
        assert result.switching_overhead == 0.0
        assert result.event_amplification == 1.0
        assert result.transitions_per_symbol() == 0.0
        assert not result.golden_fallback


class TestEventAmplificationEdgeCases:
    """Pin the zero-true-events branches of ``event_amplification``."""

    @staticmethod
    def synthetic_result(*, raw_events: int, true_events: int):
        from repro.core.composition import ComposedSegment
        from repro.core.merging import FlowReductionStats
        from repro.core.metrics import PAPRunResult
        from repro.core.partitioning import InputSegment
        from repro.core.scheduler import (
            SegmentMetrics,
            SegmentPlan,
            SegmentResult,
        )

        plan = SegmentPlan(
            segment=InputSegment(index=0, start=0, end=0, boundary_symbol=None),
            flows=(),
            stats=FlowReductionStats(0, 0, 0, 0),
            asg_initial=frozenset(),
            is_golden=True,
        )
        result = SegmentResult(
            plan=plan,
            events=[],
            unit_history={},
            final_currents={},
            asg_final=frozenset(),
            metrics=SegmentMetrics(raw_events=raw_events),
        )
        composed = ComposedSegment(
            true_reports=frozenset(),
            final_matched=frozenset(),
            true_events=true_events,
            raw_events=raw_events,
        )
        return PAPRunResult(
            reports=frozenset(),
            plans=(plan,),
            segment_results=(result,),
            composed=(composed,),
            partition_choice=None,
            truth_times=(0,),
            tcpu_cycles=(0,),
            enumeration_cycles=0,
            golden_cycles=0,
            svc_overflow=False,
        )

    def test_both_zero_is_no_amplification(self):
        result = self.synthetic_result(raw_events=0, true_events=0)
        assert result.event_amplification == 1.0

    def test_raw_without_true_reports_raw_count(self):
        result = self.synthetic_result(raw_events=5, true_events=0)
        assert result.event_amplification == 5.0

    def test_ordinary_ratio(self):
        result = self.synthetic_result(raw_events=6, true_events=3)
        assert result.event_amplification == 2.0

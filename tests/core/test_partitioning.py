"""Unit tests for input partitioning."""

import random

import pytest

from repro.core.partitioning import boundary_profile, partition_input
from repro.errors import ConfigurationError


class TestBasicPartitioning:
    def test_segments_cover_input_exactly(self):
        data = bytes(range(100))
        segments = partition_input(data, 4)
        assert segments[0].start == 0
        assert segments[-1].end == len(data)
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start

    def test_roughly_equal_sizes_without_symbol(self):
        segments = partition_input(b"x" * 100, 4, symbol=None)
        assert [s.length for s in segments] == [25, 25, 25, 25]

    def test_boundary_symbol_recorded(self):
        data = b"aaaabaaaabaaaa"
        segments = partition_input(data, 3, symbol=ord("b"))
        for segment in segments[1:]:
            assert segment.boundary_symbol == data[segment.start - 1]

    def test_first_segment_has_no_boundary_symbol(self):
        segments = partition_input(b"abcd" * 10, 2)
        assert segments[0].boundary_symbol is None

    def test_indices_are_dense(self):
        segments = partition_input(b"ab" * 50, 5)
        assert [s.index for s in segments] == list(range(len(segments)))


class TestSnapping:
    def test_cuts_snap_to_symbol(self):
        # 'b' at positions 3 and 11; targets at 5 and 10 with window 2+.
        data = b"aaabaaaaaaabaaa"
        segments = partition_input(data, 3, symbol=ord("b"), snap_window=3)
        cut_points = [s.start for s in segments[1:]]
        assert cut_points == [4, 12]  # just after each 'b'
        for segment in segments[1:]:
            assert segment.boundary_symbol == ord("b")

    def test_falls_back_to_target_when_symbol_absent_nearby(self):
        data = b"a" * 40 + b"b" + b"a" * 59
        segments = partition_input(data, 2, symbol=ord("z"), snap_window=5)
        assert segments[1].start == 50
        assert segments[1].boundary_symbol == ord("a")

    def test_duplicate_cuts_collapse(self):
        # Two targets inside one symbol-free stretch both fall back to
        # their positions; a target colliding with the previous cut is
        # dropped rather than emitting an empty segment.
        data = b"abab"
        segments = partition_input(data, 4, symbol=ord("z"), snap_window=1)
        starts = [s.start for s in segments]
        assert starts == sorted(set(starts))
        assert all(s.length > 0 for s in segments)

    def test_snap_window_respects_previous_cut(self):
        # The second cut may not snap backwards past the first.
        data = b"ab" + b"a" * 20
        segments = partition_input(data, 3, symbol=ord("b"), snap_window=50)
        starts = [s.start for s in segments]
        assert starts == sorted(set(starts))

    def test_symbol_exactly_at_window_edge_is_found(self):
        # Regression: the scan used to stop one short of
        # ``target + window``, so an occurrence exactly at the window
        # edge fell back to the unsnapped target. Target 10, window 3,
        # sole 'b' at position 13 == target + window.
        data = b"a" * 13 + b"b" + b"a" * 6
        segments = partition_input(data, 2, symbol=ord("b"), snap_window=3)
        assert segments[1].start == 14  # just after the 'b'
        assert segments[1].boundary_symbol == ord("b")

    def test_overshooting_snap_does_not_drop_the_next_segment(self):
        # Regression: a lone partition symbol inside a wide snap window
        # pulls a cut *forward past the next target*; the next boundary
        # then collided with it and was silently dropped, so callers got
        # fewer segments than requested on a perfectly healthy input.
        # Lone 'b' at 54 with window 30: the first cut (target 25)
        # snaps to 55, overshooting the second target (50).
        data = b"a" * 54 + b"b" + b"a" * 45
        segments = partition_input(data, 4, symbol=ord("b"), snap_window=30)
        assert len(segments) == 4
        starts = [s.start for s in segments]
        assert starts == sorted(set(starts))
        assert all(s.length > 0 for s in segments)
        assert segments[-1].end == len(data)

    def test_adversarial_symbol_placement_preserves_segment_count(self):
        # Sweep clustered/lone symbol placements against wide windows:
        # whenever the input has room for the requested cuts, every
        # segment must materialize.
        rng = random.Random(20260808)
        for _ in range(200):
            length = rng.randrange(8, 120)
            num_segments = rng.randrange(2, 8)
            window = rng.randrange(1, length)
            positions = rng.sample(
                range(length), rng.randrange(0, min(4, length))
            )
            raw = bytearray(b"a" * length)
            for position in positions:
                raw[position] = ord("b")
            data = bytes(raw)
            segments = partition_input(
                data, num_segments, symbol=ord("b"), snap_window=window
            )
            label = (length, num_segments, window, sorted(positions))
            assert len(segments) == min(num_segments, length), label
            assert all(s.length > 0 for s in segments), label
            assert segments[-1].end == length, label

    def test_window_edge_symbol_at_input_tail_keeps_boundary(self):
        # A symbol at the input's final byte must not snap: cutting
        # after it would be no cut at all, and the boundary must fall
        # back to the target rather than vanish.
        data = b"a" * 9 + b"b"
        segments = partition_input(data, 2, symbol=ord("b"), snap_window=10)
        assert len(segments) == 2
        assert segments[1].start == 5


class TestBoundaryProfile:
    def test_empty_segment_list_is_all_zeros(self):
        profile = boundary_profile([], symbol=ord("b"))
        assert profile.num_segments == 0
        assert profile.snapped == 0
        assert profile.off_symbol == 0
        assert profile.min_length == 0
        assert profile.max_length == 0
        assert profile.mean_length == 0.0
        assert profile.boundary_symbols == ()

    def test_snapped_and_off_symbol_bookkeeping(self):
        # 'b' at positions 3 and 11 snaps both cuts: 2 snapped, 0 off.
        data = b"aaabaaaaaaabaaa"
        segments = partition_input(data, 3, symbol=ord("b"), snap_window=3)
        profile = boundary_profile(segments, symbol=ord("b"))
        assert profile.num_segments == 3
        assert profile.snapped == 2
        assert profile.off_symbol == 0
        assert profile.boundary_symbols == (ord("b"), ord("b"))

    def test_unsnapped_cut_counts_as_off_symbol(self):
        # No 'z' anywhere: the cut falls back to the target and the
        # boundary byte is whatever precedes it.
        data = b"a" * 100
        segments = partition_input(data, 2, symbol=ord("z"), snap_window=5)
        profile = boundary_profile(segments, symbol=ord("z"))
        assert profile.snapped == 0
        assert profile.off_symbol == 1

    def test_none_symbol_counts_everything_off(self):
        data = b"aaabaaaaaaabaaa"
        segments = partition_input(data, 3, symbol=ord("b"), snap_window=3)
        profile = boundary_profile(segments, symbol=None)
        assert profile.snapped == 0
        assert profile.off_symbol == len(segments) - 1

    def test_length_statistics(self):
        segments = partition_input(b"x" * 100, 4, symbol=None)
        profile = boundary_profile(segments)
        assert profile.min_length == 25
        assert profile.max_length == 25
        assert profile.mean_length == 25.0

    def test_first_segment_contributes_no_boundary(self):
        segments = partition_input(b"ab" * 50, 5)
        profile = boundary_profile(segments, symbol=ord("a"))
        assert len(profile.boundary_symbols) == len(segments) - 1
        assert profile.snapped + profile.off_symbol == len(segments) - 1

    def test_counts_cover_interior_boundaries_lengths_cover_segments(self):
        # The documented contract: snapped/off_symbol classify only the
        # ``num_segments - 1`` interior boundaries while the length
        # statistics cover all segments — pinned across segment counts
        # so the analyze pass can't misread a one-segment profile as
        # "no data".
        data = bytes(random.Random(7).randrange(256) for _ in range(256))
        for num_segments in (1, 2, 3, 5, 8):
            segments = partition_input(data, num_segments, symbol=0x20)
            profile = boundary_profile(segments, symbol=0x20)
            assert (
                profile.snapped + profile.off_symbol
                == profile.num_segments - 1
            )
            assert profile.num_segments == len(segments)
            assert profile.min_length >= 1
            assert (
                abs(
                    profile.mean_length * profile.num_segments - len(data)
                )
                < 1e-6
            )

    def test_one_segment_profile_has_zero_boundary_counts(self):
        segments = partition_input(b"abc" * 10, 1, symbol=ord("b"))
        profile = boundary_profile(segments, symbol=ord("b"))
        assert profile.num_segments == 1
        assert profile.snapped == 0
        assert profile.off_symbol == 0
        assert profile.min_length == 30  # lengths still describe it


class TestDegenerateInputs:
    def test_empty_input(self):
        assert partition_input(b"", 4) == []

    def test_more_segments_than_bytes(self):
        segments = partition_input(b"ab", 10)
        assert len(segments) <= 2
        assert segments[-1].end == 2

    def test_single_segment(self):
        segments = partition_input(b"abc", 1)
        assert len(segments) == 1
        assert segments[0].length == 3

    def test_zero_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_input(b"abc", 0)

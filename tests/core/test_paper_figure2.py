"""Fidelity test: the paper's Figure 2 worked example.

Figure 2 parallelizes a 3-state FSM that "detects the first word in
every line" over two 5-symbol segments, enumerating segment I2 from all
three states.  The transition table (paper, Figure 2 right):

            x     \\s    \\n
    S0  ->  S1    S0    S0
    S1  ->  S1    S2    S0
    S2  ->  S2    S2    S0

Input: I1 = "\\s \\n \\n \\s x", I2 = "b c d \\s \\n" (letters are 'x'-class
word characters).  The paper's enumeration table for I2:

    start S0:  S1 S1 S1 S2 S0
    start S1:  S1 S1 S1 S2 S0
    start S2:  S2 S2 S2 S2 S0

so the first two paths converge immediately and the enumeration runs 2
live paths, the true path being the one starting at S1 (I1 ends in S1).
This test reproduces every row of that table.
"""

import pytest

from repro.automata.charclass import CharClass
from repro.automata.dfa import Dfa
from repro.core.dfa_parallel import enumerate_segment, parallel_dfa_run

WORD = 0  # 'x' class: any word character
SPACE = 1  # '\s'
NEWLINE = 2  # '\n'


@pytest.fixture
def figure2_dfa() -> Dfa:
    classes = [
        CharClass.range("a", "z"),
        CharClass.single(" "),
        CharClass.single("\n"),
    ]
    symbol_class = [0] * 256
    for index, klass in enumerate(classes):
        for symbol in klass:
            symbol_class[symbol] = index
    return Dfa(
        classes=classes,
        symbol_class=symbol_class,
        transitions=[
            [1, 0, 0],  # S0: x->S1, \s->S0, \n->S0
            [1, 2, 0],  # S1: x->S1, \s->S2, \n->S0
            [2, 2, 0],  # S2: x->S2, \s->S2, \n->S0
        ],
        accepting=[False, True, False],  # S1 = inside the first word
        subsets=[frozenset()] * 3,
    )


I1 = b"  \n\na"  # \s \s \n \n x   (ends in S1, as in the figure)
I2 = b"bcd \n"  # x x x \s \n


class TestFigure2Enumeration:
    def test_paper_enumeration_table(self, figure2_dfa):
        data = I1 + I2
        trace, _ = enumerate_segment(figure2_dfa, data, 5, 10, converge=False)
        # Reconstruct the per-step state sequences for each start.
        sequences = {start: [] for start in range(3)}
        for start in range(3):
            state = start
            for index in range(5, 10):
                state = figure2_dfa.step(state, data[index])
                sequences[start].append(state)
        assert sequences[0] == [1, 1, 1, 2, 0]
        assert sequences[1] == [1, 1, 1, 2, 0]
        assert sequences[2] == [2, 2, 2, 2, 0]
        assert trace.end_state[:3] == (0, 0, 0)

    def test_paths_converge_after_first_symbol(self, figure2_dfa):
        data = I1 + I2
        trace, steps = enumerate_segment(figure2_dfa, data, 5, 10)
        # S0 and S1 both map to S1 on 'b': 3 paths -> 2 immediately
        # (the paper's "after processing the first two symbols" is
        # conservative for this input), then all collapse on \n.
        assert trace.distinct_after[0] == 2
        assert trace.distinct_after[-1] == 1
        # Convergence saves work: fewer than 3 paths x 5 symbols.
        assert steps < 15

    def test_true_path_selected_from_I1_end(self, figure2_dfa):
        data = I1 + I2
        result = parallel_dfa_run(figure2_dfa, data, 2)
        # I1 ends at S1; the true I2 path is the S1 row ending at S0.
        assert result.segments[0].end_state[0] == 1
        assert result.final_state == 0

    def test_parallel_equals_sequential(self, figure2_dfa):
        data = I1 + I2
        state = 0
        accepts = []
        for index, symbol in enumerate(data):
            state = figure2_dfa.step(state, symbol)
            if figure2_dfa.accepting[state]:
                accepts.append(index)
        result = parallel_dfa_run(figure2_dfa, data, 2)
        assert result.final_state == state
        assert list(result.accept_offsets) == accepts

    def test_speedup_structure(self, figure2_dfa):
        # 2 segments, tiny FSM: enumeration work stays near 2x the
        # segment cost thanks to convergence.
        data = (I1 + I2) * 20
        result = parallel_dfa_run(figure2_dfa, data, 2)
        assert result.work_amplification < 2.0

"""Integration tests for the Parallel Automata Processor.

The central contract: PAP composition reproduces the sequential report
set exactly, for every optimization configuration; and PAP never loses
to the sequential baseline in modeled cycles.
"""

import random
from dataclasses import replace

import pytest

from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.automata.random_gen import (
    random_automaton,
    random_input,
    random_ruleset_automaton,
)
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.regex.ruleset import compile_ruleset

SMALL_BOARD = BoardGeometry(ranks=1, devices_per_rank=2)  # 4 half-cores


def small_config(**overrides):
    base = PAPConfig(
        geometry=SMALL_BOARD, tdm_slice_symbols=32, early_check_symbols=8
    )
    return replace(base, **overrides)


@pytest.fixture
def ruleset():
    automaton, _ = compile_ruleset(
        ["abc", "a.c", "x[yz]+w", "^start", "b{2,3}d"]
    )
    return automaton


@pytest.fixture
def trace():
    rng = random.Random(42)
    return bytes(rng.choice(b"abcdxyzw s") for _ in range(2000))


class TestReportEquivalence:
    def test_matches_sequential_on_ruleset(self, ruleset, trace):
        baseline = run_sequential(ruleset, trace)
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(trace)
        assert result.reports == baseline.reports
        assert baseline.reports  # the trace actually exercises matches

    @pytest.mark.parametrize(
        "toggle",
        [
            "use_connected_components",
            "use_common_parent",
            "use_asg",
            "use_convergence",
            "use_deactivation",
            "use_fiv",
        ],
    )
    def test_each_optimization_disabled_alone(self, ruleset, trace, toggle):
        baseline = run_sequential(ruleset, trace)
        config = small_config(**{toggle: False})
        result = ParallelAutomataProcessor(ruleset, config=config).run(trace)
        assert result.reports == baseline.reports, toggle

    def test_all_optimizations_disabled(self, ruleset, trace):
        baseline = run_sequential(ruleset, trace)
        config = small_config().without_optimizations()
        result = ParallelAutomataProcessor(ruleset, config=config).run(trace)
        assert result.reports == baseline.reports

    def test_random_ruleset_sweep(self):
        for seed in range(8):
            automaton = random_ruleset_automaton(seed, num_patterns=5)
            data = random_input(seed + 100, length=600)
            baseline = run_sequential(automaton, data)
            result = ParallelAutomataProcessor(
                automaton, config=small_config()
            ).run(data)
            assert result.reports == baseline.reports, f"seed {seed}"

    def test_adversarial_random_automata(self):
        for seed in range(10):
            automaton = random_automaton(seed, num_states=10)
            data = random_input(seed + 500, length=300, alphabet=b"abcd")
            baseline = run_sequential(automaton, data)
            result = ParallelAutomataProcessor(
                automaton, config=small_config()
            ).run(data)
            assert result.reports == baseline.reports, f"seed {seed}"

    def test_tiny_tdm_slices(self, ruleset, trace):
        baseline = run_sequential(ruleset, trace)
        config = small_config(tdm_slice_symbols=3, early_check_symbols=1)
        result = ParallelAutomataProcessor(ruleset, config=config).run(trace)
        assert result.reports == baseline.reports

    def test_many_segments_short_input(self, ruleset):
        data = b"abcxyzw" * 4
        baseline = run_sequential(ruleset, data)
        config = PAPConfig(tdm_slice_symbols=4)  # 64 segments requested
        result = ParallelAutomataProcessor(ruleset, config=config).run(data)
        assert result.reports == baseline.reports


class TestDegenerateInputs:
    def test_empty_input(self, ruleset):
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(b"")
        assert result.reports == frozenset()
        assert result.total_cycles == 0
        assert result.num_segments == 0

    def test_single_byte(self, ruleset):
        baseline = run_sequential(ruleset, b"a")
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(b"a")
        assert result.reports == baseline.reports

    def test_input_without_matches(self, ruleset):
        data = b"qqqqqqq" * 50
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(data)
        assert result.reports == frozenset()


class TestTiming:
    def test_never_worse_than_sequential(self, ruleset, trace):
        baseline = run_sequential(ruleset, trace)
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(trace)
        assert result.total_cycles <= baseline.total_cycles

    def test_speedup_on_long_input(self, ruleset):
        rng = random.Random(7)
        data = bytes(rng.choice(b"abcdxyzw s") for _ in range(40000))
        baseline = run_sequential(ruleset, data)
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(data)
        speedup = baseline.total_cycles / result.total_cycles
        assert speedup > 2.0  # 4 half-cores -> ideal 4
        assert not result.golden_fallback

    def test_golden_fallback_on_tiny_input(self, ruleset):
        # Segments so short that composition overhead dominates.
        data = b"abcabcab"
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(data)
        assert result.total_cycles <= len(data) + len(result.reports)

    def test_truth_times_monotone(self, ruleset, trace):
        result = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).run(trace)
        times = list(result.truth_times)
        assert times == sorted(times)
        finishes = [
            r.metrics.finish_cycles for r in result.segment_results
        ]
        assert times[-1] >= max(finishes)


class TestPlanning:
    def test_plan_segment_count(self, ruleset, trace):
        pap = ParallelAutomataProcessor(ruleset, config=small_config())
        assert pap.num_segments == 4
        plan = pap.plan(trace)
        assert len(plan.segments) == 4
        assert plan.segments[0].is_golden
        assert not any(p.is_golden for p in plan.segments[1:])

    def test_half_core_override_reduces_segments(self, ruleset, trace):
        pap = ParallelAutomataProcessor(
            ruleset, config=small_config(), half_cores=2
        )
        assert pap.num_segments == 2

    def test_segment_plans_have_boundary_flows(self, ruleset, trace):
        plan = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).plan(trace)
        for segment_plan in plan.segments[1:]:
            assert segment_plan.segment.boundary_symbol is not None

    def test_asg_off_inflates_flow_plans(self, ruleset, trace):
        with_asg = ParallelAutomataProcessor(
            ruleset, config=small_config()
        ).plan(trace)
        without_asg = ParallelAutomataProcessor(
            ruleset, config=small_config(use_asg=False)
        ).plan(trace)
        assert (
            without_asg.segments[1].stats.flows_in_range
            >= with_asg.segments[1].stats.flows_in_range
        )

    def test_svc_overflow_flag(self, ruleset, trace):
        config = small_config(max_flows=1)
        result = ParallelAutomataProcessor(ruleset, config=config).run(trace)
        # With range >= 1 somewhere this tiny limit must overflow... the
        # chosen symbol may have an empty range; assert flag consistency
        # instead of a fixed value.
        expected = any(len(p.flows) + 1 > 1 for p in result.plans)
        assert result.svc_overflow == expected

    def test_svc_overflow_without_asg_flow(self):
        # Regression: the +1 for the ASG flow was unconditional, so an
        # automaton with no path-independent states (hence no ASG flow)
        # flagged overflow at exactly max_flows planned flows even
        # though every flow had a slot.
        automaton, _ = compile_ruleset(["^abcab", "^babba", "^aabb"])
        rng = random.Random(1)
        data = bytes(rng.choice(b"ab") for _ in range(2000))
        pap = ParallelAutomataProcessor(automaton, config=small_config())
        assert not pap.path_independent
        peak = pap.plan(data).max_planned_flows
        assert peak >= 2
        at_capacity = ParallelAutomataProcessor(
            automaton, config=small_config(max_flows=peak)
        ).run(data)
        assert at_capacity.svc_overflow is False
        over_capacity = ParallelAutomataProcessor(
            automaton, config=small_config(max_flows=peak - 1)
        ).run(data)
        assert over_capacity.svc_overflow is True

    def test_svc_overflow_counts_asg_flow_when_present(self, ruleset, trace):
        # With path-independent states the ASG flow does occupy a slot:
        # exactly max_flows planned flows must still overflow.
        pap = ParallelAutomataProcessor(ruleset, config=small_config())
        assert pap.path_independent
        peak = pap.plan(trace).max_planned_flows
        assert peak >= 1
        at_capacity = ParallelAutomataProcessor(
            ruleset, config=small_config(max_flows=peak)
        ).run(trace)
        assert at_capacity.svc_overflow is True
        with_headroom = ParallelAutomataProcessor(
            ruleset, config=small_config(max_flows=peak + 1)
        ).run(trace)
        assert with_headroom.svc_overflow is False

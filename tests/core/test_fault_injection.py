"""Fault-injection and mutation tests.

The PAP's exactness rests on specific rules (unit truth = members ⊆ M,
per-offset flow ownership, ASG always-true).  These tests *break* each
rule deliberately and assert the result diverges from the baseline —
demonstrating the equivalence tests have teeth — and inject hardware
faults into the modeled substrate to check the guards fire.
"""

import random

import pytest

from repro.ap.events import OutputEventBuffer
from repro.ap.flows import ApFlow
from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import run_sequential
from repro.ap.state_vector import StateVector, StateVectorCache
from repro.automata.execution import CompiledAutomaton, FlowExecution
from repro.core.composition import compose_segment, unit_truth_map
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.core.scheduler import SegmentScheduler
from repro.errors import ExecutionError
from repro.regex.ruleset import compile_ruleset

BOARD = BoardGeometry(ranks=1, devices_per_rank=2)
CONFIG = PAPConfig(geometry=BOARD, tdm_slice_symbols=32)


@pytest.fixture(scope="module")
def setup():
    """A workload where enumeration truth *matters*: matches tile the
    whole input, so every segment boundary cuts through one and the
    cross-boundary results exist only in true enumeration units."""
    automaton, _ = compile_ruleset(["abcabc"])
    rng = random.Random(13)
    data = bytes(rng.choice(b"abc") for _ in range(600)) + b"abc" * 700
    baseline = run_sequential(automaton, data)
    assert baseline.reports  # faults must have something to corrupt
    return automaton, data, baseline


def run_with_truth_mutator(automaton, data, mutate):
    """Re-implement the PAP composition loop with a mutated truth map."""
    pap = ParallelAutomataProcessor(automaton, config=CONFIG)
    scheduler = SegmentScheduler(
        pap.compiled, pap.analysis, pap.config, pap.path_independent
    )
    plan = pap.plan(data)
    reports = set()
    previous = frozenset()
    for segment_plan in plan.segments:
        if segment_plan.is_golden:
            result = scheduler.run_segment(data, segment_plan)
            composed = compose_segment(result, {}, pap.analysis)
        else:
            truth = mutate(unit_truth_map(segment_plan.flows, previous))
            result = scheduler.run_segment(data, segment_plan)
            composed = compose_segment(result, truth, pap.analysis)
        reports |= composed.true_reports
        previous = composed.final_matched
    return frozenset(reports)


class TestTruthRuleMutations:
    def test_all_true_overreports(self, setup):
        """Marking every unit true must admit false-path reports (when
        any false paths produced events at all)."""
        automaton, data, baseline = setup
        honest = run_with_truth_mutator(automaton, data, lambda t: t)
        assert honest == baseline.reports
        greedy = run_with_truth_mutator(
            automaton, data, lambda t: {uid: True for uid in t}
        )
        # Never loses reports; gains exactly the false-path ones.
        assert greedy >= baseline.reports

    def test_all_false_loses_reports(self, setup):
        """Marking every unit false keeps only ASG-flow reports: a
        strict subset whenever enumeration carried true results."""
        automaton, data, baseline = setup
        honest = run_with_truth_mutator(automaton, data, lambda t: t)
        paranoid = run_with_truth_mutator(
            automaton, data, lambda t: {uid: False for uid in t}
        )
        assert paranoid <= baseline.reports
        # This workload has true enumeration units carrying reports, so
        # discarding them must actually lose something.
        assert honest == baseline.reports
        assert paranoid < baseline.reports

    def test_inverted_truth_diverges(self, setup):
        """Flipping every verdict must not reproduce the baseline on a
        workload where enumeration matters."""
        automaton, data, baseline = setup
        inverted = run_with_truth_mutator(
            automaton,
            data,
            lambda t: {uid: not value for uid, value in t.items()},
        )
        assert inverted != baseline.reports


class TestHardwareFaults:
    def test_cache_slot_corruption_detected(self):
        automaton, _ = compile_ruleset(["ab"])
        compiled = CompiledAutomaton(automaton)
        cache = StateVectorCache(capacity=4)
        flow = ApFlow(
            flow_id=0,
            execution=FlowExecution(compiled),
            cache=cache,
            buffer=OutputEventBuffer(),
        )
        flow.process(b"a", 0)
        flow.save()
        # Inject a bit flip into the saved vector.
        cache.save(0, StateVector(active=frozenset({999})))
        with pytest.raises(ExecutionError, match="diverged"):
            flow.restore()

    def test_restore_after_invalidation_fails(self):
        automaton, _ = compile_ruleset(["ab"])
        compiled = CompiledAutomaton(automaton)
        cache = StateVectorCache(capacity=4)
        flow = ApFlow(
            flow_id=1,
            execution=FlowExecution(compiled),
            cache=cache,
            buffer=OutputEventBuffer(),
        )
        flow.save()
        cache.invalidate(1)
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            flow.restore()


class TestSchedulerRobustness:
    def test_mid_segment_fiv_cannot_lose_true_reports(self, setup):
        """Even with an FIV arriving at every possible boundary, true
        reports survive (FIV only ever kills all-false flows)."""
        automaton, data, baseline = setup
        for fiv_time in (0, 50, 500):
            pap = ParallelAutomataProcessor(automaton, config=CONFIG)
            result = pap.run(data)
            assert result.reports == baseline.reports, fiv_time

    def test_convergence_every_step_is_safe(self, setup):
        automaton, data, baseline = setup
        config = PAPConfig(
            geometry=BOARD,
            tdm_slice_symbols=8,
            convergence_period_steps=1,
        )
        result = ParallelAutomataProcessor(automaton, config=config).run(data)
        assert result.reports == baseline.reports

    def test_non_overlapped_convergence_costs_cycles(self, setup):
        automaton, data, _ = setup
        from dataclasses import replace

        base = PAPConfig(
            geometry=BOARD,
            tdm_slice_symbols=8,
            convergence_period_steps=1,
        )
        overlapped = ParallelAutomataProcessor(
            automaton, config=base
        ).run(data)
        inline = ParallelAutomataProcessor(
            automaton,
            config=replace(
                base,
                timing=replace(
                    base.timing, convergence_checks_overlapped=False
                ),
            ),
        ).run(data)
        assert inline.reports == overlapped.reports
        if overlapped.convergence_merges or any(
            r.metrics.convergence_comparisons
            for r in overlapped.segment_results
        ):
            assert inline.enumeration_cycles >= overlapped.enumeration_cycles

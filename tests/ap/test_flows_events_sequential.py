"""Unit tests for AP flows, the output event buffer, and the
sequential baseline."""

import pytest

from repro.ap.events import OutputEvent, OutputEventBuffer
from repro.ap.flows import ApFlow
from repro.ap.sequential import run_sequential
from repro.ap.state_vector import StateVectorCache
from repro.ap.timing import TimingModel
from repro.automata import builder
from repro.automata.anml import Automaton
from repro.automata.execution import (
    CompiledAutomaton,
    FlowExecution,
    Report,
    run_automaton,
)
from repro.errors import ExecutionError


@pytest.fixture
def compiled():
    automaton = Automaton()
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(
        automaton, hub, builder.classes_for("ab"), report_code=9
    )
    return CompiledAutomaton(automaton)


def make_flow(compiled, flow_id=0):
    return ApFlow(
        flow_id=flow_id,
        execution=FlowExecution(compiled),
        cache=StateVectorCache(capacity=8),
        buffer=OutputEventBuffer(),
    )


class TestOutputEventBuffer:
    def test_push_and_drain(self):
        buffer = OutputEventBuffer()
        buffer.push(Report(offset=3, element=1, code=9), flow_id=2)
        assert len(buffer) == 1
        (event,) = buffer.drain()
        assert event == OutputEvent(
            offset=3, report_code=9, element=1, flow_id=2
        )
        assert len(buffer) == 0
        assert buffer.raw_events == 1  # volume survives draining

    def test_event_to_report_roundtrip(self):
        report = Report(offset=5, element=2, code=7)
        buffer = OutputEventBuffer()
        buffer.push_all([report], flow_id=1)
        assert buffer.drain()[0].to_report() == report

    def test_events_are_ordered(self):
        early = OutputEvent(offset=1, report_code=0, element=0, flow_id=0)
        late = OutputEvent(offset=2, report_code=0, element=0, flow_id=0)
        assert early < late


class TestApFlow:
    def test_process_pushes_tagged_events(self, compiled):
        flow = make_flow(compiled, flow_id=4)
        flow.process(b"xabx", 0)
        events = flow.buffer.drain()
        assert [e.flow_id for e in events] == [4]
        assert events[0].report_code == 9

    def test_save_restore_cycle(self, compiled):
        flow = make_flow(compiled)
        flow.process(b"xa", 0)
        flow.save()
        assert flow.cache.saves == 1
        flow.restore()
        assert flow.resident
        flow.process(b"b", 2)
        assert {e.offset for e in flow.buffer.events} == {2}

    def test_deactivated_flow_rejects_use(self, compiled):
        flow = make_flow(compiled)
        flow.deactivate()
        with pytest.raises(ExecutionError):
            flow.process(b"a", 0)
        with pytest.raises(ExecutionError):
            flow.save()

    def test_deactivate_invalidates_cache_slot(self, compiled):
        flow = make_flow(compiled)
        flow.save()
        flow.deactivate()
        assert flow.cache.occupied() == 0

    def test_unproductive_detection(self, compiled):
        # Hub automata are never unproductive (persistent start).
        flow = make_flow(compiled)
        flow.process(b"zzzz", 0)
        assert not flow.is_unproductive()

    def test_state_vector_snapshot(self, compiled):
        flow = make_flow(compiled)
        flow.process(b"xa", 0)
        assert flow.state_vector().active == flow.execution.state_vector()


class TestSequentialBaseline:
    def test_cycles_equal_input_length(self, compiled):
        result = run_sequential(compiled, b"xxabxx")
        assert result.symbol_cycles == 6

    def test_reports_match_functional_executor(self, compiled):
        data = b"ab-ab-ab"
        baseline = run_sequential(compiled, data)
        assert baseline.reports == run_automaton(compiled, data).report_set

    def test_host_cycles_from_event_volume(self, compiled):
        result = run_sequential(compiled, b"ab" * 100)
        assert result.host_cycles >= 1
        assert result.total_cycles == result.symbol_cycles + result.host_cycles

    def test_wall_clock_conversion(self, compiled):
        result = run_sequential(compiled, b"x" * 1000)
        # 1000 cycles at 7.5 ns = 7.5 us, plus host drain.
        assert result.seconds() == pytest.approx(
            result.total_cycles * 7.5e-9
        )

    def test_custom_timing(self, compiled):
        slow = TimingModel(symbol_cycle_ns=15.0)
        result = run_sequential(compiled, b"x" * 10, timing=slow)
        assert result.seconds(slow) == pytest.approx(
            result.total_cycles * 15e-9
        )

    def test_transitions_counted(self, compiled):
        result = run_sequential(compiled, b"aaaa")
        assert result.transitions > 0

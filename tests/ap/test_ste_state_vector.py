"""Unit tests for the STE column model and the state-vector cache."""

import pytest

from repro.ap.state_vector import StateVector, StateVectorCache
from repro.ap.ste import SteArray, SteColumn
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError, CapacityError


class TestSteColumn:
    def test_program_and_row_read(self):
        column = SteColumn()
        column.program(CharClass("ab"))
        assert column.row_read(ord("a"))
        assert not column.row_read(ord("c"))

    def test_one_hot_semantics_matches_charclass(self):
        # The bit-level column and the CharClass mask must agree on all
        # 256 rows (the paper's example: 'a' -> row 97 set).
        label = CharClass.range("0", "9") | CharClass.single(97)
        column = SteColumn()
        column.program(label)
        for symbol in range(256):
            assert column.row_read(symbol) == (symbol in label)
        assert column.to_charclass() == label

    def test_row97_for_lowercase_a(self):
        column = SteColumn()
        column.program(CharClass.single("a"))
        assert column.rows[97] == 1
        assert column.popcount() == 1

    def test_reprogram_clears(self):
        column = SteColumn()
        column.program(CharClass("abc"))
        column.program(CharClass("x"))
        assert column.popcount() == 1

    def test_bad_row_address(self):
        with pytest.raises(AutomatonError):
            SteColumn().row_read(256)


class TestSteArray:
    def test_broadcast_match(self):
        array = SteArray(8)
        array.program_column(0, CharClass("a"))
        array.program_column(3, CharClass("ab"))
        array.program_column(5, CharClass("b"))
        assert array.match_word(ord("a")) == {0, 3}
        assert array.match_word(ord("b")) == {3, 5}

    def test_unprogrammed_columns_never_match(self):
        array = SteArray(4)
        assert array.match_word(ord("a")) == set()
        assert array.programmed == 0

    def test_capacity_enforced(self):
        array = SteArray(2)
        with pytest.raises(AutomatonError):
            array.program_column(2, CharClass("a"))
        with pytest.raises(AutomatonError):
            SteArray(0)


class TestStateVector:
    def test_zero_detection(self):
        assert StateVector(active=frozenset()).is_zero()
        assert not StateVector(active=frozenset({3})).is_zero()
        assert not StateVector(active=frozenset(), counters=(1,)).is_zero()

    def test_equality_comparator(self):
        a = StateVector(active=frozenset({1, 2}))
        b = StateVector(active=frozenset({2, 1}))
        c = StateVector(active=frozenset({1}))
        assert a.equals(b)
        assert not a.equals(c)

    def test_architectural_bit_width(self):
        assert StateVector(active=frozenset()).bits == 59_936


class TestStateVectorCache:
    def test_save_restore_roundtrip(self):
        cache = StateVectorCache(capacity=4)
        vector = StateVector(active=frozenset({7}))
        cache.save(2, vector)
        assert cache.restore(2) == vector
        assert cache.saves == 1
        assert cache.restores == 1

    def test_capacity_limit_is_512_by_default(self):
        assert StateVectorCache().capacity == 512

    def test_overflow_raises(self):
        cache = StateVectorCache(capacity=1)
        cache.save(0, StateVector(active=frozenset()))
        with pytest.raises(CapacityError):
            cache.save(1, StateVector(active=frozenset()))

    def test_overwrite_same_slot_allowed(self):
        cache = StateVectorCache(capacity=1)
        cache.save(0, StateVector(active=frozenset()))
        cache.save(0, StateVector(active=frozenset({1})))
        assert cache.restore(0).active == frozenset({1})

    def test_invalidate_frees_slot(self):
        cache = StateVectorCache(capacity=1)
        cache.save(0, StateVector(active=frozenset()))
        cache.invalidate(0)
        cache.invalidate(0)  # idempotent
        cache.save(1, StateVector(active=frozenset()))
        assert cache.occupied() == 1
        assert cache.slots() == (1,)

    def test_restore_missing_slot(self):
        with pytest.raises(CapacityError):
            StateVectorCache().restore(9)

    def test_comparator_counts_invocations(self):
        cache = StateVectorCache()
        cache.save(0, StateVector(active=frozenset({1})))
        cache.save(1, StateVector(active=frozenset({1})))
        cache.save(2, StateVector(active=frozenset()))
        assert cache.compare(0, 1)
        assert not cache.compare(0, 2)
        assert cache.is_zero(2)
        assert cache.comparisons == 3

    def test_hit_and_miss_counters(self):
        cache = StateVectorCache(capacity=4)
        cache.save(0, StateVector(active=frozenset({1})))
        cache.restore(0)
        cache.restore(0)
        with pytest.raises(CapacityError):
            cache.restore(9)
        assert cache.hits == 2
        assert cache.misses == 1

    def test_peak_occupancy_survives_invalidation(self):
        cache = StateVectorCache(capacity=4)
        for slot in range(3):
            cache.save(slot, StateVector(active=frozenset()))
        cache.invalidate(0)
        cache.invalidate(1)
        assert cache.occupied() == 1
        assert cache.peak_occupancy == 3

    def test_invalidations_count_actual_removals(self):
        cache = StateVectorCache(capacity=2)
        cache.save(0, StateVector(active=frozenset()))
        cache.invalidate(0)
        cache.invalidate(0)  # slot already gone: not counted
        cache.invalidate(7)  # never present: not counted
        assert cache.invalidations == 1

    def test_stats_snapshot(self):
        cache = StateVectorCache(capacity=8)
        cache.save(0, StateVector(active=frozenset({1})))
        cache.save(1, StateVector(active=frozenset({1})))
        cache.restore(0)
        cache.compare(0, 1)
        cache.invalidate(1)
        stats = cache.stats()
        assert stats == {
            "capacity": 8,
            "occupied": 1,
            "peak_occupancy": 2,
            "saves": 2,
            "restores": 1,
            "hits": 1,
            "misses": 0,
            "invalidations": 1,
            "comparisons": 1,
        }
        import json

        json.dumps(stats)  # plain data, embeds in PAPRunResult.extra

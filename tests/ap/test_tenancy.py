"""Tests for multi-stream flow tenancy."""

import pytest

from repro.ap.state_vector import StateVectorCache
from repro.ap.tenancy import MultiStreamScheduler
from repro.automata.execution import run_automaton
from repro.errors import CapacityError, ConfigurationError
from repro.regex.ruleset import compile_ruleset


@pytest.fixture(scope="module")
def automaton():
    compiled, _ = compile_ruleset(["needle", "spike[0-9]"])
    return compiled


class TestMultiStream:
    def test_each_stream_gets_its_own_matches(self, automaton):
        scheduler = MultiStreamScheduler(automaton, slice_symbols=16)
        streams = [
            b"xx needle yy",
            b"nothing here",
            b"spike7 spike8",
        ]
        result = scheduler.run(streams)
        for job, data in zip(result.jobs, streams):
            assert job.reports == run_automaton(automaton, data).report_set

    def test_isolation_between_tenants(self, automaton):
        # A partial match in one stream must not leak into another.
        scheduler = MultiStreamScheduler(automaton, slice_symbols=3)
        streams = [b"need", b"le"]  # neither contains the full needle
        result = scheduler.run(streams)
        assert not result.jobs[0].reports
        assert not result.jobs[1].reports

    def test_report_offsets_are_stream_local(self, automaton):
        scheduler = MultiStreamScheduler(automaton, slice_symbols=4)
        result = scheduler.run([b"..needle", b"needle"])
        assert {r.offset for r in result.jobs[0].reports} == {7}
        assert {r.offset for r in result.jobs[1].reports} == {5}

    def test_switch_cost_accounting(self, automaton):
        scheduler = MultiStreamScheduler(automaton, slice_symbols=8)
        result = scheduler.run([b"a" * 16, b"b" * 16])
        # 2 jobs x 2 slices each, multiplexed throughout: 4 switches.
        assert result.switch_cycles == 4 * 3
        assert result.symbol_cycles == 32
        assert result.total_cycles == 32 + 12
        assert 0 < result.multiplexing_overhead < 1

    def test_single_stream_pays_no_switching(self, automaton):
        scheduler = MultiStreamScheduler(automaton, slice_symbols=8)
        result = scheduler.run([b"x" * 40])
        assert result.switch_cycles == 0
        assert result.total_cycles == 40

    def test_uneven_lengths_finish_independently(self, automaton):
        scheduler = MultiStreamScheduler(automaton, slice_symbols=8)
        result = scheduler.run([b"x" * 8, b"y" * 64])
        short, long = result.jobs
        assert short.finish_cycles < long.finish_cycles
        assert long.finish_cycles == result.total_cycles
        # Once alone, the long stream stops paying switch cost.
        assert result.switch_cycles < (8 + 64) // 8 * 3 + 6

    def test_empty_stream(self, automaton):
        scheduler = MultiStreamScheduler(automaton)
        result = scheduler.run([b"", b"needle"])
        assert result.jobs[0].finish_cycles == 0
        assert result.jobs[1].reports

    def test_cache_capacity_enforced(self, automaton):
        scheduler = MultiStreamScheduler(
            automaton, cache=StateVectorCache(capacity=1)
        )
        with pytest.raises(CapacityError):
            scheduler.run([b"a", b"b"])

    def test_cache_slots_released(self, automaton):
        cache = StateVectorCache(capacity=2)
        scheduler = MultiStreamScheduler(automaton, cache=cache)
        scheduler.run([b"aa", b"bb"])
        assert cache.occupied() == 0

    def test_bad_slice_rejected(self, automaton):
        with pytest.raises(ConfigurationError):
            MultiStreamScheduler(automaton, slice_symbols=0)

"""Unit tests for routing, placement, and device composition."""

import pytest

from repro.ap.device import Board, HalfCore
from repro.ap.geometry import FOUR_RANKS, ONE_RANK, BoardGeometry
from repro.ap.placement import place_automaton, segments_available
from repro.ap.routing import RoutingMatrix
from repro.automata import builder
from repro.automata.anml import Automaton
from repro.errors import PlacementError


def ruleset(num_groups=3, pattern="abc"):
    automaton = Automaton("rs")
    for code in range(num_groups):
        hub = builder.star_self_loop(automaton)
        builder.attach_pattern(
            automaton, hub, builder.classes_for(pattern), report_code=code
        )
    return automaton


class TestRoutingMatrix:
    def test_route_follows_programmed_edges(self):
        matrix = RoutingMatrix(8)
        matrix.program({(0, 1), (0, 2), (3, 4)})
        assert matrix.route({0}) == {1, 2}
        assert matrix.route({0, 3}) == {1, 2, 4}
        assert matrix.route({5}) == set()

    def test_out_of_range_edge_rejected(self):
        matrix = RoutingMatrix(4)
        with pytest.raises(PlacementError):
            matrix.program({(0, 9)})

    def test_recompilation_counted(self):
        matrix = RoutingMatrix(4)
        matrix.program({(0, 1)})
        assert matrix.recompilations == 0
        matrix.program({(1, 2)})
        assert matrix.recompilations == 1

    def test_utilization(self):
        matrix = RoutingMatrix(10)
        matrix.program({(0, 1), (1, 2)})
        assert matrix.utilization() == 0.2


class TestPlacement:
    def test_small_automaton_fits_one_half_core(self):
        placement = place_automaton(ruleset())
        assert placement.half_cores == 1
        assert placement.total_states == 12

    def test_components_never_split(self):
        automaton = ruleset(num_groups=4)
        placement = place_automaton(automaton, capacity=8)
        # 4 components of 4 states with capacity 8 -> 2 per half-core.
        assert placement.half_cores == 2
        loads = placement.loads
        assert all(load <= 8 for load in loads)

    def test_component_exceeding_capacity_rejected(self):
        automaton = ruleset(pattern="abcdefghij")  # 11-state component
        with pytest.raises(PlacementError, match="exceeding"):
            place_automaton(automaton, capacity=8)

    def test_min_half_cores_pins_footprint(self):
        placement = place_automaton(ruleset(), min_half_cores=3)
        assert placement.half_cores == 3

    def test_utilization_fraction(self):
        placement = place_automaton(ruleset(), capacity=24)
        assert placement.utilization(24) == 12 / 24

    def test_segments_available_matches_table1(self):
        # Table 1's last two columns.
        assert segments_available(ONE_RANK, 1) == 16
        assert segments_available(ONE_RANK, 2) == 8
        assert segments_available(ONE_RANK, 3) == 5
        assert segments_available(FOUR_RANKS, 1) == 64
        assert segments_available(FOUR_RANKS, 2) == 32
        assert segments_available(FOUR_RANKS, 3) == 21

    def test_segments_available_validates(self):
        with pytest.raises(PlacementError):
            segments_available(ONE_RANK, 0)


class TestHalfCoreLoading:
    def test_load_programs_stes_and_routing(self):
        automaton = ruleset(num_groups=1)
        half_core = HalfCore(index=0, capacity=16)
        half_core.load(automaton, list(range(4)))
        assert half_core.occupancy == 4
        assert half_core.stes.programmed == 4
        assert half_core.routing.num_edges == automaton.num_edges

    def test_cross_half_core_edge_rejected(self):
        automaton = ruleset(num_groups=1)
        half_core = HalfCore(index=0, capacity=16)
        with pytest.raises(PlacementError, match="crosses half-core"):
            half_core.load(automaton, [0, 1])  # chain continues to 2,3

    def test_over_capacity_rejected(self):
        automaton = ruleset(num_groups=1)
        half_core = HalfCore(index=0, capacity=2)
        with pytest.raises(PlacementError):
            half_core.load(automaton, [0, 1, 2, 3])


class TestBoard:
    @pytest.fixture
    def tiny_board(self):
        return Board(
            geometry=BoardGeometry(
                ranks=1, devices_per_rank=1, stes_per_half_core=64
            )
        )

    def test_board_composition(self, tiny_board):
        assert tiny_board.num_half_cores == 2
        assert len(tiny_board.devices) == 1
        assert tiny_board.devices[0].state_vector_cache.capacity == 512

    def test_half_core_global_addressing(self, tiny_board):
        assert tiny_board.half_core(0) is tiny_board.devices[0].half_cores[0]
        assert tiny_board.half_core(1) is tiny_board.devices[0].half_cores[1]

    def test_load_automaton_places_components(self, tiny_board):
        automaton = ruleset(num_groups=2)
        placement = tiny_board.load_automaton(automaton)
        assert placement.half_cores == 1
        assert tiny_board.half_core(0).occupancy == automaton.num_states

    def test_load_replicas_at_offsets(self, tiny_board):
        automaton = ruleset(num_groups=1)
        tiny_board.load_automaton(automaton, first_half_core=0)
        tiny_board.load_automaton(automaton, first_half_core=1)
        assert tiny_board.half_core(0).occupancy == 4
        assert tiny_board.half_core(1).occupancy == 4

    def test_load_beyond_board_rejected(self, tiny_board):
        automaton = ruleset(num_groups=1)
        with pytest.raises(PlacementError):
            tiny_board.load_automaton(automaton, first_half_core=2)

    def test_loaded_board_matches_functional_executor(self, tiny_board):
        """Row-read match + routing-matrix transition must equal one
        functional executor step (the hardware/functional cross-check)."""
        automaton = ruleset(num_groups=1)
        tiny_board.load_automaton(automaton)
        half_core = tiny_board.half_core(0)

        # One step from {hub}: match phase then transition phase.
        slot_of = half_core.loaded_states
        active = {slot_of[0]}  # hub resident slot
        symbol = ord("a")
        matched = half_core.stes.match_word(symbol) & half_core.routing.route(
            active
        )
        # Functional truth: hub's successors matching 'a' = chain head.
        from repro.automata.execution import CompiledAutomaton, FlowExecution

        flow = FlowExecution(
            CompiledAutomaton(automaton),
            initial_current=[0],
            one_shot=frozenset(),
            persistent=frozenset(),
        )
        flow.step(symbol, 0)
        expected_slots = {slot_of[sid] for sid in flow.current}
        assert matched == expected_slots

"""Unit tests for counter and boolean elements."""

import pytest

from repro.ap.counters import (
    BooleanElement,
    CounterBank,
    CounterElement,
    CounterEvent,
    CounterMode,
)
from repro.automata.execution import Report
from repro.errors import CapacityError, ConfigurationError


def reports(*pairs):
    return [Report(offset=o, element=e, code=e) for o, e in pairs]


class TestCounterElement:
    def test_latch_fires_once(self):
        counter = CounterElement(
            counter_id=0, inputs=frozenset({1}), target=2
        )
        assert counter.feed(0, 1) is None
        event = counter.feed(1, 1)
        assert event == CounterEvent(offset=1, counter_id=0, count=2)
        assert counter.feed(2, 1) is None  # latched

    def test_roll_fires_every_target(self):
        counter = CounterElement(
            counter_id=0, inputs=frozenset({1}), target=2, mode=CounterMode.ROLL
        )
        assert counter.feed(0, 2) is not None
        assert counter.count == 0
        assert counter.feed(1, 1) is None
        assert counter.feed(2, 1) is not None

    def test_pulse_fires_repeatedly_beyond_target(self):
        counter = CounterElement(
            counter_id=0, inputs=frozenset({1}), target=1, mode=CounterMode.PULSE
        )
        assert counter.feed(0, 1) is not None
        assert counter.feed(1, 1) is not None

    def test_multiple_same_cycle_activations(self):
        counter = CounterElement(
            counter_id=0, inputs=frozenset({1, 2}), target=2
        )
        assert counter.feed(0, 2) is not None

    def test_reset(self):
        counter = CounterElement(counter_id=0, inputs=frozenset({1}), target=1)
        counter.feed(0, 1)
        counter.reset()
        assert counter.count == 0 and not counter.latched

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CounterElement(counter_id=0, inputs=frozenset(), target=1)
        with pytest.raises(ConfigurationError):
            CounterElement(counter_id=0, inputs=frozenset({1}), target=0)


class TestBooleanElement:
    @pytest.mark.parametrize(
        "function,fired,expected",
        [
            ("and", {1, 2}, True),
            ("and", {1}, False),
            ("or", {2}, True),
            ("or", set(), False),
            ("nand", {1}, True),
            ("nand", {1, 2}, False),
            ("nor", set(), True),
            ("nor", {2}, False),
        ],
    )
    def test_truth_table(self, function, fired, expected):
        gate = BooleanElement(
            boolean_id=0, function=function, inputs=frozenset({1, 2})
        )
        assert gate.evaluate(frozenset(fired)) is expected

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigurationError):
            BooleanElement(boolean_id=0, function="xor3", inputs=frozenset({1}))


class TestCounterBank:
    def test_support_counting_flow(self):
        bank = CounterBank()
        support = bank.add_counter(inputs=[5], target=3)
        events, _ = bank.process(
            reports((0, 5), (4, 5), (9, 5), (12, 5))
        )
        assert [e.counter_id for e in events] == [support]
        assert events[0].offset == 9  # third activation

    def test_counters_see_cycles_not_wires(self):
        # Two inputs firing in the same cycle bump the count by two.
        bank = CounterBank()
        bank.add_counter(inputs=[1, 2], target=2)
        events, _ = bank.process(reports((3, 1), (3, 2)))
        assert len(events) == 1 and events[0].offset == 3

    def test_boolean_same_cycle_and(self):
        bank = CounterBank()
        gate = bank.add_boolean("and", [1, 2])
        _, firings = bank.process(reports((1, 1), (2, 2), (5, 1), (5, 2)))
        assert firings == [(5, gate)]

    def test_unsorted_reports_processed_in_offset_order(self):
        bank = CounterBank()
        bank.add_counter(inputs=[1], target=2)
        events, _ = bank.process(reports((9, 1), (2, 1)))
        assert events[0].offset == 9

    def test_capacity_limits(self):
        bank = CounterBank(counter_capacity=1, boolean_capacity=1)
        bank.add_counter(inputs=[1], target=1)
        with pytest.raises(CapacityError):
            bank.add_counter(inputs=[1], target=1)
        bank.add_boolean("or", [1])
        with pytest.raises(CapacityError):
            bank.add_boolean("or", [1])

    def test_device_capacities_default(self):
        bank = CounterBank()
        assert bank.counter_capacity == 768
        assert bank.boolean_capacity == 2_304

    def test_reset_bank(self):
        bank = CounterBank()
        bank.add_counter(inputs=[1], target=2)
        bank.process(reports((0, 1)))
        bank.reset()
        events, _ = bank.process(reports((1, 1)))
        assert not events


class TestEndToEndSupportCounting:
    def test_spm_support_with_counters(self):
        """The counters' canonical use: count SPM pattern support on
        the AP instead of streaming every occurrence to the host."""
        from repro.automata.execution import run_automaton
        from repro.workloads.spm import spm_benchmark, transaction_trace

        automaton, items = spm_benchmark(num_patterns=4, seed=5)
        stream = transaction_trace(items, 6_000, seed=6, hit_fraction=0.6)
        result = run_automaton(automaton, stream)

        bank = CounterBank()
        for code in range(4):
            elements = [
                s.sid
                for s in automaton.states()
                if s.reporting and s.code == code
            ]
            bank.add_counter(inputs=elements, target=2)
        events, _ = bank.process(result.reports)
        fired = {e.counter_id for e in events}
        # Patterns matched at least twice must have fired their counter.
        from collections import Counter

        support = Counter(r.code for r in result.report_set)
        expected = {code for code, count in support.items() if count >= 2}
        assert fired >= expected

"""Unit tests for AP geometry and timing constants."""

import pytest

from repro.ap.geometry import (
    FOUR_RANKS,
    ONE_RANK,
    STATE_VECTOR_BITS,
    STES_PER_HALF_CORE,
    BoardGeometry,
)
from repro.ap.timing import DEFAULT_TIMING, TimingModel
from repro.errors import ConfigurationError


class TestGeometry:
    def test_paper_constants(self):
        # Section 2.1: 2 half-cores of 24,576 STEs; 4 ranks of 8 devices.
        assert STES_PER_HALF_CORE == 24_576
        assert ONE_RANK.half_cores == 16
        assert FOUR_RANKS.half_cores == 64
        assert FOUR_RANKS.devices == 32

    def test_state_vector_size(self):
        # (256 enable + 56 counter bits) x 192 blocks + 32 = 59,936.
        assert STATE_VECTOR_BITS == 59_936

    def test_total_stes(self):
        assert ONE_RANK.stes == 16 * 24_576
        assert FOUR_RANKS.stes == 64 * 24_576

    def test_with_ranks(self):
        assert ONE_RANK.with_ranks(4) == FOUR_RANKS
        assert FOUR_RANKS.with_ranks(1) == ONE_RANK

    def test_half_cores_per_rank(self):
        assert BoardGeometry(ranks=2).half_cores_per_rank == 16

    def test_custom_geometry(self):
        tiny = BoardGeometry(ranks=1, devices_per_rank=2)
        assert tiny.half_cores == 4


class TestTiming:
    def test_paper_latencies(self):
        # 7.5 ns symbol cycle, 3-cycle switch, 1668-cycle SV transfer,
        # 15-cycle FIV (Sections 3.2 and 4.2).
        assert DEFAULT_TIMING.symbol_cycle_ns == 7.5
        assert DEFAULT_TIMING.context_switch_cycles == 3
        assert DEFAULT_TIMING.state_vector_transfer_cycles == 1_668
        assert DEFAULT_TIMING.fiv_transfer_cycles == 15

    def test_cycle_conversion(self):
        assert DEFAULT_TIMING.cycles_to_ns(2) == 15.0
        assert DEFAULT_TIMING.cycles_to_seconds(1_000_000) == pytest.approx(
            0.0075
        )

    def test_context_switch_multiplier(self):
        assert DEFAULT_TIMING.with_context_switch_multiplier(2).context_switch_cycles == 6
        assert DEFAULT_TIMING.with_context_switch_multiplier(4).context_switch_cycles == 12

    def test_bad_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_TIMING.with_context_switch_multiplier(0)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel(symbol_cycle_ns=0)
        with pytest.raises(ConfigurationError):
            TimingModel(context_switch_cycles=-1)

    def test_scaled_for_input_shrinks_constants(self):
        scaled = DEFAULT_TIMING.scaled_for_input(65_536, 1_048_576)
        factor = 65_536 / 1_048_576
        assert scaled.state_vector_transfer_cycles == round(1_668 * factor)
        assert scaled.fiv_transfer_cycles >= 1
        assert scaled.context_switch_cycles == 3  # per-symbol costs stay

    def test_scaled_for_input_noop_at_full_size(self):
        assert DEFAULT_TIMING.scaled_for_input(1_048_576, 1_048_576) is DEFAULT_TIMING
        assert (
            DEFAULT_TIMING.scaled_for_input(2_000_000, 1_000_000)
            is DEFAULT_TIMING
        )

    def test_scaled_for_input_validates(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_TIMING.scaled_for_input(0, 100)

"""Unit tests for the host model: report draining, decode, flow table."""

import pytest

from repro.ap.timing import DEFAULT_TIMING, TimingModel
from repro.host.decode import FlowTable, false_path_decode_cycles
from repro.host.reporting import report_processing_cycles


class TestReportProcessing:
    def test_burst_draining(self):
        assert report_processing_cycles(0) == 0
        assert report_processing_cycles(1) == 1
        assert report_processing_cycles(8) == 1
        assert report_processing_cycles(9) == 2
        assert report_processing_cycles(800) == 100

    def test_custom_burst_width(self):
        assert report_processing_cycles(10, events_per_cycle=1) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            report_processing_cycles(-1)
        with pytest.raises(ValueError):
            report_processing_cycles(1, events_per_cycle=0)


class TestFalsePathDecode:
    def test_dominated_by_state_vector_transfer(self):
        cost = false_path_decode_cycles(1)
        assert cost >= DEFAULT_TIMING.state_vector_transfer_cycles
        # The paper's Figure 11 regime: ~2,000 cycles for few flows.
        assert cost < 2_500

    def test_scales_with_flows(self):
        few = false_path_decode_cycles(2)
        many = false_path_decode_cycles(500)
        assert many > few
        assert many - few == DEFAULT_TIMING.decode_cycles_per_flow * 498

    def test_timing_overrides(self):
        timing = TimingModel(
            state_vector_transfer_cycles=100,
            decode_base_cycles=10,
            decode_cycles_per_flow=1,
        )
        assert false_path_decode_cycles(5, timing=timing) == 115

    def test_explicit_constants_win(self):
        assert (
            false_path_decode_cycles(1, base_cycles=0, cycles_per_flow=0)
            == DEFAULT_TIMING.state_vector_transfer_cycles
        )

    def test_negative_flows_rejected(self):
        with pytest.raises(ValueError):
            false_path_decode_cycles(-1)


class TestFlowTable:
    def test_assign_and_lookup(self):
        table = FlowTable()
        table.assign(0, 10)
        table.assign(0, 11)
        table.assign(1, 12)
        assert table.units_of(0) == (10, 11)
        assert table.units_of(1) == (12,)
        assert table.flows() == (0, 1)
        assert len(table) == 2

    def test_move_units_on_convergence(self):
        table = FlowTable()
        table.assign(0, 10)
        table.assign(1, 11)
        table.move_units(source_flow=1, target_flow=0)
        assert table.units_of(0) == (10, 11)
        assert table.units_of(1) == ()

    def test_fiv_marks_flows_without_true_units(self):
        table = FlowTable()
        table.assign(0, 10)
        table.assign(1, 11)
        table.assign(2, 12)
        table.assign(2, 13)
        false_flows, transfer = table.flow_invalidation_vector({10, 13})
        assert false_flows == frozenset({1})
        assert transfer == DEFAULT_TIMING.fiv_transfer_cycles

    def test_fiv_empty_truth_kills_all(self):
        table = FlowTable()
        table.assign(0, 10)
        false_flows, _ = table.flow_invalidation_vector(set())
        assert false_flows == frozenset({0})

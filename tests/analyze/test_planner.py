"""Constructive capacity planner: budgets hold by construction, the
emitted placement deploys, and violations are reported not raised."""

import pytest

from repro.analyze.planner import plan_capacity
from repro.ap.device import Board
from repro.ap.geometry import BoardGeometry
from repro.automata.analysis import AutomatonAnalysis
from repro.core.config import PAPConfig
from repro.core.deployment import deploy_plan
from repro.core.pap import ParallelAutomataProcessor
from repro.regex.ruleset import compile_ruleset
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

TINY = BoardGeometry(ranks=1, devices_per_rank=2, stes_per_half_core=64)


@pytest.fixture
def automaton():
    compiled, _ = compile_ruleset(["abc", "xyz", "q[rs]t"])
    return compiled


class TestPlanConstruction:
    def test_bins_respect_both_budgets(self, automaton):
        plan = plan_capacity(automaton, geometry=TINY)
        assert plan.feasible
        capacity = TINY.stes_per_half_core
        for bin_ in plan.bins:
            assert 0 < bin_.states <= capacity
            assert bin_.edges <= capacity  # routing_edge_factor=1.0
            assert 0.0 < bin_.utilization(capacity) <= 1.0

    def test_every_component_assigned_exactly_once(self, automaton):
        analysis = AutomatonAnalysis(automaton)
        plan = plan_capacity(automaton, geometry=TINY, analysis=analysis)
        components = analysis.connected_components()
        assert set(plan.assignment) == set(range(len(components)))
        binned = sorted(
            cid for bin_ in plan.bins for cid in bin_.components
        )
        assert binned == sorted(plan.assignment)
        assert plan.total_states == len(automaton)

    def test_ffd_never_beats_capacity(self, automaton):
        # The packing is at least as tight as one component per bin.
        analysis = AutomatonAnalysis(automaton)
        plan = plan_capacity(automaton, geometry=TINY, analysis=analysis)
        assert plan.half_cores <= len(analysis.connected_components())
        assert 0.0 < plan.utilization() <= 1.0

    def test_segments_match_placement_footprint(self, automaton):
        from repro.ap.placement import segments_available

        plan = plan_capacity(automaton, geometry=TINY)
        assert plan.segments == segments_available(TINY, plan.half_cores)

    def test_to_dict_is_artifact_shaped(self, automaton):
        import json

        plan = plan_capacity(automaton, geometry=TINY)
        payload = plan.to_dict()
        assert payload["feasible"] is True
        assert payload["half_cores"] == plan.half_cores
        assert len(payload["bins"]) == len(plan.bins)
        json.dumps(payload)


class TestDeploymentSeam:
    def test_planned_placement_deploys(self, automaton):
        plan = plan_capacity(automaton, geometry=TINY)
        placement = plan.to_placement()
        assert sum(placement.loads) == len(automaton)
        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=TINY)
        )
        pap_plan = pap.plan((b"abc xyz qrt " * 64)[:512])
        board = Board(geometry=TINY)
        deployment = deploy_plan(
            board, automaton, pap_plan, placement=placement
        )
        assert len(deployment.segments) == len(pap_plan.segments)
        for segment in deployment.segments:
            assert segment.placement is placement


class TestViolations:
    def test_oversize_component_ap201(self, automaton):
        cramped = BoardGeometry(
            ranks=1, devices_per_rank=1, stes_per_half_core=2
        )
        plan = plan_capacity(automaton, geometry=cramped)
        assert not plan.feasible
        assert "AP201" in {v.code for v in plan.violations}

    def test_board_overflow_ap202(self):
        # 3 components of 3 states on a 2-half-core board of capacity 3:
        # each fills a bin, the replica needs one bin too many.
        from repro.automata.anml import Automaton, StartKind
        from repro.automata.charclass import CharClass

        automaton = Automaton("wide")
        for _ in range(3):
            head = automaton.add_state(
                CharClass.single("a"), start=StartKind.START_OF_DATA
            )
            mid = automaton.add_state(CharClass.single("b"))
            tail = automaton.add_state(CharClass.single("c"))
            automaton.add_edge(head, mid)
            automaton.add_edge(mid, tail)
        geometry = BoardGeometry(
            ranks=1, devices_per_rank=1, stes_per_half_core=3
        )
        plan = plan_capacity(automaton, geometry=geometry)
        codes = {v.code for v in plan.violations}
        assert "AP202" in codes
        assert "AP201" not in codes
        assert plan.segments == 0

    def test_routing_pressure_ap207(self):
        from repro.automata.anml import Automaton, StartKind
        from repro.automata.charclass import CharClass

        automaton = Automaton("dense")
        sids = [
            automaton.add_state(
                CharClass.single("a"), start=StartKind.START_OF_DATA
            )
            for _ in range(4)
        ]
        for src in sids:
            for dst in sids:
                if src != dst:
                    automaton.add_edge(src, dst)
        geometry = BoardGeometry(
            ranks=1, devices_per_rank=1, stes_per_half_core=4
        )
        plan = plan_capacity(
            automaton, geometry=geometry, routing_edge_factor=2.0
        )
        assert "AP207" in {v.code for v in plan.violations}

    def test_counter_and_boolean_budgets(self, automaton):
        plan = plan_capacity(
            automaton,
            geometry=TINY,
            counters_used=100_000,
            booleans_used=100_000,
        )
        codes = {v.code for v in plan.violations}
        assert {"AP205", "AP206"} <= codes
        assert plan.counters_used == 100_000
        assert plan.counters_used > plan.counters_budget

    def test_violations_render_as_diagnostics(self, automaton):
        from repro.analyze.planner import iter_plan_diagnostics

        cramped = BoardGeometry(
            ranks=1, devices_per_rank=1, stes_per_half_core=2
        )
        plan = plan_capacity(automaton, geometry=cramped)
        lines = list(iter_plan_diagnostics(plan))
        assert lines
        assert all(line.split(":")[0].startswith("AP2") for line in lines)


class TestSuiteAcceptance:
    """ISSUE acceptance bar: constructed plans pass the AP201-AP208
    budgets by construction on the entire benchmark suite."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_suite_plans_are_feasible(self, name):
        instance = build_benchmark(name, scale=0.03, seed=7)
        plan = plan_capacity(instance.automaton)
        assert plan.feasible, [v.code for v in plan.violations]
        capacity = plan.geometry.stes_per_half_core
        for bin_ in plan.bins:
            assert bin_.states <= capacity
            assert bin_.edges <= capacity
        assert plan.reporting_used <= plan.reporting_budget
        assert plan.segments >= 1

"""Suite reports, the baseline comparison gate, renderers, and the
``repro analyze`` CLI wiring."""

import json

import pytest

from repro.analyze.render import (
    CODE_MISSING_BASELINE,
    CODE_OUT_OF_TOLERANCE,
    CODE_PREDICTION,
    analysis_diagnostics,
    render_analysis_sarif,
    render_analysis_text,
)
from repro.analyze.report import (
    analyze_suite,
    analyze_workload,
    compare_to_baseline,
    load_baseline,
)
from repro.cli import main
from repro.errors import ConfigurationError
from repro.workloads.suite import build_benchmark


@pytest.fixture(scope="module")
def report():
    return analyze_suite(
        ("ExactMatch", "Ranges05"),
        label="test",
        scale=0.05,
        seed=7,
        trace_bytes=8192,
        modeled_bytes=None,
    )


def baseline_from(report, *, skew=1.0, drop=()):
    """A synthetic BENCH payload that matches ``report`` exactly (or
    with every actual skewed by ``skew``)."""
    benchmarks = {}
    for workload in report.workloads:
        if workload.name in drop:
            continue
        benchmarks[workload.key] = {
            "cycles": {
                "enumeration_cycles": int(
                    workload.prediction.enumeration_cycles * skew
                ),
                "speedup": workload.prediction.speedup,
            }
        }
    return {"benchmarks": benchmarks}


class TestWorkloadAnalysis:
    def test_key_matches_bench_artifact_convention(self):
        bench = build_benchmark("ExactMatch", scale=0.05, seed=7)
        row = analyze_workload(bench, ranks=1, trace_bytes=8192)
        assert row.key == "ExactMatch@r1"
        payload = row.to_dict()
        assert payload["name"] == "ExactMatch"
        assert payload["prediction"]["predicted_cycles"] > 0
        assert payload["plan"]["feasible"] is True

    def test_report_serializes(self, report):
        payload = report.to_dict()
        assert payload["label"] == "test"
        assert payload["summary"]["workloads"] == 2
        assert set(payload["workloads"]) == {
            "ExactMatch@r1",
            "Ranges05@r1",
        }
        round_tripped = json.loads(report.to_json())
        assert round_tripped["parameters"]["scale"] == 0.05

    def test_workload_lookup(self, report):
        assert report.workload("ExactMatch").name == "ExactMatch"
        with pytest.raises(KeyError):
            report.workload("NoSuch")


class TestCompareToBaseline:
    def test_exact_baseline_passes(self, report):
        compared = compare_to_baseline(report, baseline_from(report))
        assert compared.compared
        assert compared.passed
        assert compared.max_abs_error == 0.0
        assert len(compared.comparison) == 2
        assert not compared.missing_from_baseline

    def test_skewed_baseline_fails(self, report):
        compared = compare_to_baseline(
            report, baseline_from(report, skew=2.0)
        )
        assert not compared.passed
        assert all(not row.passed for row in compared.comparison)
        # Predictions are half the skewed actuals: error -50%.
        assert compared.max_abs_error == pytest.approx(0.5)

    def test_missing_workload_fails_the_gate(self, report):
        compared = compare_to_baseline(
            report, baseline_from(report, drop=("Ranges05",))
        )
        assert not compared.passed
        assert compared.missing_from_baseline == ("Ranges05@r1",)
        assert len(compared.comparison) == 1

    def test_tolerance_must_be_positive(self, report):
        with pytest.raises(ConfigurationError, match="tolerance"):
            compare_to_baseline(report, baseline_from(report), tolerance=0)

    def test_input_report_unchanged(self, report):
        compare_to_baseline(report, baseline_from(report))
        assert not report.compared

    def test_load_baseline_rejects_non_artifacts(self, tmp_path):
        path = tmp_path / "notbench.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ConfigurationError, match="benchmarks"):
            load_baseline(path)


class TestRenderers:
    def test_text_lists_every_workload(self, report):
        text = render_analysis_text(report)
        assert "ExactMatch" in text and "Ranges05" in text
        assert "comparison" not in text  # no baseline attached

    def test_text_shows_gate_verdict(self, report):
        passing = compare_to_baseline(report, baseline_from(report))
        assert "PASS" in render_analysis_text(passing)
        failing = compare_to_baseline(
            report, baseline_from(report, skew=2.0)
        )
        text = render_analysis_text(failing)
        assert "FAIL" in text and "OUT OF TOLERANCE" in text

    def test_sarif_is_valid_and_carries_predictions(self, report):
        log = json.loads(render_analysis_sarif(report))
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        codes = {result["ruleId"] for result in run["results"]}
        assert CODE_PREDICTION in codes

    def test_diagnostics_cover_the_finding_kinds(self, report):
        clean = analysis_diagnostics(report)
        assert {d.code for d in clean} == {CODE_PREDICTION}

        failing = compare_to_baseline(
            report, baseline_from(report, skew=2.0, drop=("Ranges05",))
        )
        codes = {d.code for d in analysis_diagnostics(failing)}
        assert CODE_OUT_OF_TOLERANCE in codes
        assert CODE_MISSING_BASELINE in codes


class TestAnalyzeCli:
    ARGS = [
        "analyze",
        "ExactMatch",
        "--scale",
        "0.05",
        "--seed",
        "7",
        "--trace-bytes",
        "8192",
    ]

    def test_text_output(self, capsys):
        exit_code = main(self.ARGS)
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "ExactMatch" in out

    def test_json_output_and_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        exit_code = main(
            [*self.ARGS, "--format", "json", "--out", str(out_path)]
        )
        assert exit_code == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_path.read_text())
        assert (
            stdout_payload["workloads"].keys()
            == file_payload["workloads"].keys()
        )

    def test_sarif_output(self, capsys):
        exit_code = main([*self.ARGS, "--format", "sarif"])
        assert exit_code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"]

    def test_baseline_gate_failure_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": {
                        "ExactMatch@r1": {
                            "cycles": {
                                "enumeration_cycles": 1,
                                "speedup": 1.0,
                            }
                        }
                    }
                }
            )
        )
        exit_code = main([*self.ARGS, "--baseline", str(path)])
        capsys.readouterr()
        assert exit_code == 1

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        exit_code = main([*self.ARGS, "--baseline", str(path)])
        assert exit_code == 2
        assert "not a BENCH artifact" in capsys.readouterr().err

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "NoSuchBenchmark"])

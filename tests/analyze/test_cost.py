"""Cost-model tests: the committed-artifact gate plus live
prediction-vs-simulation checks on small workloads."""

import json
from pathlib import Path

import pytest

from repro.analyze.cost import WorkloadPrediction, predict_workload
from repro.analyze.report import DEFAULT_TOLERANCE, analyze_workload
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.sim.runner import run_benchmark
from repro.workloads.suite import build_benchmark

REPO_ROOT = Path(__file__).resolve().parents[2]
SEED_REPORT = REPO_ROOT / "benchmarks" / "analysis" / "ANALYZE_seed.json"
SEED_BASELINE = REPO_ROOT / "BENCH_seed.json"


class TestCommittedArtifact:
    """The committed ANALYZE_seed.json must itself satisfy the gate it
    documents: every BENCH_seed workload predicted within tolerance."""

    @pytest.fixture(scope="class")
    def payload(self):
        return json.loads(SEED_REPORT.read_text())

    def test_artifact_exists_and_passed(self, payload):
        comparison = payload["comparison"]
        assert comparison["passed"] is True
        assert comparison["missing_from_baseline"] == []

    def test_every_baseline_workload_compared(self, payload):
        baseline = json.loads(SEED_BASELINE.read_text())
        compared = {row["key"] for row in payload["comparison"]["rows"]}
        assert compared == set(baseline["benchmarks"])

    def test_max_error_within_documented_tolerance(self, payload):
        comparison = payload["comparison"]
        assert comparison["tolerance"] == DEFAULT_TOLERANCE
        assert comparison["max_abs_error"] <= DEFAULT_TOLERANCE
        for row in comparison["rows"]:
            assert row["passed"] is True
            assert abs(row["error"]) <= DEFAULT_TOLERANCE

    def test_no_infeasible_capacity_plans(self, payload):
        assert payload["summary"]["infeasible"] == []
        for record in payload["workloads"].values():
            assert record["plan"]["feasible"] is True


class TestLivePrediction:
    """Model vs simulator on fast workloads, end to end."""

    @pytest.mark.parametrize("name", ["ExactMatch", "Ranges05"])
    def test_prediction_tracks_simulator(self, name):
        bench = build_benchmark(name, scale=0.05, seed=7)
        row = analyze_workload(bench, ranks=1, trace_bytes=16384, trace_seed=8)
        run = run_benchmark(bench, ranks=1, trace_bytes=16384, trace_seed=8)
        predicted = row.prediction.predicted_cycles
        actual = run.pap.total_cycles
        assert actual > 0
        assert abs(predicted - actual) / actual <= DEFAULT_TOLERANCE

    def test_speedup_prediction_is_sane(self):
        bench = build_benchmark("ExactMatch", scale=0.05, seed=7)
        row = analyze_workload(bench, ranks=1, trace_bytes=16384, trace_seed=8)
        prediction = row.prediction
        assert 1.0 <= prediction.speedup <= prediction.ideal_speedup
        assert 0.0 < prediction.parallel_efficiency <= 1.0


class TestPredictWorkload:
    def _automaton(self):
        automaton = Automaton("tiny")
        prev = automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        for symbol in "bc":
            nxt = automaton.add_state(CharClass.single(symbol))
            automaton.add_edge(prev, nxt)
            prev = nxt
        return automaton

    def test_empty_input_predicts_zero(self):
        prediction = predict_workload(self._automaton(), b"", num_segments=4)
        assert prediction.num_segments == 0
        assert prediction.enumeration_cycles == 0
        assert prediction.predicted_cycles == 0
        assert prediction.speedup == 1.0

    def test_single_segment_is_sequential(self):
        data = b"abcabc" * 32
        prediction = predict_workload(self._automaton(), data, num_segments=1)
        assert prediction.num_segments == 1
        assert prediction.segments[0].finish_cycles == len(data)
        assert prediction.segments[0].flow_count == 0
        # One segment means no enumeration anywhere: cost is the input
        # plus report drain, and the golden path cannot beat it.
        assert prediction.enumeration_cycles >= len(data)
        assert not prediction.golden_fallback or (
            prediction.golden_cycles == prediction.enumeration_cycles
        )

    def test_no_trials_is_pessimistic(self):
        data = b"abcabc" * 64
        with_trials = predict_workload(
            self._automaton(), data, num_segments=4, use_trials=True
        )
        without = predict_workload(
            self._automaton(), data, num_segments=4, use_trials=False
        )
        assert without.trials == 0
        assert without.enumeration_cycles >= with_trials.enumeration_cycles

    def test_to_dict_round_trips_key_fields(self):
        data = b"abcabc" * 32
        prediction = predict_workload(self._automaton(), data, num_segments=2)
        payload = prediction.to_dict()
        assert payload["predicted_cycles"] == prediction.predicted_cycles
        assert payload["num_segments"] == prediction.num_segments
        assert len(payload["segments"]) == prediction.num_segments
        json.dumps(payload)  # artifact-safe


class TestPredictionProperties:
    def _prediction(self, enumeration, golden, baseline, segments=4):
        return WorkloadPrediction(
            name="x",
            input_bytes=1024,
            num_segments=segments,
            segments=(),
            enumeration_cycles=enumeration,
            golden_cycles=golden,
            baseline_cycles=baseline,
            raw_events=0,
            event_rate=0.0,
            trials=0,
        )

    def test_golden_fallback_picks_the_minimum(self):
        prediction = self._prediction(2000, 1000, 4000)
        assert prediction.golden_fallback
        assert prediction.predicted_cycles == 1000
        assert prediction.speedup == pytest.approx(4.0)

    def test_enumeration_wins_when_cheaper(self):
        prediction = self._prediction(500, 1000, 4000)
        assert not prediction.golden_fallback
        assert prediction.predicted_cycles == 500
        assert prediction.speedup == pytest.approx(8.0)
        assert prediction.parallel_efficiency == pytest.approx(2.0)

    def test_zero_cycles_degenerate(self):
        prediction = self._prediction(0, 0, 0, segments=0)
        assert prediction.speedup == 1.0
        assert prediction.ideal_speedup == 1

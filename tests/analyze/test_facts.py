"""Unit tests for the fact-extraction pass (profiles, divergence,
deactivation protocol offsets)."""

import pytest

from repro.analyze.facts import (
    TraceProfile,
    deactivation_check_offsets,
    divergence_depth,
    gather_facts,
    label_hit_probabilities,
    profile_trace,
    uniform_profile,
)
from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.automata.execution import CompiledAutomaton
from repro.errors import ConfigurationError


def chain(labels, *, loop_back=False, name="chain"):
    """START_OF_DATA head plus a linear tail; optional tail->second
    cycle to make the subgraph recurrent."""
    automaton = Automaton(name)
    sids = [
        automaton.add_state(
            CharClass.full() if label == "*" else CharClass.single(label),
            start=StartKind.START_OF_DATA if index == 0 else StartKind.NONE,
        )
        for index, label in enumerate(labels)
    ]
    for src, dst in zip(sids, sids[1:]):
        automaton.add_edge(src, dst)
    if loop_back and len(sids) >= 2:
        automaton.add_edge(sids[-1], sids[1])
    return automaton, sids


class TestProfiles:
    def test_uniform_profile_shape(self):
        profile = uniform_profile()
        assert len(profile.symbol_frequency) == 256
        assert sum(profile.symbol_frequency) == pytest.approx(1.0)
        assert profile.event_rate == 0.0
        assert profile.occupancy == {}
        assert profile.window == 0

    def test_profile_requires_full_histogram(self):
        with pytest.raises(ConfigurationError, match="per byte"):
            TraceProfile(
                window=0,
                event_rate=0.0,
                symbol_frequency=(1.0,),
                occupancy={},
            )

    def test_profile_trace_measures_frequency_and_rate(self):
        automaton = Automaton("always")
        automaton.add_state(
            CharClass.single("a"),
            start=StartKind.ALL_INPUT,
            reporting=True,
        )
        compiled = CompiledAutomaton(automaton)
        data = b"ab" * 64
        profile = profile_trace(compiled, data)
        assert profile.window == len(data)
        assert profile.symbol_frequency[ord("a")] == pytest.approx(0.5)
        assert profile.symbol_frequency[ord("b")] == pytest.approx(0.5)
        assert sum(profile.symbol_frequency) == pytest.approx(1.0)
        # The ALL_INPUT reporter fires on every 'a': half the symbols.
        assert profile.event_rate == pytest.approx(0.5)
        # The matching state shows up in the sampled occupancy.
        assert any(value > 0 for value in profile.occupancy.values())

    def test_profile_trace_empty_input(self):
        automaton = Automaton("empty")
        automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        profile = profile_trace(CompiledAutomaton(automaton), b"")
        assert profile.window == 0
        assert profile.event_rate == 0.0
        assert sum(profile.symbol_frequency) == 0.0

    def test_profile_trace_rejects_bad_stride(self):
        automaton = Automaton("s")
        automaton.add_state(
            CharClass.single("a"), start=StartKind.START_OF_DATA
        )
        with pytest.raises(ConfigurationError, match="stride"):
            profile_trace(CompiledAutomaton(automaton), b"a", stride=0)

    def test_label_hit_probabilities_follow_histogram(self):
        automaton, _ = chain("ab")
        profile = uniform_profile()
        probs = label_hit_probabilities(automaton, profile)
        assert probs[0] == pytest.approx(1 / 256)
        automaton2 = Automaton("full")
        automaton2.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA
        )
        [prob] = label_hit_probabilities(automaton2, profile)
        assert prob == pytest.approx(1.0)


class TestDivergenceDepth:
    def test_acyclic_chain_resolves_at_path_length(self):
        automaton, sids = chain("***")
        successors = tuple(
            automaton.successors(s) for s in range(len(automaton))
        )
        hit = (1.0,) * len(automaton)
        resolved, depth = divergence_depth(
            frozenset({sids[0]}), successors, frozenset(), hit
        )
        assert resolved
        assert depth == len(sids)

    def test_high_probability_cycle_stays_unresolved(self):
        automaton, sids = chain("***", loop_back=True)
        successors = tuple(
            automaton.successors(s) for s in range(len(automaton))
        )
        hit = (1.0,) * len(automaton)
        resolved, depth = divergence_depth(
            frozenset({sids[1]}), successors, frozenset(), hit
        )
        assert not resolved
        assert depth == 0

    def test_low_hit_probability_kills_a_cycle(self):
        # Same recurrent shape, but each step only matches 1/256 of the
        # profiled symbols: divergence mass decays below epsilon fast.
        automaton, sids = chain("aaa", loop_back=True)
        successors = tuple(
            automaton.successors(s) for s in range(len(automaton))
        )
        hit = (1 / 256,) * len(automaton)
        resolved, depth = divergence_depth(
            frozenset({sids[1]}), successors, frozenset(), hit
        )
        assert resolved
        assert depth >= 1

    def test_all_members_path_independent(self):
        automaton, sids = chain("ab")
        successors = tuple(
            automaton.successors(s) for s in range(len(automaton))
        )
        resolved, depth = divergence_depth(
            frozenset(sids),
            successors,
            frozenset(sids),
            (1.0,) * len(automaton),
        )
        assert (resolved, depth) == (True, 1)


class TestDeactivationCheckOffsets:
    def test_short_segment_uses_early_checks(self):
        assert deactivation_check_offsets(40) == (16, 32, 40)

    def test_long_segment_switches_to_slice_boundaries(self):
        offsets = deactivation_check_offsets(600)
        assert offsets[0] == 16
        assert 256 in offsets
        assert 512 in offsets  # the first post-slice-1 check
        assert offsets[-1] == 600
        assert list(offsets) == sorted(set(offsets))

    def test_tiny_segment_checks_once_at_end(self):
        assert deactivation_check_offsets(10) == (10,)


class TestGatherFacts:
    def test_facts_cover_both_boundary_variants(self):
        automaton, _ = chain("abcd")
        data = b"abcdabcd" * 16
        facts = gather_facts(automaton, data, num_segments=4)
        symbol = facts.partition_symbol
        assert (symbol, False) in facts.boundaries
        assert (symbol, True) in facts.boundaries
        assert facts.num_states == len(automaton)
        assert len(facts.components) == facts.num_components
        bound = facts.boundary(symbol, at_offset_zero=False)
        assert bound.unit_bound >= bound.unit_count
        assert bound.flow_count <= bound.unit_count or bound.unit_count == 0

    def test_acyclic_facts_report_convergence(self):
        automaton, _ = chain("abcd")
        data = b"abcdabcd" * 16
        facts = gather_facts(automaton, data, num_segments=2)
        for component in facts.components:
            assert not component.recurrent

"""Tests for ASCII chart rendering."""

from repro.sim.plots import bar_chart, grouped_bar_chart, histogram


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart([("half", 5.0), ("full", 10.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart([("a", 1.0), ("longer", 2.0)])
        lines = text.splitlines()
        assert lines[0].index("1.00") == lines[1].index("2.00")

    def test_reference_marker(self):
        text = bar_chart([("x", 4.0)], reference=8.0, width=8)
        assert "|" in text
        assert "ideal = 8" in text
        assert text.splitlines()[0].count("#") == 4

    def test_values_clip_at_reference(self):
        text = bar_chart([("x", 20.0)], reference=10.0, width=10)
        assert text.splitlines()[0].count("#") == 10

    def test_log_scale_compresses(self):
        linear = bar_chart([("a", 1.0), ("b", 1000.0)], width=30)
        logged = bar_chart(
            [("a", 1.0), ("b", 1000.0)], width=30, log_scale=True
        )
        small_linear = linear.splitlines()[0].count("#")
        small_logged = logged.splitlines()[0].count("#")
        assert small_logged > small_linear
        assert "(log scale)" in logged

    def test_zero_and_negative_safe(self):
        text = bar_chart([("zero", 0.0)])
        assert "#" not in text.splitlines()[0]

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_unit_suffix(self):
        assert "%" in bar_chart([("x", 3.0)], unit="%")


class TestGroupedBarChart:
    def test_groups_and_series(self):
        text = grouped_bar_chart(
            [("bench", [100.0, 10.0, 1.0])],
            ["range", "cc", "active"],
        )
        assert "bench [range]" in text
        assert "bench [active]" in text

    def test_empty(self):
        assert grouped_bar_chart([], ["a"]) == "(no data)"


class TestHistogram:
    def test_bins_cover_values(self):
        import re

        text = histogram([1.0, 2.0, 2.5, 9.0], bins=4)
        assert text.count("\n") == 3
        counts = [
            int(re.search(r"\)\s+(\d+)", line).group(1))
            for line in text.splitlines()
        ]
        assert sum(counts) == 4

    def test_degenerate_single_value(self):
        text = histogram([5.0, 5.0])
        assert "x2" in text

    def test_empty(self):
        assert histogram([]) == "(no data)"

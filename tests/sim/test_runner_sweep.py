"""Tests for the experiment harness (runner, sweeps, report rendering)."""

import json

import pytest

from repro.errors import ExecutionError
from repro.sim.report import (
    format_figure3,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11,
    format_figure12,
    format_table1,
)
from repro.sim.runner import geometric_mean, run_benchmark
from repro.sim.sweep import ablation_sweep, context_switch_sweep, tdm_slice_sweep
from repro.workloads.suite import build_benchmark
from repro.core.ranges import range_profile
from repro.automata.analysis import AutomatonAnalysis


@pytest.fixture(scope="module")
def bench():
    return build_benchmark("Bro217", scale=0.05, seed=0)


@pytest.fixture(scope="module")
def run(bench):
    return run_benchmark(bench, ranks=1, trace_bytes=8_192)


class TestRunBenchmark:
    def test_reports_verified(self, run):
        assert run.reports_match

    def test_speedup_bounds(self, run):
        assert 0.99 <= run.speedup <= run.ideal_speedup * 1.02 + 0.5

    def test_ideal_is_segment_count(self, run):
        assert run.ideal_speedup == run.pap.num_segments

    def test_modeled_bytes_scales_overheads(self, bench):
        raw = run_benchmark(bench, ranks=1, trace_bytes=8_192)
        scaled = run_benchmark(
            bench, ranks=1, trace_bytes=8_192, modeled_bytes=1_048_576
        )
        # Scaled per-segment constants can only help.
        assert scaled.speedup >= raw.speedup * 0.99

    def test_extra_transitions_at_least_baseline(self, run):
        assert run.extra_transitions_per_symbol >= 0.99

    def test_ranks_change_segments(self, bench):
        four = run_benchmark(bench, ranks=4, trace_bytes=8_192)
        assert four.ideal_speedup == 64

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty_raises(self):
        # A silent 0.0 would poison any baseline comparison.
        with pytest.raises(ValueError, match="empty"):
            geometric_mean([])

    def test_to_dict_round_trips_through_json(self, run):
        payload = run.to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded == payload
        assert payload["name"] == "Bro217"
        cycles = payload["cycles"]
        assert cycles["baseline_cycles"] == run.baseline.total_cycles
        assert cycles["pap_cycles"] == run.pap.total_cycles
        assert cycles["speedup"] == run.speedup
        assert cycles["reports_match"] is True

    def test_to_dict_is_deterministic(self, bench):
        first = run_benchmark(bench, ranks=1, trace_bytes=8_192)
        second = run_benchmark(bench, ranks=1, trace_bytes=8_192)
        assert first.to_dict() == second.to_dict()


class TestSweeps:
    def test_context_switch_monotone(self, bench):
        sweep = context_switch_sweep(
            bench, factors=(1, 4), trace_bytes=8_192
        )
        assert sweep[4].speedup <= sweep[1].speedup + 1e-9

    def test_ablations_preserve_reports(self, bench):
        sweep = ablation_sweep(
            bench,
            trace_bytes=4_096,
            toggles=("use_asg", "use_deactivation"),
        )
        assert set(sweep) == {"full", "no-asg", "no-deactivation"}
        for run in sweep.values():
            assert run.reports_match

    def test_tdm_slice_sweep_keys(self, bench):
        sweep = tdm_slice_sweep(
            bench, slice_sizes=(32, 256), trace_bytes=4_096
        )
        assert set(sweep) == {32, 256}
        assert all(r.reports_match for r in sweep.values())


class TestReportFormatting:
    def test_table1_renders(self, bench):
        analysis = AutomatonAnalysis(bench.automaton)
        text = format_table1(
            [(bench, bench.automaton.num_states, 3, 7)]
        )
        assert "Bro217" in text
        assert "Paper:States" in text
        del analysis

    def test_figure3_renders(self, bench):
        profile = range_profile(AutomatonAnalysis(bench.automaton))
        text = format_figure3(
            [("Bro217", bench.automaton.num_states, profile)]
        )
        assert "RangeAvg" in text

    def test_figure8_renders_with_geomean(self, run):
        text = format_figure8([run], label="test")
        assert "geomean" in text
        assert "Bro217" in text

    def test_figure9_through_12_render(self, run):
        for formatter in (
            format_figure9,
            format_figure10,
            format_figure11,
            format_figure12,
        ):
            text = formatter([run])
            assert "Bro217" in text


class TestVerification:
    def test_divergence_raises(self, bench, monkeypatch):
        """A baseline/PAP mismatch must abort the measurement."""
        from dataclasses import replace as dc_replace

        from repro.automata.execution import Report
        from repro.sim import runner as runner_module

        real = runner_module.run_sequential

        def corrupted(*args, **kwargs):
            result = real(*args, **kwargs)
            poisoned = result.reports | {
                Report(offset=10**9, element=0, code=0)
            }
            return dc_replace(result, reports=frozenset(poisoned))

        monkeypatch.setattr(runner_module, "run_sequential", corrupted)
        with pytest.raises(ExecutionError, match="diverged"):
            run_benchmark(bench, ranks=1, trace_bytes=2_048)

    def test_verify_reports_flag_suppresses_raise(self, bench, monkeypatch):
        from dataclasses import replace as dc_replace

        from repro.automata.execution import Report
        from repro.sim import runner as runner_module

        real = runner_module.run_sequential

        def corrupted(*args, **kwargs):
            result = real(*args, **kwargs)
            poisoned = result.reports | {
                Report(offset=10**9, element=0, code=0)
            }
            return dc_replace(result, reports=frozenset(poisoned))

        monkeypatch.setattr(runner_module, "run_sequential", corrupted)
        run = run_benchmark(
            bench, ranks=1, trace_bytes=2_048, verify_reports=False
        )
        assert not run.reports_match

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Bro217"])
        assert args.benchmark == "Bro217"
        assert args.ranks == 1
        assert args.model_input == "1MB"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NotABenchmark"])

    def test_match_requires_pattern(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "file.bin"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Dotstar03" in out and "ClamAV" in out

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "verified OK" in out

    def test_match(self, capsys, tmp_path):
        sample = tmp_path / "sample.bin"
        sample.write_bytes(b"xx needle xx needle")
        code = main(
            ["match", str(sample), "--pattern", "needle", "--show", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 matches" in out
        assert "rule 0 at offset" in out

    def test_speculate(self, capsys):
        code = main(
            [
                "speculate",
                "ExactMatch",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold" in out and "profile" in out and "OK" in out

    def test_table1_small_scale(self, capsys):
        # Uses the tiniest scale to keep CI fast.
        code = main(["table1", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Paper:States" in out

    def test_fig3_small_scale(self, capsys):
        code = main(["fig3", "--scale", "0.02"])
        assert code == 0
        assert "RangeAvg" in capsys.readouterr().out

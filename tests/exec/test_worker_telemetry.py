"""Worker-side telemetry capture and merge (repro.obs.remote).

Two contracts under test.  First, the merge is loss-free and
order-safe: every record a worker ships lands in the parent tracer
exactly once, with pid/parent-span lineage, whatever order batches
arrive in — including under injected faults and retries, where only
successful attempts ship batches.  Second, telemetry never perturbs
the simulation: cycle fingerprints and phase totals are identical
whichever backend ran the segments, captured or not.
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ap.geometry import BoardGeometry
from repro.automata.random_gen import random_ruleset_automaton
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.exec import FaultPlan, ProcessPoolBackend, RetryPolicy
from repro.exec.worker import RunPayload, run_segment_task
from repro.obs import Tracer, verify_phase_totals
from repro.obs.remote import (
    ARG_PARENT_SPAN,
    ARG_PID,
    BATCH_MARKER,
    RecordingObserver,
    merge_batch,
    worker_track,
)


def board(half_cores: int) -> BoardGeometry:
    return BoardGeometry(ranks=1, devices_per_rank=max(1, half_cores // 2))


def trace(seed=5, size=300):
    return bytes(random.Random(seed).choice(b"abcdef") for _ in range(size))


def small_pap(seed=5, patterns=4, observer=None):
    return ParallelAutomataProcessor(
        random_ruleset_automaton(seed, num_patterns=patterns),
        config=PAPConfig(geometry=board(4)),
        observer=observer,
    )


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


def make_batch(rng: random.Random, pid: int):
    """Drive a real RecordingObserver and re-stamp its pid."""
    recorder = RecordingObserver()
    for i in range(rng.randrange(1, 6)):
        span = recorder.begin_span(f"work{i}", track="seg0", cycle=i * 10)
        recorder.instant(f"mark{i}", track="seg0", cycle=i * 10 + 1)
        recorder.counter("flows", rng.randrange(8), track="seg0")
        recorder.metrics.counter("events.pushed").inc(rng.randrange(4))
        recorder.end_span(span, cycle=i * 10 + 5)
    batch = recorder.to_batch(
        compile_hit=rng.random() < 0.5, compile_wall_ns=rng.randrange(1000)
    )
    return dataclasses.replace(batch, pid=pid)


class TestMergeProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000), order_seed=st.integers(0, 10_000))
    def test_merge_is_loss_free_and_order_safe(self, seed, order_seed):
        rng = random.Random(seed)
        batches = [
            make_batch(rng, pid=1000 + i) for i in range(rng.randrange(1, 5))
        ]
        shipped = sum(len(b.events) for b in batches)

        def merged(ordering):
            tracer = Tracer()
            spans = {}
            for batch in ordering:
                spans[batch.pid] = tracer.begin_span(
                    f"dispatch[{batch.pid}]", track="exec"
                )
            for batch in ordering:
                tracer.end_span(spans[batch.pid])
                merge_batch(
                    tracer, batch, span=spans[batch.pid], segment=0
                )
            return tracer

        tracer = merged(batches)
        shuffled = list(batches)
        random.Random(order_seed).shuffle(shuffled)
        other = merged(shuffled)

        worker_events = [
            e for e in tracer.events if e.track.startswith("pid")
        ]
        # Loss-free: every shipped record arrives, plus one batch
        # marker per batch; every record carries full lineage.
        markers = [e for e in worker_events if e.name == BATCH_MARKER]
        assert len(worker_events) == shipped + len(batches)
        assert len(markers) == len(batches)
        for event in worker_events:
            assert event.args[ARG_PID] >= 1000
            assert event.args[ARG_PARENT_SPAN] >= 0
            assert event.track == worker_track(
                event.args[ARG_PID], event.track.split(":", 1)[1]
            )
        assert tracer.metrics.counter("worker.batches").value == len(batches)
        assert tracer.metrics.counter("worker.records").value == shipped

        # Order-safe: arrival order never changes what was merged.
        def payload(t):
            return sorted(
                (e.name, e.track, e.kind, e.cycle_start)
                for e in t.events
                if e.track.startswith("pid")
            )

        assert payload(other) == payload(tracer)
        assert (
            other.metrics.counter("worker.records").value
            == tracer.metrics.counter("worker.records").value
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000))
    def test_rebased_events_land_inside_dispatch_span(self, seed):
        batch = make_batch(random.Random(seed), pid=77)
        tracer = Tracer()
        span = tracer.begin_span("dispatch[0]", track="exec")
        tracer.end_span(span)
        merge_batch(tracer, batch, span=span, segment=0)
        anchor = tracer.events[span].wall_end_ns
        for event in tracer.events:
            # The batch marker is stamped at merge time on the parent
            # clock; only the shipped records themselves are re-based.
            if not event.track.startswith("pid") or (
                event.name == BATCH_MARKER
            ):
                continue
            assert event.wall_start_ns <= anchor
            if event.wall_end_ns is not None:
                assert event.wall_end_ns <= anchor

    def test_merge_none_batch_is_a_no_op(self):
        tracer = Tracer()
        merge_batch(tracer, None, span=0, segment=0)
        assert tracer.events == []


class TestWorkerCapture:
    def test_capture_off_ships_no_batch(self):
        """Un-observed runs ship no extra pickles: without ``capture``
        the task result carries no batch at all."""
        pap = small_pap()
        data = trace(size=120)
        plan = pap.plan(data).segments[0]
        payload = RunPayload(
            automaton=pap.automaton,
            config=pap.config,
            path_independent=pap.path_independent,
            data=data,
        )
        result = run_segment_task("tok-off", payload, plan, None, None)
        assert result.batch is None

    def test_process_run_ships_batches_with_lineage(self, pool):
        tracer = Tracer()
        pap = small_pap(observer=tracer)
        pap.run(trace(), backend=pool)
        dispatches = tracer.metrics.counter("exec.dispatches").value
        markers = [e for e in tracer.events if e.name == BATCH_MARKER]
        assert len(markers) == dispatches
        assert tracer.metrics.counter("worker.batches").value == dispatches
        hits = tracer.metrics.counter("worker.compile_hits").value
        misses = tracer.metrics.counter("worker.compile_misses").value
        assert hits + misses == dispatches
        assert misses >= 1  # every worker compiles at least once
        for event in tracer.events:
            if event.track.startswith("pid"):
                assert event.args[ARG_PID] > 0
                assert event.args[ARG_PARENT_SPAN] >= 0

    def test_worker_cache_hit_skips_recompile(self):
        """Direct worker-entry check of the one-slot cache counters:
        same token -> hit with zero compile wall, new token -> miss."""
        pap = small_pap()
        data = trace(size=120)
        plan = pap.plan(data).segments[0]
        payload = RunPayload(
            automaton=pap.automaton,
            config=pap.config,
            path_independent=pap.path_independent,
            data=data,
        )
        first = run_segment_task(
            "tok-a", payload, plan, None, None, capture=True
        )
        second = run_segment_task(
            "tok-a", payload, plan, None, None, capture=True
        )
        assert first.batch.compile_hit is False
        assert first.batch.compile_wall_ns > 0
        assert second.batch.compile_hit is True
        assert second.batch.compile_wall_ns == 0
        assert second.batch.compile_hits > first.batch.compile_hits


configs = st.builds(
    PAPConfig,
    geometry=st.sampled_from([board(2), board(4), board(8)]),
    tdm_slice_symbols=st.sampled_from([5, 17, 64]),
    use_fiv=st.booleans(),
)

inputs = st.binary(min_size=0, max_size=300).map(
    lambda raw: bytes(b"abcdef"[b % 6] for b in raw)
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), data=inputs, config=configs)
def test_phase_totals_match_across_backends(pool, seed, data, config):
    """Phase attribution is a pure function of the cycle accounting, so
    it must be bit-identical whichever backend ran the segments — and
    pass the exactness proof on both."""
    automaton = random_ruleset_automaton(seed, num_patterns=4)
    serial = ParallelAutomataProcessor(automaton, config=config).run(data)
    parallel = ParallelAutomataProcessor(
        automaton, config=config, observer=Tracer()
    ).run(data, backend=pool)
    assert verify_phase_totals(serial)
    assert verify_phase_totals(parallel)
    assert serial.phases["cycles"] == parallel.phases["cycles"]
    assert serial.phases["per_segment"] == [
        {k: v for k, v in entry.items() if k != "wall_ns"}
        for entry in parallel.phases["per_segment"]
    ]


class TestMergeUnderFaults:
    def test_retried_run_merges_loss_free(self, pool):
        """Crash + transient faults with retries: the run recovers
        bit-exact, and the merged timeline still carries exactly one
        batch per successful dispatch with full lineage (failed
        attempts ship nothing — the task raised)."""
        data = trace(seed=9)
        baseline = small_pap(seed=9).run(data)
        tracer = Tracer()
        result = small_pap(seed=9, observer=tracer).run(
            data,
            backend=pool,
            retry=RetryPolicy(max_retries=3, backoff_base_s=0.0),
            faults=FaultPlan.parse("1:crash,2:transient"),
        )
        assert result.reports == baseline.reports
        assert result.enumeration_cycles == baseline.enumeration_cycles
        health = result.extra["health"]
        assert health["crashes"] >= 1 and health["retries"] >= 2
        markers = [e for e in tracer.events if e.name == BATCH_MARKER]
        segments = {e.args["segment"] for e in markers}
        assert segments == set(range(result.num_segments))
        # One batch per *successful* dispatch; each is parented by a
        # live dispatch span and counted exactly once.
        assert (
            tracer.metrics.counter("worker.batches").value == len(markers)
        )
        for marker in markers:
            parent = tracer.events[marker.args[ARG_PARENT_SPAN]]
            assert parent.name.startswith("dispatch[")
            assert marker.args[ARG_PID] > 0

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 1_000))
    def test_seeded_fault_rates_keep_merge_consistent(self, pool, seed):
        data = trace(seed=seed, size=200)
        tracer = Tracer()
        pap = small_pap(seed=seed, observer=tracer)
        baseline = small_pap(seed=seed).run(data)
        result = pap.run(
            data,
            backend=pool,
            retry=RetryPolicy(max_retries=4, backoff_base_s=0.0),
            faults=FaultPlan.parse(
                f"seed={seed},rate=0.2,kinds=transient"
            ),
        )
        assert result.reports == baseline.reports
        markers = [e for e in tracer.events if e.name == BATCH_MARKER]
        shipped = sum(e.args["records"] for e in markers)
        worker_events = [
            e
            for e in tracer.events
            if e.track.startswith("pid") and e.name != BATCH_MARKER
        ]
        assert len(worker_events) == shipped

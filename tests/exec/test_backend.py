"""Execution-backend tests: the process backend is bit-exact against
the serial backend in the cycle domain, worker crashes surface as
:class:`ExecutionError` instead of hangs, and backend resolution
validates its inputs.

The equivalence tests are the backend's contract (ISSUE 4): every
cycle-domain quantity of a :class:`PAPRunResult` — reports, timing
chains, per-segment metrics — must be identical whichever backend ran
the segments.  One module-scoped pool amortizes the spawn cost across
the whole file.
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ap.geometry import BoardGeometry
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.automata.random_gen import random_automaton, random_ruleset_automaton
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.exec.worker import CRASH_ENV
from repro.obs import Tracer


def board(half_cores: int) -> BoardGeometry:
    return BoardGeometry(ranks=1, devices_per_rank=max(1, half_cores // 2))


def fingerprint(result) -> dict:
    """Every cycle-domain quantity a backend could perturb.

    Wall-clock observability (spans, worker pids) is deliberately
    excluded: it is the only thing allowed to differ between backends.
    """
    return {
        "reports": result.reports,
        "enumeration_cycles": result.enumeration_cycles,
        "golden_cycles": result.golden_cycles,
        "truth_times": result.truth_times,
        "tcpu_cycles": result.tcpu_cycles,
        "svc_overflow": result.svc_overflow,
        "segment_metrics": [
            dataclasses.asdict(r.metrics) for r in result.segment_results
        ],
        "final_matched": [c.final_matched for c in result.composed],
        "true_events": [c.true_events for c in result.composed],
    }


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


configs = st.builds(
    PAPConfig,
    geometry=st.sampled_from([board(2), board(4), board(8)]),
    tdm_slice_symbols=st.sampled_from([5, 17, 64]),
    convergence_period_steps=st.sampled_from([1, 3, 10]),
    use_convergence=st.booleans(),
    use_deactivation=st.booleans(),
    use_fiv=st.booleans(),
)

inputs = st.binary(min_size=0, max_size=300).map(
    lambda raw: bytes(b"abcdef"[b % 6] for b in raw)
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), data=inputs, config=configs)
def test_process_backend_is_bit_exact(pool, seed, data, config):
    """Serial and process backends produce identical PAPRunResults in
    the cycle domain, across random automata, inputs, and configs (both
    FIV dispatch modes are exercised via ``use_fiv``)."""
    automaton = random_ruleset_automaton(seed, num_patterns=4)
    pap = ParallelAutomataProcessor(automaton, config=config)
    serial = pap.run(data, backend=SerialBackend())
    parallel = pap.run(data, backend=pool)
    assert fingerprint(parallel) == fingerprint(serial)


def test_process_backend_corpus(pool):
    """Fixed-seed corpus over adversarial automata — deterministic and
    fast enough for every CI run; hypothesis explores beyond it."""
    rng = random.Random(4)
    for _ in range(6):
        seed = rng.randrange(10_000)
        automaton = random_automaton(seed, num_states=8, alphabet=b"abc")
        data = bytes(rng.choice(b"abc") for _ in range(200))
        config = PAPConfig(
            geometry=board(4),
            tdm_slice_symbols=rng.choice([3, 9, 33]),
            use_fiv=rng.random() < 0.5,
        )
        pap = ParallelAutomataProcessor(automaton, config=config)
        serial = pap.run(data, backend="serial")
        parallel = pap.run(data, backend=pool)
        assert fingerprint(parallel) == fingerprint(serial), seed


def test_run_accepts_backend_name_and_workers():
    automaton = random_ruleset_automaton(11, num_patterns=3)
    data = bytes(random.Random(11).choice(b"abcdef") for _ in range(256))
    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=board(4))
    )
    serial = pap.run(data)
    parallel = pap.run(data, backend="process", workers=2)
    assert fingerprint(parallel) == fingerprint(serial)


def test_process_backend_emits_exec_observability(pool):
    automaton = random_ruleset_automaton(7, num_patterns=3)
    data = bytes(random.Random(7).choice(b"abcdef") for _ in range(256))
    tracer = Tracer()
    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=board(4)), observer=tracer
    )
    pap.run(data, backend=pool)
    assert tracer.metrics.gauge("exec.workers").value == 2
    dispatches = tracer.metrics.counter("exec.dispatches").value
    assert dispatches >= 1
    spans = [e for e in tracer.events if e.track == "exec"]
    assert len(spans) == dispatches
    assert all((e.args or {}).get("pid") for e in spans)


def test_worker_crash_surfaces_execution_error(monkeypatch):
    """A worker that dies mid-segment must produce a clear
    ExecutionError naming the segment — never a hang or a bare
    BrokenProcessPool."""
    monkeypatch.setenv(CRASH_ENV, "1")
    automaton = random_ruleset_automaton(3, num_patterns=3)
    data = bytes(random.Random(3).choice(b"abcdef") for _ in range(256))
    pap = ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=board(4))
    )
    with ProcessPoolBackend(workers=1) as backend:
        with pytest.raises(ExecutionError, match="worker died"):
            pap.run(data, backend=backend)


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_process_name_carries_workers(self):
        backend = resolve_backend("process", workers=3)
        try:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.workers == 3
        finally:
            backend.close()

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_instance_rejects_workers_override(self):
        with pytest.raises(ConfigurationError, match="workers"):
            resolve_backend(SerialBackend(), workers=2)

    def test_unknown_name_names_the_valid_ones(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend("threads")
        for name in BACKEND_NAMES:
            assert name in str(excinfo.value)

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=0)

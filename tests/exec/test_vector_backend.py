"""The vector backend is bit-exact with the serial set-walk backend in
the cycle domain — the PR-9 extension of the serial/process equivalence
corpus in ``test_backend.py`` to the bit-parallel flow strategy.

Same fingerprint, same property structure: every cycle-domain quantity
of a :class:`PAPRunResult` — reports, timing chains, per-segment
metrics, composition outcomes — must be identical whichever strategy
stepped the flows, including runs that recover from seeded faults
(the PR-5 resilience path is strategy-agnostic), and the BENCH cycle
payload of :func:`run_benchmark` must be byte-identical so perf
baselines gate both backends interchangeably.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.random_gen import random_automaton, random_ruleset_automaton
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.core.scheduler import SegmentScheduler, STRATEGY_NAMES
from repro.errors import ConfigurationError
from repro.exec import (
    FaultPlan,
    RetryPolicy,
    SerialBackend,
    VectorBackend,
    resolve_backend,
)
from repro.sim.runner import run_benchmark
from repro.workloads.suite import build_suite

from tests.exec.test_backend import board, fingerprint

FAST = RetryPolicy(max_retries=3, backoff_base_s=0.0)


configs = st.builds(
    PAPConfig,
    geometry=st.sampled_from([board(2), board(4), board(8)]),
    tdm_slice_symbols=st.sampled_from([5, 17, 64]),
    convergence_period_steps=st.sampled_from([1, 3, 10]),
    use_convergence=st.booleans(),
    use_deactivation=st.booleans(),
    use_fiv=st.booleans(),
)

inputs = st.binary(min_size=0, max_size=300).map(
    lambda raw: bytes(b"abcdef"[b % 6] for b in raw)
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), data=inputs, config=configs)
def test_vector_backend_is_bit_exact(seed, data, config):
    """Serial and vector backends produce identical PAPRunResults in
    the cycle domain, across random automata, inputs, and configs."""
    automaton = random_ruleset_automaton(seed, num_patterns=4)
    pap = ParallelAutomataProcessor(automaton, config=config)
    serial = pap.run(data, backend=SerialBackend())
    vector = pap.run(data, backend=VectorBackend())
    assert fingerprint(vector) == fingerprint(serial)


def test_vector_backend_corpus():
    """Fixed-seed corpus over adversarial automata — deterministic and
    fast enough for every CI run; hypothesis explores beyond it."""
    rng = random.Random(9)
    for _ in range(6):
        seed = rng.randrange(10_000)
        automaton = random_automaton(seed, num_states=8, alphabet=b"abc")
        data = bytes(rng.choice(b"abc") for _ in range(200))
        config = PAPConfig(
            geometry=board(4),
            tdm_slice_symbols=rng.choice([3, 9, 33]),
            use_fiv=rng.random() < 0.5,
        )
        pap = ParallelAutomataProcessor(automaton, config=config)
        serial = pap.run(data, backend="serial")
        vector = pap.run(data, backend="vector")
        assert fingerprint(vector) == fingerprint(serial), seed


def test_vector_backend_recovers_seeded_faults_bit_exact():
    """The chaos scenario on the vector strategy: seeded transient
    faults across the run, recovered with retries, bit-exact against a
    fault-free serial run."""
    automaton = random_ruleset_automaton(23, num_patterns=4)
    data = bytes(random.Random(23).choice(b"abcdef") for _ in range(400))
    pap = ParallelAutomataProcessor(automaton, config=PAPConfig(geometry=board(8)))
    clean = pap.run(data, backend="serial")
    recovered = pap.run(
        data,
        backend="vector",
        retry=FAST,
        faults=FaultPlan.parse("seed=5,rate=0.4,kinds=transient"),
    )
    assert fingerprint(recovered) == fingerprint(clean)
    assert recovered.health is not None
    assert recovered.health["faults_injected"] > 0


def test_bench_cycle_payload_identical_on_suite_workload():
    """BENCH artifacts gate on the cycle payload; it must be
    byte-identical across strategies on a real suite workload."""
    inst = {i.name: i for i in build_suite()}["Bro217"]
    serial = run_benchmark(inst, trace_bytes=4096, backend="serial")
    vector = run_benchmark(inst, trace_bytes=4096, backend="vector")
    assert vector.to_dict() == serial.to_dict()


class TestResolutionAndValidation:
    def test_resolve_vector_backend(self):
        backend = resolve_backend("vector")
        assert isinstance(backend, VectorBackend)
        assert backend.name == "vector"
        assert backend.strategy == "vector"

    def test_run_accepts_vector_name(self):
        automaton = random_ruleset_automaton(11, num_patterns=3)
        data = bytes(random.Random(11).choice(b"abcdef") for _ in range(256))
        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=board(4))
        )
        assert fingerprint(pap.run(data, backend="vector")) == fingerprint(
            pap.run(data)
        )

    def test_scheduler_rejects_unknown_strategy(self):
        automaton = random_ruleset_automaton(1, num_patterns=2)
        from repro.automata.analysis import AutomatonAnalysis
        from repro.automata.execution import CompiledAutomaton

        with pytest.raises(ConfigurationError) as excinfo:
            SegmentScheduler(
                CompiledAutomaton(automaton),
                AutomatonAnalysis(automaton),
                PAPConfig(geometry=board(2)),
                frozenset(),
                strategy="simd",
            )
        for name in STRATEGY_NAMES:
            assert name in str(excinfo.value)

"""Durability tests: checkpoint/resume, hedging, breakers, admission.

The load-bearing property is ISSUE 10's acceptance criterion: a
resumed run — including one resumed from a checkpoint written by a
``kill -9``'d parent, on a *different* backend than wrote it — is
bit-exact in the cycle domain against a cold run.  Everything here
compares :func:`cycle_fingerprint` digests, the same comparison
``repro chaos`` and the kill-and-resume CI stage gate on.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.random_gen import random_ruleset_automaton
from repro.core.config import DEFAULT_CONFIG
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import (
    AdmissionError,
    CheckpointError,
    ConfigurationError,
)
from repro.exec import (
    AdmissionPolicy,
    CheckpointStore,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    HedgePolicy,
    ProcessPoolBackend,
    RetryPolicy,
    cycle_fingerprint,
    resolve_backend,
    run_fingerprint,
)
from repro.exec.durability import KILL_ENV


def make_workload(seed: int = 5, size: int = 1024):
    automaton = random_ruleset_automaton(seed, num_patterns=4)
    rng = random.Random(seed + 100)
    data = bytes(rng.randrange(256) for _ in range(size))
    return ParallelAutomataProcessor(automaton), data


@pytest.fixture(scope="module")
def workload():
    return make_workload()


@pytest.fixture(scope="module")
def cold(workload):
    pap, data = workload
    return cycle_fingerprint(pap.run(data))


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


def checkpoint_file(tmp_path):
    """The single .ckpt.jsonl file a one-run store directory holds."""
    files = list(tmp_path.glob("*.ckpt.jsonl"))
    assert len(files) == 1, files
    return files[0]


class TestRunFingerprint:
    def test_deterministic_and_input_sensitive(self, workload):
        pap, data = workload
        kwargs = dict(num_segments=8)
        base = run_fingerprint(pap.automaton, DEFAULT_CONFIG, data, **kwargs)
        again = run_fingerprint(pap.automaton, DEFAULT_CONFIG, data, **kwargs)
        assert base == again
        other_input = run_fingerprint(
            pap.automaton, DEFAULT_CONFIG, data + b"x", **kwargs
        )
        other_split = run_fingerprint(
            pap.automaton, DEFAULT_CONFIG, data, num_segments=9
        )
        assert len({base, other_input, other_split}) == 3

    def test_backend_not_part_of_key(self, workload, tmp_path):
        """A serial-written checkpoint file is found by a vector resume:
        the fingerprint must not encode the backend."""
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        resumed = pap.run(
            data, backend="vector", checkpoint=str(tmp_path), resume=True
        )
        assert resumed.extra["checkpoint"]["hits"] > 0
        assert resumed.extra["checkpoint"]["writes"] == 0


class TestCheckpointResume:
    def test_serial_write_then_resume_bit_exact(self, workload, cold, tmp_path):
        pap, data = workload
        first = pap.run(data, checkpoint=str(tmp_path))
        ckpt = first.extra["checkpoint"]
        assert ckpt["writes"] == first.num_segments
        assert ckpt["hits"] == 0
        assert cycle_fingerprint(first) == cold

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        rckpt = resumed.extra["checkpoint"]
        assert rckpt["hits"] == first.num_segments
        assert rckpt["writes"] == 0
        assert rckpt["resumed"] is True
        assert cycle_fingerprint(resumed) == cold

    def test_cross_backend_resume_bit_exact(
        self, workload, cold, tmp_path, pool
    ):
        """The acceptance criterion across all three backends: one
        serial-written checkpoint, resumed by process and vector."""
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        for backend in (pool, "vector", None):
            resumed = pap.run(
                data,
                backend=backend,
                checkpoint=str(tmp_path),
                resume=True,
            )
            assert cycle_fingerprint(resumed) == cold
            assert resumed.extra["checkpoint"]["writes"] == 0

    def test_partial_checkpoint_executes_only_missing(
        self, workload, cold, tmp_path, pool
    ):
        pap, data = workload
        first = pap.run(data, checkpoint=str(tmp_path))
        total = first.num_segments
        path = checkpoint_file(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")

        resumed = pap.run(
            data, backend=pool, checkpoint=str(tmp_path), resume=True
        )
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["hits"] == total - 3
        assert ckpt["writes"] == 3
        assert cycle_fingerprint(resumed) == cold

    def test_non_resume_rerun_discards_stale_file(self, workload, tmp_path):
        pap, data = workload
        first = pap.run(data, checkpoint=str(tmp_path))
        rerun = pap.run(data, checkpoint=str(tmp_path), resume=False)
        assert rerun.extra["checkpoint"]["hits"] == 0
        assert rerun.extra["checkpoint"]["writes"] == first.num_segments

    def test_different_inputs_get_different_files(self, workload, tmp_path):
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        pap.run(data[:512], checkpoint=str(tmp_path))
        assert len(list(tmp_path.glob("*.ckpt.jsonl"))) == 2

    def test_store_root_must_be_a_directory(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(CheckpointError):
            CheckpointStore(target)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 6), size=st.integers(64, 768))
    def test_resume_property_bit_exact(self, tmp_path, seed, size):
        """Property form of the resume contract over random workloads."""
        pap, data = make_workload(seed=seed, size=size)
        root = tmp_path / f"{seed}-{size}"
        cold = pap.run(data)
        pap.run(data, checkpoint=str(root))
        resumed = pap.run(data, checkpoint=str(root), resume=True)
        assert cycle_fingerprint(resumed) == cycle_fingerprint(cold)
        assert resumed.extra["checkpoint"]["hits"] == cold.num_segments


class TestTornAndCorruptRecords:
    def test_torn_final_record_dropped_and_reexecuted(
        self, workload, cold, tmp_path
    ):
        pap, data = workload
        first = pap.run(data, checkpoint=str(tmp_path))
        path = checkpoint_file(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2])

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["dropped_records"] == 1
        assert ckpt["hits"] == first.num_segments - 1
        assert ckpt["writes"] == 1
        assert cycle_fingerprint(resumed) == cold

    def test_garbage_mid_file_only_loses_that_record(
        self, workload, cold, tmp_path
    ):
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        path = checkpoint_file(tmp_path)
        lines = path.read_text().splitlines()
        lines[3] = '{"kind": "segment", "index": 2, "payload": "trunca'
        path.write_text("\n".join(lines) + "\n")

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["dropped_records"] == 1
        assert ckpt["writes"] == 1
        assert cycle_fingerprint(resumed) == cold

    def test_tampered_payload_fails_checksum(self, workload, cold, tmp_path):
        """A record that parses but was modified must fail its checksum
        — detection is content-based, not parse-based."""
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        path = checkpoint_file(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["payload"]["metrics"]["cycles"] = 1
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        assert resumed.extra["checkpoint"]["dropped_records"] == 1
        assert cycle_fingerprint(resumed) == cold

    def test_foreign_fingerprint_distrusts_whole_file(
        self, workload, cold, tmp_path
    ):
        pap, data = workload
        pap.run(data, checkpoint=str(tmp_path))
        path = checkpoint_file(tmp_path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["fingerprint"] = "0" * 64
        lines[0] = json.dumps(meta)
        path.write_text("\n".join(lines) + "\n")

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["hits"] == 0
        assert ckpt["writes"] == resumed.num_segments
        assert cycle_fingerprint(resumed) == cold

    def test_corrupt_checkpoint_fault_roundtrip(self, workload, cold, tmp_path):
        """The injected write-side corruption: execution is untouched,
        the torn record is dropped on resume, the segment re-executes."""
        pap, data = workload
        faults = FaultPlan(
            specs=(FaultSpec(segment=4, kind="corrupt_checkpoint"),)
        )
        first = pap.run(data, checkpoint=str(tmp_path), faults=faults)
        assert cycle_fingerprint(first) == cold
        assert first.health["injected_faults"] == [
            {"segment": 4, "attempt": 1, "kind": "corrupt_checkpoint"}
        ]

        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["dropped_records"] == 1
        assert ckpt["hits"] == first.num_segments - 1
        assert ckpt["writes"] == 1
        assert cycle_fingerprint(resumed) == cold


KILL_SCRIPT = """
import random
from repro.automata.random_gen import random_ruleset_automaton
from repro.core.pap import ParallelAutomataProcessor

automaton = random_ruleset_automaton(5, num_patterns=4)
rng = random.Random(105)
data = bytes(rng.randrange(256) for _ in range(1024))
ParallelAutomataProcessor(automaton).run(data, checkpoint={root!r})
raise SystemExit("the kill hook must fire before the run completes")
"""


class TestKillParentResume:
    def test_sigkilled_parent_checkpoint_resumes_bit_exact(
        self, workload, cold, tmp_path
    ):
        """``kill -9`` the *parent* after 5 durable records; the
        survivor file resumes bit-exactly with exactly 5 hits."""
        env = dict(os.environ)
        env[KILL_ENV] = "5"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", KILL_SCRIPT.format(root=str(tmp_path))],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        path = checkpoint_file(tmp_path)
        # meta header + the 5 records that were fsync'd before the kill.
        assert len(path.read_text().splitlines()) == 6

        pap, data = workload
        resumed = pap.run(data, checkpoint=str(tmp_path), resume=True)
        ckpt = resumed.extra["checkpoint"]
        assert ckpt["hits"] == 5
        assert ckpt["writes"] == resumed.num_segments - 5
        assert cycle_fingerprint(resumed) == cold


HASHSEED_SCRIPT = """
import random
from repro.automata.random_gen import random_ruleset_automaton
from repro.core.pap import ParallelAutomataProcessor
from repro.exec import cycle_fingerprint

automaton = random_ruleset_automaton(5, num_patterns=4)
rng = random.Random(105)
data = bytes(rng.randrange(256) for _ in range(1024))
pap = ParallelAutomataProcessor(automaton)
first = pap.run(data, checkpoint={root!r})
resumed = pap.run(data, checkpoint={root!r}, resume=True)
print(first.extra["checkpoint"]["fingerprint"])
print(cycle_fingerprint(first))
print(cycle_fingerprint(resumed))
print(resumed.extra["checkpoint"]["hits"])
"""


class TestHashSeedDeterminism:
    def test_fingerprints_identical_across_hash_seeds(self, tmp_path):
        """Run fingerprint, cycle fingerprint, and resume behaviour are
        all hash-seed invariant (the CI determinism job's property,
        proven in-process)."""
        outputs = []
        for hash_seed in ("0", "1"):
            root = tmp_path / f"seed{hash_seed}"
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")])
            )
            proc = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    HASHSEED_SCRIPT.format(root=str(root)),
                ],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert len(outputs[0].splitlines()) == 4


class TestHedgePolicy:
    def test_threshold_needs_min_samples(self):
        policy = HedgePolicy(min_samples=3)
        assert policy.threshold_s([0.1, 0.1]) is None
        assert policy.threshold_s([0.1, 0.1, 0.1]) is not None

    def test_threshold_floor_and_mad(self):
        policy = HedgePolicy(
            mad_multiplier=4.0, min_samples=3, min_threshold_s=0.05
        )
        # Zero-MAD samples fall back to the 5%-of-median guard.
        assert policy.threshold_s([1.0, 1.0, 1.0]) == pytest.approx(1.2)
        # Tiny walls clamp to the floor.
        assert policy.threshold_s([0.001] * 5) == 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(mad_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(min_samples=0)

    def test_hedge_needs_process_backend(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("serial", hedge=HedgePolicy())
        with pytest.raises(ConfigurationError):
            resolve_backend("vector", breaker=CircuitBreaker())


class TestHedgingRecovery:
    def test_hedge_beats_deadline_path_on_hang(self, workload, cold):
        """ISSUE 10's headline: a seeded hang is recovered by hedging
        strictly faster than by the PR-5 per-segment deadline, and the
        hedged run never burns a retry."""
        pap, data = workload
        last = pap.run(data).num_segments - 1
        hang = FaultPlan(
            specs=(FaultSpec(segment=last, kind="hang"),), hang_s=4.0
        )

        hedge_backend = ProcessPoolBackend(
            workers=2, hedge=HedgePolicy(min_threshold_s=0.05)
        )
        try:
            pap.run(data, backend=hedge_backend)  # warm the pool
            start = time.monotonic()
            hedged = pap.run(
                data,
                backend=hedge_backend,
                faults=hang,
                retry=RetryPolicy(max_retries=1, segment_timeout_s=30.0),
            )
            hedged_wall = time.monotonic() - start
        finally:
            hedge_backend.close()
        assert cycle_fingerprint(hedged) == cold
        assert hedged.health["hedges"] >= 1
        assert len(hedged.health["hedge_wins"]) >= 1
        assert hedged.health["retries"] == 0
        assert hedged.health["timeouts"] == 0

        deadline_backend = ProcessPoolBackend(workers=2)
        try:
            pap.run(data, backend=deadline_backend)  # warm the pool
            start = time.monotonic()
            deadline = pap.run(
                data,
                backend=deadline_backend,
                faults=hang,
                retry=RetryPolicy(max_retries=1, segment_timeout_s=1.5),
            )
            deadline_wall = time.monotonic() - start
        finally:
            deadline_backend.close()
        assert cycle_fingerprint(deadline) == cold
        assert deadline.health["timeouts"] == 1

        # The deadline path cannot beat its own timeout; the hedge can.
        assert deadline_wall >= 1.5
        assert hedged_wall < deadline_wall

    def test_straggler_fault_bit_exact_on_serial(self, workload, cold):
        """The serial model of a straggler: delay, then execute — the
        cycle domain never sees the delay."""
        pap, data = workload
        faults = FaultPlan(
            specs=(FaultSpec(segment=2, kind="straggler"),),
            straggler_s=0.05,
        )
        result = pap.run(data, faults=faults)
        assert cycle_fingerprint(result) == cold
        assert result.health["injected_faults"][0]["kind"] == "straggler"


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            fail_threshold=2, cooldown_s=10.0, clock=lambda: clock[0]
        )
        error = RuntimeError("boom")
        assert breaker.state == "closed"
        assert not breaker.record_failure(error)
        assert breaker.record_failure(error)  # newly opened
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 11.0
        assert breaker.allow()  # cooldown elapsed: probe admitted
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            fail_threshold=1, cooldown_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure(RuntimeError("x"))
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure(RuntimeError("y"))
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_between_failures_resets_count(self):
        breaker = CircuitBreaker(fail_threshold=2, cooldown_s=5.0)
        breaker.record_failure(RuntimeError("a"))
        breaker.record_success()
        assert not breaker.record_failure(RuntimeError("b"))
        assert breaker.state == "closed"

    def test_open_breaker_fast_fails_to_serial(self, workload, cold):
        """Crashes open the breaker mid-run (downgrade, with reason);
        the *next* run on the same backend fast-fails before touching
        the pool at all."""
        pap, data = workload
        backend = ProcessPoolBackend(
            workers=2, breaker=CircuitBreaker(fail_threshold=2)
        )
        try:
            faults = FaultPlan(
                specs=(FaultSpec(segment=1, kind="crash", times=5),)
            )
            broken = pap.run(
                data,
                backend=backend,
                faults=faults,
                retry=RetryPolicy(
                    max_retries=4, backoff_base_s=0.0, downgrade_after=None
                ),
            )
            assert cycle_fingerprint(broken) == cold
            health = broken.health
            assert health["breaker_state"] == "open"
            assert health["downgraded"]
            assert health["downgrade_reason"].startswith("breaker open")

            fastfail = pap.run(data, backend=backend)
            assert cycle_fingerprint(fastfail) == cold
            assert fastfail.health["downgraded"]
            assert fastfail.health["downgrade_reason"].startswith(
                "breaker open"
            )
            assert fastfail.health["crashes"] == 0, (
                "fast-fail must not have touched the pool"
            )
        finally:
            backend.close()


class TestWorkerStepDown:
    def test_consecutive_crashes_step_workers_down(self, workload, cold):
        """The PR-5 rebuild-at-full-width fix: the second consecutive
        infrastructure failure halves the pool (2 -> 1 here), recorded
        in RunHealth."""
        pap, data = workload
        backend = ProcessPoolBackend(workers=2)
        try:
            faults = FaultPlan(
                specs=(FaultSpec(segment=3, kind="crash", times=2),)
            )
            result = pap.run(
                data,
                backend=backend,
                faults=faults,
                retry=RetryPolicy(
                    max_retries=3, backoff_base_s=0.0, downgrade_after=None
                ),
            )
            assert cycle_fingerprint(result) == cold
            steps = result.health["worker_steps"]
            assert steps == [
                {
                    "segment": 3,
                    "workers": 1,
                    "consecutive": 2,
                    "error": "WorkerCrashError",
                }
            ]
        finally:
            backend.close()

    def test_fresh_run_restores_configured_width(self, workload):
        pap, data = workload
        backend = ProcessPoolBackend(workers=2)
        try:
            faults = FaultPlan(
                specs=(FaultSpec(segment=3, kind="crash", times=2),)
            )
            pap.run(
                data,
                backend=backend,
                faults=faults,
                retry=RetryPolicy(
                    max_retries=3, backoff_base_s=0.0, downgrade_after=None
                ),
            )
            assert backend._dispatch_workers == 1
            backend.close()  # stepped pool gone; next run starts fresh
            pap.run(data, backend=backend)
            assert backend._dispatch_workers == 2
        finally:
            backend.close()


class TestAdmission:
    def test_no_budget_admits(self, workload):
        pap, data = workload
        decision = AdmissionPolicy().check((), input_bytes=len(data))
        assert decision.action == "admit"

    def test_refuse_mode_raises_before_execution(self, workload):
        pap, data = workload
        with pytest.raises(AdmissionError):
            pap.run(
                data,
                admission=AdmissionPolicy(
                    memory_budget_bytes=10_000, mode="refuse"
                ),
            )

    def test_unfittable_segment_refused_even_in_chunk_mode(self, workload):
        pap, data = workload
        with pytest.raises(AdmissionError):
            pap.run(
                data,
                admission=AdmissionPolicy(
                    memory_budget_bytes=10_000, mode="chunk"
                ),
            )

    def test_chunk_mode_bounds_inflight_and_stays_bit_exact(
        self, workload, cold, pool
    ):
        pap, data = workload
        result = pap.run(
            data,
            backend=pool,
            admission=AdmissionPolicy(
                memory_budget_bytes=400_000, mode="chunk"
            ),
        )
        admission = result.health["admission"]
        assert admission["action"] == "chunk"
        assert 1 <= admission["wave_size"] < result.num_segments
        assert cycle_fingerprint(result) == cold

    def test_mode_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(memory_budget_bytes=1, mode="explode")


class TestFaultPlanExtensions:
    def test_parse_straggler_delay(self):
        plan = FaultPlan.parse("seed=3,rate=0.5,kinds=straggler,straggler=1.5")
        assert plan.straggler_s == 1.5
        assert plan.kinds == ("straggler",)

    def test_parse_error_names_straggler_key(self):
        with pytest.raises(ConfigurationError, match="straggler"):
            FaultPlan.parse("bogus=1")

    def test_checkpoint_faults_do_not_shift_execution_draws(self):
        """A corrupt_checkpoint spec must not perturb which execution
        faults fire — the draws live on separate sequences."""
        from repro.exec.faults import FaultInjector

        base = FaultPlan(specs=(FaultSpec(segment=2, kind="transient"),))
        mixed = FaultPlan(
            specs=(
                FaultSpec(segment=1, kind="corrupt_checkpoint"),
                FaultSpec(segment=2, kind="transient"),
            )
        )
        draws_base = [base.fault_at(s, 1) for s in range(6)]
        draws_mixed = [mixed.fault_at(s, 1) for s in range(6)]
        assert draws_base == draws_mixed
        assert "corrupt_checkpoint" not in draws_mixed
        injector = FaultInjector(mixed)
        assert injector.draw_checkpoint(1) is True
        assert injector.draw_checkpoint(3) is False
        # Only the first write of a segment is corrupted — a retry of
        # the same segment lands clean.
        assert injector.draw_checkpoint(1) is False

"""Fault-injection layer tests: plan parsing and validation, seeded
determinism (the same plan fires the same faults at the same
(segment, attempt) coordinates on every run), injector accounting, and
the fault-to-error mapping."""

import pytest

from repro.errors import (
    ConfigurationError,
    SegmentTimeoutError,
    TransientSegmentError,
    WorkerCrashError,
)
from repro.exec.faults import (
    CRASH,
    FAULT_KINDS,
    FIV_WRITE,
    HANG,
    SVC_EXHAUSTION,
    TRANSIENT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    raise_fault,
)


class TestFaultSpec:
    def test_valid(self):
        spec = FaultSpec(segment=3, kind=CRASH, times=2)
        assert (spec.segment, spec.kind, spec.times) == (3, CRASH, 2)

    def test_unknown_kind_names_the_valid_ones(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec(segment=0, kind="meteor")
        for kind in FAULT_KINDS:
            assert kind in str(excinfo.value)

    def test_negative_segment(self):
        with pytest.raises(ConfigurationError, match="segment"):
            FaultSpec(segment=-1, kind=TRANSIENT)

    def test_zero_times(self):
        with pytest.raises(ConfigurationError, match="times"):
            FaultSpec(segment=0, kind=TRANSIENT, times=0)


class TestFaultPlanParse:
    def test_seeded_grammar(self):
        plan = FaultPlan.parse("seed=7,rate=0.25,kinds=crash+transient")
        assert plan.seed == 7
        assert plan.rate == 0.25
        assert plan.kinds == (CRASH, TRANSIENT)
        assert plan.specs == ()

    def test_explicit_grammar(self):
        plan = FaultPlan.parse("2:transient,3:crash*2")
        assert plan.specs == (
            FaultSpec(segment=2, kind=TRANSIENT),
            FaultSpec(segment=3, kind=CRASH, times=2),
        )

    def test_mixed_grammar_and_hang(self):
        plan = FaultPlan.parse("seed=1,rate=0.1,1:fiv_write,hang=0.5")
        assert plan.seed == 1
        assert plan.hang_s == 0.5
        assert plan.specs == (FaultSpec(segment=1, kind=FIV_WRITE),)

    def test_rate_without_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            FaultPlan.parse("rate=0.5")

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("seed=1,rate=1.5")

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown fault-plan"):
            FaultPlan.parse("tempo=3")

    def test_malformed_token(self):
        with pytest.raises(ConfigurationError, match="bad fault token"):
            FaultPlan.parse("justwords")

    def test_non_numeric_values(self):
        with pytest.raises(ConfigurationError, match="bad fault plan"):
            FaultPlan.parse("seed=many")

    def test_roundtrip_to_dict(self):
        plan = FaultPlan.parse("seed=7,rate=0.25,kinds=crash,2:transient")
        payload = plan.to_dict()
        assert payload["seed"] == 7
        assert payload["rate"] == 0.25
        assert payload["specs"] == [
            {"segment": 2, "kind": TRANSIENT, "times": 1}
        ]


class TestDeterminism:
    def test_seeded_draws_are_reproducible(self):
        """The same plan yields the same fault at every (segment,
        attempt) coordinate — across injector instances, i.e. across
        runs."""
        plan = FaultPlan(seed=13, rate=0.4, kinds=(CRASH, TRANSIENT, HANG))
        first = [plan.fault_at(segment, 1) for segment in range(64)]
        second = [plan.fault_at(segment, 1) for segment in range(64)]
        assert first == second
        assert any(first), "rate=0.4 over 64 segments must fire somewhere"
        assert not all(first), "rate=0.4 must also leave segments clean"

    def test_seeded_faults_fire_only_on_first_attempt(self):
        plan = FaultPlan(seed=13, rate=1.0)
        assert plan.fault_at(5, 1) == TRANSIENT
        assert plan.fault_at(5, 2) is None

    def test_explicit_spec_fires_for_first_n_attempts(self):
        plan = FaultPlan(specs=(FaultSpec(segment=2, kind=CRASH, times=2),))
        assert plan.fault_at(2, 1) == CRASH
        assert plan.fault_at(2, 2) == CRASH
        assert plan.fault_at(2, 3) is None
        assert plan.fault_at(1, 1) is None

    def test_different_seeds_differ(self):
        draws = {
            seed: tuple(
                FaultPlan(seed=seed, rate=0.5).fault_at(segment, 1)
                for segment in range(32)
            )
            for seed in (1, 2, 3)
        }
        assert len(set(draws.values())) > 1


class TestFaultInjector:
    def test_counts_attempts_and_records_injections(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(segment=1, kind=TRANSIENT, times=2),))
        )
        assert injector.draw(1) == TRANSIENT
        assert injector.draw(1) == TRANSIENT
        assert injector.draw(1) is None
        assert injector.draw(0) is None
        assert injector.injected == [
            {"segment": 1, "attempt": 1, "kind": TRANSIENT},
            {"segment": 1, "attempt": 2, "kind": TRANSIENT},
        ]

    def test_worker_kinds_suppressed_after_downgrade(self):
        """Once a run degrades to in-process execution there are no
        workers left to crash or hang: infrastructure faults stop
        firing, segment-level faults keep firing."""
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(segment=1, kind=CRASH, times=9),
                    FaultSpec(segment=2, kind=TRANSIENT, times=9),
                )
            )
        )
        assert injector.draw(1, infrastructure=False) is None
        assert injector.draw(2, infrastructure=False) == TRANSIENT
        assert injector.draw(1, infrastructure=True) == CRASH


class TestRaiseFault:
    @pytest.mark.parametrize(
        ("kind", "expected"),
        [
            (CRASH, WorkerCrashError),
            (HANG, SegmentTimeoutError),
            (TRANSIENT, TransientSegmentError),
            (SVC_EXHAUSTION, TransientSegmentError),
            (FIV_WRITE, TransientSegmentError),
        ],
    )
    def test_kind_maps_to_modeled_error(self, kind, expected):
        with pytest.raises(expected, match="segment 7"):
            raise_fault(kind, 7)

    def test_transient_error_survives_pickling(self):
        """The segment/kind attributes must cross the process-pool
        pickle boundary intact."""
        import pickle

        try:
            raise_fault(SVC_EXHAUSTION, 4)
        except TransientSegmentError as error:
            clone = pickle.loads(pickle.dumps(error))
            assert clone.kind == SVC_EXHAUSTION
            assert clone.segment == 4
            assert str(clone) == str(error)

"""Resilience tests: the fault matrix the recovery machinery must
survive, on both backends.

The heart is the bit-exactness acceptance: a run that crashed, timed
out, retried, or degraded to serial execution must produce a
:class:`PAPRunResult` whose cycle-domain fingerprint is *identical* to
a fault-free run's — recovery is verifiable, not best-effort.  Around
it sit the policy unit tests (retry budget, backoff, deadline), the
health accounting, and the pool-rebuild regression for crashed worker
pools."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.automata.random_gen import random_automaton, random_ruleset_automaton
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    TransientSegmentError,
)
from repro.exec import (
    FaultPlan,
    ProcessPoolBackend,
    RetryPolicy,
    RunHealth,
)
from repro.exec.faults import FaultSpec
from repro.exec.resilience import run_with_retry
from repro.obs import Tracer
from repro.obs.tracer import NULL_OBSERVER
from repro.sim.runner import run_benchmark
from repro.workloads.suite import build_benchmark
from tests.exec.test_backend import board, fingerprint

FAST = RetryPolicy(max_retries=3, backoff_base_s=0.0)


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


def small_pap(seed=5, patterns=4):
    automaton = random_ruleset_automaton(seed, num_patterns=patterns)
    return ParallelAutomataProcessor(
        automaton, config=PAPConfig(geometry=board(4))
    )


def trace(seed=5, size=300):
    return bytes(random.Random(seed).choice(b"abcdef") for _ in range(size))


class TestRetryPolicy:
    def test_defaults_are_fail_fast(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.segment_timeout_s is None

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=9,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_max_s=0.5,
        )
        delays = [policy.delay_s(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"deadline_s": 0},
            {"segment_timeout_s": -1},
            {"downgrade_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRunWithRetry:
    def test_success_needs_no_policy(self):
        health = RunHealth()
        result = run_with_retry(
            RetryPolicy(), health, NULL_OBSERVER, 0, lambda: 42
        )
        assert result == 42
        assert health.attempts == {0: 1}
        assert health.clean

    def test_retry_then_succeed(self):
        health = RunHealth()
        outcomes = iter(
            [TransientSegmentError("flaky"), TransientSegmentError("flaky"), 7]
        )

        def attempt():
            value = next(outcomes)
            if isinstance(value, Exception):
                raise value
            return value

        slept = []
        result = run_with_retry(
            RetryPolicy(max_retries=3, backoff_base_s=0.1, backoff_factor=2.0),
            health,
            NULL_OBSERVER,
            4,
            attempt,
            sleep=slept.append,
        )
        assert result == 7
        assert health.attempts == {4: 3}
        assert health.retries == 2
        assert slept == [0.1, 0.2]

    def test_exhaustion_names_segment_and_attempts(self):
        health = RunHealth()

        def attempt():
            raise TransientSegmentError("always broken")

        with pytest.raises(
            ExecutionError,
            match=r"segment 9 failed after 3 attempt\(s\) \(retries exhausted\)",
        ):
            run_with_retry(
                RetryPolicy(max_retries=2, backoff_base_s=0.0),
                health,
                NULL_OBSERVER,
                9,
                attempt,
            )
        assert health.attempts == {9: 3}

    def test_non_retryable_errors_propagate_immediately(self):
        health = RunHealth()

        def attempt():
            raise ConfigurationError("not a fault")

        with pytest.raises(ConfigurationError):
            run_with_retry(FAST, health, NULL_OBSERVER, 0, attempt)
        assert health.attempts == {0: 1}
        assert health.retries == 0

    def test_deadline_stops_recovery_early(self):
        health = RunHealth()
        clock = iter([0.0, 10.0])  # start, then first failure check

        def attempt():
            raise TransientSegmentError("slow failure")

        with pytest.raises(ExecutionError, match="deadline exceeded"):
            run_with_retry(
                RetryPolicy(max_retries=50, backoff_base_s=0.0, deadline_s=5.0),
                health,
                NULL_OBSERVER,
                1,
                attempt,
                clock=lambda: next(clock),
            )
        assert health.attempts == {1: 1}

    def test_on_failure_fires_even_on_the_exhausting_attempt(self):
        seen = []

        def attempt():
            raise TransientSegmentError("nope")

        with pytest.raises(ExecutionError):
            run_with_retry(
                RetryPolicy(max_retries=1, backoff_base_s=0.0),
                RunHealth(),
                NULL_OBSERVER,
                0,
                attempt,
                on_failure=lambda error: seen.append(type(error).__name__),
            )
        assert seen == ["TransientSegmentError", "TransientSegmentError"]


class TestRunHealth:
    def test_to_dict_shape(self):
        health = RunHealth()
        health.record_attempt(0)
        health.record_attempt(1)
        health.record_attempt(1)
        health.retries = 1
        health.injected = [{"segment": 1, "attempt": 1, "kind": "transient"}]
        payload = health.to_dict()
        assert payload["attempts"] == {"0": 1, "1": 2}
        assert payload["total_attempts"] == 3
        assert payload["retries"] == 1
        assert payload["faults_injected"] == 1
        assert payload["downgraded"] is False

    def test_clean(self):
        assert RunHealth().clean
        dirty = RunHealth()
        dirty.retries = 1
        assert not dirty.clean


class TestSerialRecovery:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        automaton_seed=st.integers(0, 10_000),
        fault_seed=st.integers(0, 10_000),
        rate=st.floats(0.1, 0.9),
    )
    def test_recovered_runs_are_bit_exact(
        self, automaton_seed, fault_seed, rate
    ):
        """The acceptance property: injected transient faults plus
        retries yield a PAPRunResult identical to the fault-free run in
        every cycle-domain quantity."""
        automaton = random_automaton(
            automaton_seed, num_states=8, alphabet=b"abc"
        )
        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=board(4))
        )
        data = bytes(
            random.Random(automaton_seed).choice(b"abc") for _ in range(200)
        )
        clean = pap.run(data)
        faults = FaultPlan(
            seed=fault_seed,
            rate=rate,
            kinds=("transient", "svc_exhaustion", "fiv_write"),
        )
        recovered = pap.run(data, retry=FAST, faults=faults)
        assert fingerprint(recovered) == fingerprint(clean)
        health = recovered.health
        assert health["retries"] == health["faults_injected"]

    def test_modeled_crash_and_hang_recover_inline(self):
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        recovered = pap.run(
            data,
            retry=FAST,
            faults=FaultPlan(
                specs=(
                    FaultSpec(segment=1, kind="crash"),
                    FaultSpec(segment=2, kind="hang"),
                )
            ),
        )
        assert fingerprint(recovered) == fingerprint(clean)
        assert recovered.health["crashes"] == 1
        assert recovered.health["timeouts"] == 1

    def test_retry_exhausted_raises(self):
        pap = small_pap()
        with pytest.raises(
            ExecutionError, match=r"segment 1 failed after 2 attempt\(s\)"
        ):
            pap.run(
                trace(),
                retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
                faults=FaultPlan(
                    specs=(FaultSpec(segment=1, kind="transient", times=5),)
                ),
            )

    def test_default_policy_is_fail_fast(self):
        pap = small_pap()
        with pytest.raises(ExecutionError, match="after 1 attempt"):
            pap.run(
                trace(),
                faults=FaultPlan(
                    specs=(FaultSpec(segment=1, kind="transient"),)
                ),
            )

    def test_health_surfaces_in_result_and_metrics(self):
        tracer = Tracer()
        automaton = random_ruleset_automaton(5, num_patterns=4)
        pap = ParallelAutomataProcessor(
            automaton, config=PAPConfig(geometry=board(4)), observer=tracer
        )
        result = pap.run(
            trace(),
            retry=FAST,
            faults=FaultPlan(specs=(FaultSpec(segment=1, kind="transient"),)),
        )
        health = result.health
        assert health["retries"] == 1
        assert health["faults_injected"] == 1
        assert health["injected_faults"] == [
            {"segment": 1, "attempt": 1, "kind": "transient"}
        ]
        assert tracer.metrics.counter("exec.retries").value == 1
        assert tracer.metrics.counter("exec.faults_injected").value == 1
        names = {e.name for e in tracer.events if e.track == "exec"}
        assert "segment-retry" in names
        assert "fault-injected" in names


class TestProcessRecovery:
    def test_crash_retry_is_bit_exact(self, pool):
        """A real worker crash (os._exit in the child) breaks the pool;
        the retry rebuilds it and the run finishes bit-exactly."""
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        recovered = pap.run(
            data,
            backend=pool,
            retry=FAST,
            faults=FaultPlan(specs=(FaultSpec(segment=1, kind="crash"),)),
        )
        assert fingerprint(recovered) == fingerprint(clean)
        assert recovered.health["crashes"] >= 1
        assert not recovered.health["downgraded"]

    def test_fiv_chain_survives_mid_chain_retry(self, pool):
        """With use_fiv=True the pipelined Section 3.4 chain must resume
        with the same composed-predecessor inputs after a mid-chain
        failure."""
        automaton = random_ruleset_automaton(8, num_patterns=4)
        config = PAPConfig(geometry=board(4), use_fiv=True)
        pap = ParallelAutomataProcessor(automaton, config=config)
        data = trace(8, 400)
        clean = pap.run(data)
        recovered = pap.run(
            data,
            backend=pool,
            retry=FAST,
            faults=FaultPlan(
                specs=(
                    FaultSpec(segment=2, kind="fiv_write"),
                    FaultSpec(segment=3, kind="transient", times=2),
                )
            ),
        )
        assert fingerprint(recovered) == fingerprint(clean)

    def test_seeded_crash_storm_recovers(self, pool):
        """The chaos-CI scenario: seeded crash/transient faults across
        the whole run, recovered with retries, bit-exact."""
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        recovered = pap.run(
            data,
            backend=pool,
            retry=FAST,
            faults=FaultPlan.parse("seed=3,rate=0.4,kinds=crash+transient"),
        )
        assert fingerprint(recovered) == fingerprint(clean)
        assert recovered.health["faults_injected"] > 0

    def test_backend_usable_after_crashed_run(self):
        """Pool-rebuild regression: a run that ends with a broken pool
        (crash, no retries) must not poison the backend instance — the
        next run on it rebuilds the pool and succeeds."""
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        with ProcessPoolBackend(workers=1) as backend:
            with pytest.raises(ExecutionError):
                pap.run(
                    data,
                    backend=backend,
                    faults=FaultPlan(
                        specs=(FaultSpec(segment=1, kind="crash"),)
                    ),
                )
            again = pap.run(data, backend=backend)
            assert fingerprint(again) == fingerprint(clean)

    def test_hang_trips_segment_timeout(self):
        """An injected hang exceeds the dispatch timeout: the pool is
        recycled, the retry succeeds, and the timeout is recorded."""
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        with ProcessPoolBackend(workers=1) as backend:
            recovered = pap.run(
                data,
                backend=backend,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_s=0.0, segment_timeout_s=0.5
                ),
                faults=FaultPlan(
                    specs=(FaultSpec(segment=1, kind="hang"),), hang_s=30.0
                ),
            )
        assert fingerprint(recovered) == fingerprint(clean)
        assert recovered.health["timeouts"] >= 1

    def test_forced_downgrade_completes_serially(self):
        """Acceptance: persistent worker crashes degrade the run to
        serial execution, which finishes bit-exactly with
        health["downgraded"] set."""
        pap = small_pap()
        data = trace()
        clean = pap.run(data)
        with ProcessPoolBackend(workers=1) as backend:
            result = pap.run(
                data,
                backend=backend,
                retry=RetryPolicy(
                    max_retries=8, backoff_base_s=0.0, downgrade_after=2
                ),
                faults=FaultPlan(
                    specs=(
                        FaultSpec(segment=1, kind="crash", times=9),
                        FaultSpec(segment=2, kind="crash", times=9),
                    )
                ),
            )
        assert fingerprint(result) == fingerprint(clean)
        health = result.health
        assert health["downgraded"] is True
        assert health["downgraded_at_segment"] is not None
        assert "consecutive" in health["downgrade_reason"]

    def test_downgrade_disabled_exhausts_instead(self):
        pap = small_pap()
        with ProcessPoolBackend(workers=1) as backend:
            with pytest.raises(ExecutionError, match="retries exhausted"):
                pap.run(
                    trace(),
                    backend=backend,
                    retry=RetryPolicy(
                        max_retries=2, backoff_base_s=0.0, downgrade_after=None
                    ),
                    faults=FaultPlan(
                        specs=(FaultSpec(segment=1, kind="crash", times=9),)
                    ),
                )


class TestBenchCycleStability:
    def test_bench_cycles_identical_under_faults(self):
        """The chaos gate's contract: BenchmarkRun.to_dict()["cycles"]
        is bit-identical between a fault-free run and a recovered one,
        so a chaos artifact compares clean against the normal baseline."""
        bench = build_benchmark("Bro217", scale=0.05, seed=0)
        kwargs = dict(ranks=1, trace_bytes=4096, trace_seed=1)
        clean = run_benchmark(bench, **kwargs)
        chaotic = run_benchmark(
            bench,
            retry=FAST,
            faults=FaultPlan.parse("seed=7,rate=0.3,kinds=transient"),
            **kwargs,
        )
        assert chaotic.to_dict()["cycles"] == clean.to_dict()["cycles"]
        assert chaotic.pap.health["faults_injected"] > 0

"""Flight-recorder tests: ledger schema, ring buffer, crash bundles,
and the property that JSONL output round-trips under fault injection.

The ledger invariants (strict JSON per line, monotone ``seq`` from 0,
constant ``run`` id) are the contract `repro obs summary` and the CI
artifact pipeline rely on, so they are pinned both with unit tests and
with a hypothesis sweep over seeded fault plans — faults plus retries
must never corrupt the ledger.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ap.geometry import BoardGeometry
from repro.automata.random_gen import random_automaton
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import ArtifactError, ExecutionError
from repro.exec.faults import SVC_EXHAUSTION, TRANSIENT, FaultPlan
from repro.exec.resilience import RetryPolicy
from repro.obs import (
    FlightRecorder,
    LEDGER_SCHEMA_VERSION,
    read_ledger,
    summarize_ledger,
)
from repro.obs.telemetry import new_run_id


def board(half_cores: int) -> BoardGeometry:
    return BoardGeometry(ranks=1, devices_per_rank=max(1, half_cores // 2))


def _reject(token):
    raise ValueError(f"non-strict constant {token!r}")


def _strict_lines(path) -> list[dict]:
    """Parse a ledger file line by line, rejecting NaN/Infinity."""
    lines = path.read_text().splitlines()
    return [json.loads(line, parse_constant=_reject) for line in lines]


class TestFlightRecorder:
    def test_ledger_starts_open_and_ends_close(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path)) as recorder:
            recorder.instant("hello")
            recorder.counter("flows", 3)
        records = read_ledger(str(path))
        assert records[0]["kind"] == "open"
        assert records[0]["args"]["schema_version"] == LEDGER_SCHEMA_VERSION
        assert records[-1]["kind"] == "close"
        kinds = [r["kind"] for r in records]
        assert "instant" in kinds and "counter" in kinds

    def test_spans_write_separate_begin_and_end_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path)) as recorder:
            handle = recorder.begin_span("segment", args={"index": 0})
            recorder.end_span(handle, args={"cycles": 12})
        records = read_ledger(str(path))
        begin = next(r for r in records if r["kind"] == "span-begin")
        end = next(r for r in records if r["kind"] == "span-end")
        assert begin["span"] == end["span"] == handle
        assert begin["name"] == end["name"] == "segment"

    def test_end_span_ignores_bad_and_stale_handles(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path)) as recorder:
            handle = recorder.begin_span("s")
            recorder.end_span(handle)
            before = recorder.num_records
            recorder.end_span(handle)  # already closed
            recorder.end_span(999)  # never opened
            assert recorder.num_records == before
        read_ledger(str(path))

    def test_close_is_idempotent_and_embeds_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(path=str(path))
        recorder.metrics.counter("exec.dispatches").inc(4)
        recorder.close()
        recorder.close()
        records = read_ledger(str(path))
        closes = [r for r in records if r["kind"] == "close"]
        assert len(closes) == 1
        metrics = closes[0]["args"]["metrics"]
        assert metrics["exec.dispatches"]["value"] == 4

    def test_in_memory_mode_keeps_ring_only(self):
        recorder = FlightRecorder()
        recorder.instant("x")
        recorder.close()
        assert recorder.path is None
        assert [r["kind"] for r in recorder.ring] == [
            "open",
            "instant",
            "close",
        ]

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(ring_capacity=4)
        for index in range(10):
            recorder.instant(f"e{index}")
        assert len(recorder.ring) == 4
        # The ring keeps the *most recent* records (the crash tail).
        assert recorder.ring[-1]["name"] == "e9"
        assert recorder.ring[-1]["seq"] == 10  # after the open record

    def test_rejects_zero_ring_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(ring_capacity=0)

    def test_explicit_run_id_is_used(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path), run_id="cafe0123") as recorder:
            assert recorder.run_id == "cafe0123"
        records = read_ledger(str(path))
        assert {r["run"] for r in records} == {"cafe0123"}

    def test_non_finite_values_sanitized_to_null(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path)) as recorder:
            recorder.instant(
                "weird", args={"inf": float("inf"), "nan": float("nan")}
            )
        records = _strict_lines(path)  # would raise on Infinity/NaN
        weird = next(r for r in records if r["name"] == "weird")
        assert weird["args"] == {"inf": None, "nan": None}

    def test_new_run_id_is_unique_hex(self):
        first, second = new_run_id(), new_run_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)


class TestReadLedgerValidation:
    def _valid_lines(self, tmp_path) -> list[str]:
        path = tmp_path / "ok.jsonl"
        with FlightRecorder(path=str(path)):
            pass
        return path.read_text().splitlines()

    def _expect_error(self, tmp_path, lines, match):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError, match=match):
            read_ledger(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            read_ledger(str(tmp_path / "nope.jsonl"))

    def test_empty_ledger(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ArtifactError, match="empty"):
            read_ledger(str(path))

    def test_blank_line(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        self._expect_error(
            tmp_path, [lines[0], ""], match="blank ledger line"
        )

    def test_non_json_line(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        self._expect_error(
            tmp_path, [lines[0], "not json"], match="not strict JSON"
        )

    def test_non_strict_constant_rejected(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        record = json.loads(lines[1])
        record["seq"] = 1
        doctored = json.dumps(record).replace(
            '"kind": "close"', '"kind": "close", "x": NaN'
        )
        assert "NaN" in doctored
        self._expect_error(
            tmp_path, [lines[0], doctored], match="not strict JSON"
        )

    def test_sequence_break(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        self._expect_error(
            tmp_path, [lines[0], lines[0]], match="sequence break"
        )

    def test_run_id_change(self, tmp_path):
        lines = self._valid_lines(tmp_path)
        record = json.loads(lines[1])
        record["run"] = "someoneelse"
        self._expect_error(
            tmp_path,
            [lines[0], json.dumps(record)],
            match="run id changed",
        )

    def test_unknown_kind(self, tmp_path):
        record = json.loads(self._valid_lines(tmp_path)[0])
        record["kind"] = "mystery"
        self._expect_error(
            tmp_path, [json.dumps(record)], match="unknown record kind"
        )

    def test_bad_schema_version(self, tmp_path):
        record = json.loads(self._valid_lines(tmp_path)[0])
        record["v"] = 99
        self._expect_error(
            tmp_path, [json.dumps(record)], match="schema"
        )

    def test_must_start_with_open(self, tmp_path):
        record = json.loads(self._valid_lines(tmp_path)[1])
        record["seq"] = 0
        self._expect_error(
            tmp_path, [json.dumps(record)], match="start with 'open'"
        )


class TestSummarizeLedger:
    def test_summary_of_sealed_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with FlightRecorder(path=str(path)) as recorder:
            recorder.metrics.counter("c").inc()
            recorder.instant("x")
        summary = summarize_ledger(read_ledger(str(path)))
        assert summary["run_id"] == recorder.run_id
        assert summary["schema_version"] == LEDGER_SCHEMA_VERSION
        assert summary["records"] == 3
        assert summary["kinds"] == {"close": 1, "instant": 1, "open": 1}
        assert summary["sealed"] is True
        assert summary["metrics"]["c"]["value"] == 1
        assert "failure" not in summary

    def test_summary_of_crashed_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(path=str(path))
        recorder.run_failed(RuntimeError("boom"))
        del recorder  # never closed: ledger is unsealed
        summary = summarize_ledger(read_ledger(str(path)))
        assert summary["sealed"] is False
        assert summary["failure"] == {
            "type": "RuntimeError",
            "message": "boom",
        }


class TestCrashBundle:
    """Acceptance: a seeded crash run produces a strict-JSON crash
    bundle whose ledger tail, health record, and metrics snapshot all
    reference the same ``run_id``."""

    def _crash_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = FlightRecorder(path=str(path))
        automaton = random_automaton(3, num_states=8, alphabet=b"abc")
        pap = ParallelAutomataProcessor(
            automaton,
            config=PAPConfig(geometry=board(4)),
            observer=recorder,
        )
        data = b"abcabcab" * 32
        # Deterministic crash on segment 1, no retries: fail-fast.
        with pytest.raises(ExecutionError):
            pap.run(data, faults=FaultPlan.parse("1:crash"))
        recorder.close()
        return path, recorder

    def test_bundle_written_next_to_ledger(self, tmp_path):
        path, recorder = self._crash_run(tmp_path)
        bundle_path = tmp_path / "run.jsonl.crash.json"
        assert bundle_path.exists()
        bundle = json.loads(
            bundle_path.read_text(), parse_constant=_reject
        )
        assert bundle == recorder.crash_bundle

    def test_bundle_is_strict_json_with_one_run_id(self, tmp_path):
        path, recorder = self._crash_run(tmp_path)
        bundle = recorder.crash_bundle
        json.dumps(bundle, allow_nan=False)
        assert bundle["schema_version"] == LEDGER_SCHEMA_VERSION
        assert bundle["run_id"] == recorder.run_id
        assert bundle["health"]["run_id"] == recorder.run_id
        tail_runs = {r["run"] for r in bundle["ledger_tail"]}
        assert tail_runs == {recorder.run_id}
        assert bundle["error"]["type"]
        assert bundle["metrics"]  # snapshot captured at failure time

    def test_bundle_records_injected_fault(self, tmp_path):
        path, recorder = self._crash_run(tmp_path)
        health = recorder.crash_bundle["health"]
        assert health["faults_injected"] == 1
        injected = health["injected_faults"]
        assert {"segment": 1, "attempt": 1, "kind": "crash"} in injected

    def test_ledger_has_failure_record_and_stays_valid(self, tmp_path):
        path, recorder = self._crash_run(tmp_path)
        records = read_ledger(str(path))
        failure = next(r for r in records if r["kind"] == "failure")
        assert failure["name"] == "ExecutionError"
        assert records[-1]["kind"] == "close"


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    fault_seed=st.integers(0, 10_000),
    rate=st.floats(0.0, 0.6),
)
def test_ledger_round_trips_under_fault_injection(
    tmp_path_factory, seed, fault_seed, rate
):
    """Property: whatever seeded faults do to a run, every ledger line
    is strict JSON, ``seq`` is monotone from 0, and the run id never
    changes — and ``read_ledger`` accepts the file."""
    path = tmp_path_factory.mktemp("ledger") / "run.jsonl"
    recorder = FlightRecorder(path=str(path))
    automaton = random_automaton(seed, num_states=8, alphabet=b"abc")
    pap = ParallelAutomataProcessor(
        automaton,
        config=PAPConfig(geometry=board(4)),
        observer=recorder,
    )
    data = bytes(b"abc"[b % 3] for b in range(200))
    plan = FaultPlan(
        seed=fault_seed, rate=rate, kinds=(TRANSIENT, SVC_EXHAUSTION)
    )
    # Seeded faults fire on first attempts only, so three retries
    # always recover: the run must succeed AND the ledger must hold.
    pap.run(data, faults=plan, retry=RetryPolicy(max_retries=3))
    recorder.close()

    records = _strict_lines(path)
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert {r["run"] for r in records} == {recorder.run_id}
    assert all(r["v"] == LEDGER_SCHEMA_VERSION for r in records)
    parsed = read_ledger(str(path))
    assert len(parsed) == len(records)

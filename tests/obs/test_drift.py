"""Drift-monitor tests (AP401-AP404): predicted-vs-actual divergence.

The quiet/noisy contract is the acceptance criterion from ISSUE 7: all
19 committed BENCH_seed workloads must stay quiet against the committed
ANALYZE_seed predictions, and a prediction perturbed by at least twice
the tolerance must fire.  Synthetic predictions then pin each check
(cycles, flows, per-segment finish, identity mismatch) in isolation.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.ap.geometry import BoardGeometry
from repro.automata.random_gen import random_automaton
from repro.core.config import PAPConfig
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import ArtifactError, ConfigurationError
from repro.obs import Tracer
from repro.obs.drift import (
    DEFAULT_DRIFT_TOLERANCE,
    DriftMonitor,
    DriftObservation,
)

REPO = Path(__file__).resolve().parents[2]
ANALYZE_SEED = REPO / "benchmarks" / "analysis" / "ANALYZE_seed.json"
BENCH_SEED = REPO / "BENCH_seed.json"


def _prediction(**overrides) -> dict:
    """A small synthetic two-segment prediction."""
    base = {
        "name": "Synthetic",
        "enumeration_cycles": 1000,
        "input_bytes": 2000,
        "num_segments": 2,
        "segments": [
            {"index": 0, "finish_cycles": 1000, "flows_at_end": 3},
            {"index": 1, "finish_cycles": 900, "flows_at_end": 5},
        ],
    }
    base.update(overrides)
    return base


def _clean_observation(**overrides) -> DriftObservation:
    values = {
        "enumeration_cycles": 1000,
        "input_bytes": 2000,
        "num_segments": 2,
        "flows_at_end": 8,
        "segment_finish_cycles": (1000, 900),
    }
    values.update(overrides)
    return DriftObservation(**values)


class TestAgainstCommittedArtifacts:
    """ANALYZE_seed predictions vs BENCH_seed actuals, per workload."""

    def _pairs(self):
        analysis = json.loads(ANALYZE_SEED.read_text())["workloads"]
        bench = json.loads(BENCH_SEED.read_text())["benchmarks"]
        assert set(analysis) == set(bench)
        for key in sorted(analysis):
            yield key, analysis[key]["prediction"], bench[key]["cycles"]

    def test_all_seed_workloads_stay_quiet(self):
        pairs = list(self._pairs())
        assert len(pairs) == 19
        for key, prediction, cycles in pairs:
            monitor = DriftMonitor(prediction, workload=key)
            observation = DriftObservation(
                enumeration_cycles=cycles["enumeration_cycles"]
            )
            assert monitor.check(observation) == (), key

    def test_perturbed_prediction_fires_ap401(self):
        key, prediction, cycles = next(self._pairs())
        perturbed = dict(prediction)
        # 2x the tolerance past the observed value: must fire.
        perturbed["enumeration_cycles"] = int(
            cycles["enumeration_cycles"]
            * (1 + 2 * DEFAULT_DRIFT_TOLERANCE)
        )
        monitor = DriftMonitor(perturbed, workload=key)
        diagnostics = monitor.check(
            DriftObservation(
                enumeration_cycles=cycles["enumeration_cycles"]
            )
        )
        assert [d.code for d in diagnostics] == ["AP401"]
        assert diagnostics[0].automaton == key


class TestChecks:
    def test_clean_observation_is_quiet(self):
        monitor = DriftMonitor(_prediction())
        assert monitor.check(_clean_observation()) == ()

    def test_within_tolerance_is_quiet(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        observation = _clean_observation(enumeration_cycles=1090)
        assert monitor.check(observation) == ()

    def test_ap401_cycles_drift(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        diagnostics = monitor.check(
            _clean_observation(enumeration_cycles=1300)
        )
        assert [d.code for d in diagnostics] == ["AP401"]
        assert diagnostics[0].data["observed"] == 1300
        assert diagnostics[0].data["predicted"] == 1000

    def test_ap402_flow_drift(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        diagnostics = monitor.check(_clean_observation(flows_at_end=16))
        assert [d.code for d in diagnostics] == ["AP402"]
        assert diagnostics[0].data["predicted"] == 8  # 3 + 5

    def test_ap403_segment_finish_drift_names_indices(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        diagnostics = monitor.check(
            _clean_observation(segment_finish_cycles=(1000, 1800))
        )
        assert [d.code for d in diagnostics] == ["AP403"]
        assert diagnostics[0].states == (1,)
        assert diagnostics[0].data["segments"][0]["observed"] == 1800

    def test_ap404_mismatch_skips_other_checks(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        # Wildly drifted cycles AND a different shape: only AP404.
        diagnostics = monitor.check(
            _clean_observation(
                enumeration_cycles=9999, input_bytes=1, num_segments=7
            )
        )
        assert [d.code for d in diagnostics] == ["AP404"]
        assert set(diagnostics[0].data) == {"input_bytes", "num_segments"}

    def test_none_fields_skip_their_checks(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.10)
        # Only cycles observed; everything else unobserved -> quiet
        # even though totals would drift if they were compared.
        observation = DriftObservation(enumeration_cycles=1000)
        assert monitor.check(observation) == ()

    def test_zero_prediction_nonzero_observation_drifts(self):
        monitor = DriftMonitor(
            _prediction(enumeration_cycles=0), tolerance=0.10
        )
        diagnostics = monitor.check(
            _clean_observation(enumeration_cycles=5)
        )
        assert "AP401" in [d.code for d in diagnostics]

    def test_all_diagnostics_are_warnings(self):
        monitor = DriftMonitor(_prediction(), tolerance=0.01)
        diagnostics = monitor.check(
            _clean_observation(
                enumeration_cycles=1300,
                flows_at_end=16,
                segment_finish_cycles=(1500, 1800),
            )
        )
        assert {d.code for d in diagnostics} == {
            "AP401",
            "AP402",
            "AP403",
        }
        assert all(d.severity.name == "WARNING" for d in diagnostics)


class TestObserverEmission:
    def test_counters_and_instants(self):
        tracer = Tracer()
        monitor = DriftMonitor(
            _prediction(), tolerance=0.10, observer=tracer
        )
        monitor.check(_clean_observation())  # quiet
        monitor.check(_clean_observation(enumeration_cycles=1300))
        assert tracer.metrics.counter("drift.checks").value == 2
        assert tracer.metrics.counter("drift.events").value == 1
        instants = [
            e for e in tracer.events if e.name.startswith("drift:")
        ]
        assert len(instants) == 1
        assert instants[0].name == "drift:AP401"
        assert instants[0].track == "drift"
        assert instants[0].args["code"] == "AP401"


class TestConstruction:
    def test_rejects_non_positive_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            DriftMonitor(_prediction(), tolerance=0.0)
        with pytest.raises(ValueError, match="tolerance"):
            DriftMonitor(_prediction(), tolerance=-0.5)

    def test_from_analysis_artifact_loads_workload(self):
        monitor = DriftMonitor.from_analysis_artifact(
            str(ANALYZE_SEED), "Bro217"
        )
        assert monitor.workload == "Bro217"
        assert monitor.prediction["name"] == "Bro217"
        assert monitor.tolerance == DEFAULT_DRIFT_TOLERANCE

    def test_from_analysis_artifact_unknown_workload(self):
        with pytest.raises(ArtifactError, match="no prediction"):
            DriftMonitor.from_analysis_artifact(
                str(ANALYZE_SEED), "NoSuchWorkload"
            )

    def test_from_analysis_artifact_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot load"):
            DriftMonitor.from_analysis_artifact(
                str(tmp_path / "nope.json"), "Bro217"
            )

    def test_from_analysis_artifact_not_an_analysis(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"benchmarks": {}}')
        with pytest.raises(ConfigurationError, match="workloads"):
            DriftMonitor.from_analysis_artifact(str(path), "Bro217")


class TestCheckRun:
    """Live end-to-end: a run checked against its own analysis."""

    def _run(self):
        automaton = random_automaton(5, num_states=8, alphabet=b"abc")
        config = PAPConfig(
            geometry=BoardGeometry(ranks=1, devices_per_rank=2)
        )
        pap = ParallelAutomataProcessor(automaton, config=config)
        data = bytes(b"abc"[i % 3] for i in range(400))
        return pap.run(data)

    def _self_prediction(self, result) -> dict:
        """A perfect prediction, derived from the run itself."""
        observation = DriftObservation.from_run(result)
        return {
            "name": "self",
            "enumeration_cycles": observation.enumeration_cycles,
            "input_bytes": observation.input_bytes,
            "num_segments": observation.num_segments,
            "segments": [
                {
                    "index": index,
                    "finish_cycles": finish,
                    "flows_at_end": segment.metrics.flows_at_end,
                }
                for index, (finish, segment) in enumerate(
                    zip(
                        observation.segment_finish_cycles,
                        result.segment_results,
                    )
                )
            ],
        }

    def test_run_quiet_against_exact_prediction(self):
        result = self._run()
        monitor = DriftMonitor(self._self_prediction(result))
        assert monitor.check_run(result) == ()

    def test_run_drifts_against_perturbed_prediction(self):
        result = self._run()
        prediction = self._self_prediction(result)
        perturbed = copy.deepcopy(prediction)
        scale = 1 + 2 * DEFAULT_DRIFT_TOLERANCE
        perturbed["enumeration_cycles"] = max(
            1, int(prediction["enumeration_cycles"] * scale)
        )
        for segment in perturbed["segments"]:
            segment["finish_cycles"] = max(
                1, int(segment["finish_cycles"] * scale)
            )
        monitor = DriftMonitor(perturbed)
        codes = {d.code for d in monitor.check_run(result)}
        assert "AP401" in codes
        assert "AP403" in codes

    def test_observation_from_run_is_consistent(self):
        result = self._run()
        observation = DriftObservation.from_run(result)
        assert observation.input_bytes == 400
        assert observation.num_segments == len(result.segment_results)
        assert len(observation.segment_finish_cycles) == (
            observation.num_segments
        )
        assert observation.enumeration_cycles == (
            result.enumeration_cycles
        )

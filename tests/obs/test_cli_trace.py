"""CLI surface for observability: --trace/--profile/--format json and
the ``repro trace`` subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_trace_flags(self):
        args = build_parser().parse_args(
            ["run", "Bro217", "--trace", "out.json", "--profile"]
        )
        assert args.trace == "out.json"
        assert args.profile
        assert args.trace_domain == "cycles"
        assert args.format == "text"

    def test_run_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Bro217", "--format", "xml"])

    def test_trace_subcommand_defaults(self):
        args = build_parser().parse_args(["trace", "Bro217"])
        assert args.target == "Bro217"
        assert args.output is None
        assert not args.validate

    def test_trace_domain_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "Bro217", "--domain", "stardate"]
            )


class TestRunCommand:
    def test_format_json_parses_and_matches_text_fields(self, capsys):
        argv = ["run", "Bro217", "--scale", "0.05", "--trace-bytes", "4096"]
        assert main(argv + ["--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["benchmark"] == "Bro217"
        assert summary["speedup"] > 0
        assert summary["reports_match"] is True
        assert "svc" in summary and summary["svc"]["saves"] >= 0
        assert "event_amplification" in summary

    def test_trace_flag_writes_valid_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "run.trace.json"
        code = main(
            [
                "run",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        assert any(
            e["name"].startswith("segment[") for e in trace["traceEvents"]
        )
        captured = capsys.readouterr()
        assert str(path) in captured.out + captured.err

    def test_profile_flag_prints_profile(self, capsys):
        code = main(
            [
                "run",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--profile",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "PAP run profile" in captured.out + captured.err


class TestTraceCommand:
    def test_trace_writes_and_validates(self, capsys, tmp_path):
        path = tmp_path / "bench.trace.json"
        code = main(
            [
                "trace",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["trace", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace-event JSON" in out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        assert main(["trace", str(bad), "--validate"]) != 0

    def test_unknown_target_fails(self):
        with pytest.raises(SystemExit):
            main(["trace", "NotABenchmark"])

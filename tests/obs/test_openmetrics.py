"""Tests for the OpenMetrics text exposition (render + parse)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)


def _registry():
    registry = MetricsRegistry()
    registry.counter("exec.dispatches").inc(5)
    registry.gauge("svc.peak_occupancy").set(12)
    histogram = registry.histogram("segment.finish_cycles")
    for value in (100, 900, 4000):
        histogram.observe(value)
    return registry


class TestMetricName:
    def test_sanitizes_separators(self):
        assert metric_name("svc.peak_occupancy") == (
            "repro_svc_peak_occupancy"
        )
        assert metric_name("a-b c", prefix="") == "a_b_c"

    def test_prefix_optional(self):
        assert metric_name("x", prefix="") == "x"


class TestRender:
    def test_counter_gets_total_suffix(self):
        text = render_openmetrics(_registry().snapshot())
        assert "# TYPE repro_exec_dispatches counter" in text
        assert "repro_exec_dispatches_total 5" in text

    def test_gauge_with_max(self):
        text = render_openmetrics(_registry().snapshot())
        assert "repro_svc_peak_occupancy 12" in text
        assert "repro_svc_peak_occupancy_max 12" in text

    def test_never_set_gauge_omits_max_sample(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        text = render_openmetrics(registry.snapshot())
        assert "repro_g 0" in text
        assert "repro_g_max" not in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_registry().snapshot())
        # 100 -> 2**7, 900 -> 2**10, 4000 -> 2**12; cumulative counts.
        assert 'repro_segment_finish_cycles_bucket{le="128"} 1' in text
        assert 'repro_segment_finish_cycles_bucket{le="1024"} 2' in text
        assert 'repro_segment_finish_cycles_bucket{le="4096"} 3' in text
        assert 'repro_segment_finish_cycles_bucket{le="+Inf"} 3' in text
        assert "repro_segment_finish_cycles_count 3" in text

    def test_quantile_series(self):
        text = render_openmetrics(_registry().snapshot())
        assert 'repro_segment_finish_cycles_quantile{quantile="0.5"}' in (
            text
        )
        assert 'quantile{quantile="0.99"}' in text

    def test_ends_with_eof(self):
        assert render_openmetrics({}).strip() == "# EOF"
        assert render_openmetrics(_registry().snapshot()).endswith(
            "# EOF\n"
        )

    def test_deterministic(self):
        snapshot = _registry().snapshot()
        assert render_openmetrics(snapshot) == render_openmetrics(snapshot)


class TestParse:
    def test_round_trip(self):
        registry = _registry()
        samples = parse_openmetrics(
            render_openmetrics(registry.snapshot())
        )
        assert samples["repro_exec_dispatches_total"] == 5
        assert samples["repro_svc_peak_occupancy"] == 12
        assert (
            samples['repro_segment_finish_cycles_bucket{le="+Inf"}'] == 3
        )

    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_openmetrics("!!! not a sample\n# EOF\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_openmetrics("metric notanumber\n# EOF\n")

    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("metric 1\n")

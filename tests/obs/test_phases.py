"""Phase-attribution profiler tests (repro.obs.phases).

The load-bearing property is exactness: per-phase cycle totals are not
sampled estimates but re-derivations of the scheduler's own accounting,
so they must sum to the run's totals to the cycle — on every workload
in the evaluation suite.  Wall-phase capture rides the observer and is
only checked for presence/consistency (host time is noise).
"""

import json

import pytest

from repro.obs import Tracer
from repro.obs.phases import (
    CYCLE_PHASES,
    NULL_PHASES,
    PHASE_COMPOSE,
    PHASE_CONVERGENCE,
    PHASE_DECODE,
    PHASE_REPORT,
    PHASE_SWITCH,
    PHASE_TRANSITION,
    PhaseAccountingError,
    PhaseAccumulator,
    hot_phase,
    render_phase_profile,
    summarize_run_phases,
    to_folded,
    to_speedscope,
    validate_speedscope,
    verify_phase_totals,
)
from repro.sim.runner import run_benchmark
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark


@pytest.fixture(scope="module")
def snort_run():
    """One instrumented run shared by the read-only assertions."""
    bench = build_benchmark("Snort", scale=0.05, seed=0)
    return run_benchmark(
        bench, trace_bytes=8192, trace_seed=1, observer=Tracer()
    )


class TestPhaseAccumulator:
    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_PHASES.enabled is False
        NULL_PHASES.add(PHASE_TRANSITION, 0, 123)
        assert NULL_PHASES.items() == ()
        assert NULL_PHASES.totals() == {}

    def test_accumulates_per_segment_and_phase(self):
        acc = PhaseAccumulator()
        acc.add(PHASE_TRANSITION, 0, 10)
        acc.add(PHASE_TRANSITION, 0, 5)
        acc.add(PHASE_SWITCH, 1, 7)
        assert acc.items() == (
            (0, PHASE_TRANSITION, 15),
            (1, PHASE_SWITCH, 7),
        )
        assert acc.totals() == {PHASE_TRANSITION: 15, PHASE_SWITCH: 7}

    def test_merge_folds_shipped_rows(self):
        acc = PhaseAccumulator()
        acc.add(PHASE_TRANSITION, 0, 1)
        acc.merge([(0, PHASE_TRANSITION, 2), (2, PHASE_COMPOSE, 3)])
        assert acc.totals() == {PHASE_TRANSITION: 3, PHASE_COMPOSE: 3}


class TestHotPhase:
    def test_largest_wins(self):
        assert hot_phase({PHASE_TRANSITION: 1, PHASE_DECODE: 9}) == (
            PHASE_DECODE
        )

    def test_ties_resolve_in_display_order(self):
        assert hot_phase({PHASE_SWITCH: 5, PHASE_TRANSITION: 5}) == (
            PHASE_TRANSITION
        )


class TestSummarize:
    def test_run_carries_phase_summary(self, snort_run):
        phases = snort_run.pap.phases
        assert phases["schema"] == 1
        assert set(CYCLE_PHASES) <= set(phases["cycles"])
        assert phases["accounted_cycles"] == (
            phases["segment_cycles"]
            + phases["cycles"][PHASE_DECODE]
            + phases["cycles"][PHASE_REPORT]
        )
        assert len(phases["per_segment"]) == snort_run.pap.num_segments

    def test_wall_rows_present_with_tracer(self, snort_run):
        phases = snort_run.pap.phases
        assert phases["wall_ns"][PHASE_TRANSITION] > 0
        measured = [
            entry for entry in phases["per_segment"] if "wall_ns" in entry
        ]
        assert measured

    def test_wall_rows_absent_without_observer(self):
        bench = build_benchmark("Snort", scale=0.05, seed=0)
        run = run_benchmark(bench, trace_bytes=8192, trace_seed=1)
        phases = run.pap.phases
        assert "wall_ns" not in phases
        assert all("wall_ns" not in e for e in phases["per_segment"])

    def test_summary_is_strict_json(self, snort_run):
        payload = json.dumps(snort_run.pap.phases, allow_nan=False)
        assert json.loads(payload) == snort_run.pap.phases


class TestVerify:
    def test_verifies_real_run(self, snort_run):
        check = verify_phase_totals(snort_run.pap)
        assert check["segments"] == snort_run.pap.num_segments
        assert check["checks"] >= check["segments"] + 6
        assert check["accounted_cycles"] == (
            snort_run.pap.phases["accounted_cycles"]
        )

    def test_missing_summary_raises(self, snort_run):
        with pytest.raises(PhaseAccountingError, match="no phase summary"):
            verify_phase_totals(snort_run.pap, phases={})

    def test_perturbed_segment_row_raises(self, snort_run):
        phases = json.loads(json.dumps(snort_run.pap.phases))
        phases["per_segment"][0][PHASE_SWITCH] += 1
        with pytest.raises(PhaseAccountingError, match="segment 0"):
            verify_phase_totals(snort_run.pap, phases=phases)

    def test_perturbed_report_total_raises(self, snort_run):
        phases = json.loads(json.dumps(snort_run.pap.phases))
        phases["cycles"][PHASE_REPORT] += 1
        with pytest.raises(PhaseAccountingError, match="report"):
            verify_phase_totals(snort_run.pap, phases=phases)


def test_phase_totals_sum_exactly_on_every_workload():
    """The acceptance criterion: on all 19 evaluation workloads the
    per-phase cycle totals sum exactly (zero tolerance) to the run's
    cycle totals — segment identity, availability-chain refold, and the
    enumeration total."""
    assert len(BENCHMARK_NAMES) == 19
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=0.05, seed=0)
        run = run_benchmark(bench, trace_bytes=4096, trace_seed=1)
        check = verify_phase_totals(run.pap)
        assert check["segments"] == run.pap.num_segments, name
        phases = run.pap.phases
        per_segment_sum = sum(
            e[PHASE_TRANSITION] + e[PHASE_SWITCH] + e[PHASE_CONVERGENCE]
            for e in phases["per_segment"]
        )
        assert per_segment_sum == phases["segment_cycles"], name


def test_cycle_payload_is_observer_invariant():
    """Attaching the profiler must not perturb the simulation: the
    cycle-domain artifact payload is identical with and without it."""
    bench = build_benchmark("Snort", scale=0.05, seed=0)
    bare = run_benchmark(bench, trace_bytes=4096, trace_seed=1)
    traced = run_benchmark(
        bench, trace_bytes=4096, trace_seed=1, observer=Tracer()
    )
    assert bare.to_dict() == traced.to_dict()
    assert bare.pap.phases["cycles"] == traced.pap.phases["cycles"]


class TestRenderers:
    def test_table_shows_phases_and_totals(self, snort_run):
        text = render_phase_profile(snort_run.pap.phases)
        for phase in CYCLE_PHASES:
            assert phase in text
        assert "accounted" in text
        assert "hot=" in text
        assert "enumerated" in text  # per-segment rows present

    def test_totals_only_drops_segment_rows(self, snort_run):
        text = render_phase_profile(
            snort_run.pap.phases, per_segment=False
        )
        assert "enumerated" not in text

    def test_folded_lines_parse_and_cover_segment_cycles(self, snort_run):
        phases = snort_run.pap.phases
        total = 0
        for line in to_folded(phases).splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("pap;")
            total += int(count)
        assert total == phases["accounted_cycles"]

    def test_speedscope_validates_and_sums(self, snort_run):
        phases = snort_run.pap.phases
        payload = to_speedscope(phases, name="snort")
        validate_speedscope(payload)
        profile = payload["profiles"][0]
        assert profile["endValue"] == phases["accounted_cycles"]
        assert profile["name"] == "snort"


class TestValidateSpeedscope:
    def _valid(self):
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": [{"name": "a"}]},
            "profiles": [
                {
                    "type": "evented",
                    "name": "p",
                    "unit": "none",
                    "startValue": 0,
                    "endValue": 2,
                    "events": [
                        {"type": "O", "frame": 0, "at": 0},
                        {"type": "C", "frame": 0, "at": 2},
                    ],
                }
            ],
        }

    def test_valid_passes(self):
        validate_speedscope(self._valid())

    def test_missing_schema_rejected(self):
        payload = self._valid()
        payload["$schema"] = "https://example.com"
        with pytest.raises(ValueError, match="schema"):
            validate_speedscope(payload)

    def test_unbalanced_stack_rejected(self):
        payload = self._valid()
        payload["profiles"][0]["events"] = [
            {"type": "O", "frame": 0, "at": 0}
        ]
        with pytest.raises(ValueError, match="left open"):
            validate_speedscope(payload)

    def test_mismatched_close_rejected(self):
        payload = self._valid()
        payload["shared"]["frames"].append({"name": "b"})
        payload["profiles"][0]["events"][1]["frame"] = 1
        with pytest.raises(ValueError, match="innermost"):
            validate_speedscope(payload)

    def test_decreasing_at_rejected(self):
        payload = self._valid()
        payload["profiles"][0]["events"][1]["at"] = -1
        with pytest.raises(ValueError, match="non-decreasing"):
            validate_speedscope(payload)

    def test_frame_out_of_range_rejected(self):
        payload = self._valid()
        payload["profiles"][0]["events"][0]["frame"] = 7
        with pytest.raises(ValueError, match="out of range"):
            validate_speedscope(payload)

"""CLI surface for the phase profiler: the ``repro profile``
subcommand and its speedscope/folded exports."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_speedscope


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["profile", "Bro217"])
        assert args.target == "Bro217"
        assert args.format == "table"
        assert args.speedscope is None
        assert args.folded is None
        assert not args.validate
        assert args.backend == "serial"

    def test_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "Bro217", "--format", "xml"]
            )

    def test_help_mentions_exports(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--help"])
        helptext = capsys.readouterr().out
        assert "--speedscope" in helptext
        assert "--folded" in helptext
        assert "--validate" in helptext


class TestProfileCommand:
    ARGS = ["profile", "Bro217", "--scale", "0.05", "--trace-bytes", "4096"]

    def test_table_output_verifies_and_names_phases(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "transition" in out
        assert "identities verified" in out
        assert "hot=" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "Bro217"
        assert payload["accounted_cycles"] == (
            payload["segment_cycles"]
            + payload["cycles"]["decode"]
            + payload["cycles"]["report"]
        )
        assert payload["wall_ns"]["transition"] > 0

    def test_speedscope_export_roundtrips(self, capsys, tmp_path):
        path = tmp_path / "profile.speedscope.json"
        assert main(self.ARGS + ["--speedscope", str(path)]) == 0
        payload = json.loads(path.read_text())
        validate_speedscope(payload)
        capsys.readouterr()
        assert main(["profile", str(path), "--validate"]) == 0
        assert "valid speedscope profile" in capsys.readouterr().out

    def test_folded_export_parses(self, capsys, tmp_path):
        path = tmp_path / "profile.folded"
        assert main(self.ARGS + ["--folded", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("Bro217;")
            assert int(count) > 0

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"profiles": []}))
        assert main(["profile", str(bad), "--validate"]) == 1
        assert "invalid profile" in capsys.readouterr().out

    def test_unknown_target_fails(self):
        with pytest.raises(SystemExit):
            main(["profile", "NotABenchmark"])

    def test_process_backend_profile_matches_serial(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        code = main(
            self.ARGS
            + ["--format", "json", "--backend", "process", "--workers", "1"]
        )
        assert code == 0
        process = json.loads(capsys.readouterr().out)
        assert process["cycles"] == serial["cycles"]
        assert process["accounted_cycles"] == serial["accounted_cycles"]

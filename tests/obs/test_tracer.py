"""Tests for the dual-domain tracer and the null observer.

Covers the ISSUE's tracer checklist: span nesting, cycle- vs
wall-clock domains, and the disabled (null) observer recording nothing
while adding <5% overhead on a small ``run_benchmark``.
"""

import itertools
import time

from repro.obs.tracer import (
    COUNTER,
    CountingObserver,
    INSTANT,
    NULL_OBSERVER,
    Observer,
    SPAN,
    Tracer,
)
from repro.sim.runner import run_benchmark
from repro.workloads.suite import build_benchmark


def fake_clock(start: int = 1_000, step: int = 10):
    """Deterministic nanosecond clock: start, start+step, ..."""
    counter = itertools.count(start, step)
    return lambda: next(counter)


class TestSpans:
    def test_nesting_depths_are_recorded(self):
        tracer = Tracer(clock=fake_clock())
        outer = tracer.begin_span("outer")
        inner = tracer.begin_span("inner")
        innermost = tracer.begin_span("innermost")
        tracer.end_span(innermost)
        tracer.end_span(inner)
        tracer.end_span(outer)
        depths = {e.name: e.depth for e in tracer.events}
        assert depths == {"outer": 0, "inner": 1, "innermost": 2}
        assert tracer.open_spans() == ()

    def test_nesting_is_per_track(self):
        tracer = Tracer(clock=fake_clock())
        a = tracer.begin_span("a", track="seg0")
        b = tracer.begin_span("b", track="seg1")
        assert tracer.events[a].depth == 0
        assert tracer.events[b].depth == 0
        tracer.end_span(b)
        tracer.end_span(a)

    def test_span_context_manager(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("work", args={"n": 3}):
            with tracer.span("sub"):
                pass
        assert [e.depth for e in tracer.events] == [0, 1]
        assert all(e.wall_end_ns is not None for e in tracer.events)

    def test_unbalanced_end_is_tolerated(self):
        tracer = Tracer(clock=fake_clock())
        handle = tracer.begin_span("a")
        tracer.end_span(handle)
        tracer.end_span(handle)  # double close: no-op
        tracer.end_span(99)  # unknown handle: no-op
        tracer.end_span(-1)  # null handle: no-op
        assert len(tracer.events) == 1

    def test_wall_clock_comes_from_injected_clock(self):
        tracer = Tracer(clock=fake_clock(start=500, step=7))
        handle = tracer.begin_span("a")
        tracer.end_span(handle)
        event = tracer.events[0]
        assert event.wall_start_ns == 500
        assert event.wall_end_ns == 507
        assert event.wall_duration_ns == 7

    def test_open_spans_reports_unclosed(self):
        tracer = Tracer(clock=fake_clock())
        handle = tracer.begin_span("dangling")
        assert tracer.open_spans() == (handle,)


class TestDomains:
    def test_span_records_both_domains(self):
        tracer = Tracer(clock=fake_clock())
        handle = tracer.begin_span("segment[1]", track="seg1", cycle=0)
        tracer.end_span(handle, cycle=4_096)
        event = tracer.events[0]
        assert event.cycle_start == 0
        assert event.cycle_end == 4_096
        assert event.cycle_duration == 4_096
        assert event.wall_duration_ns == 10

    def test_wall_only_span_has_no_cycle_duration(self):
        tracer = Tracer(clock=fake_clock())
        handle = tracer.begin_span("plan")
        tracer.end_span(handle)
        assert tracer.events[0].cycle_duration is None

    def test_complete_span_is_retroactive_cycles(self):
        tracer = Tracer(clock=fake_clock())
        tracer.complete_span(
            "decode[2]", track="host", cycle_start=100, cycle_end=150
        )
        event = tracer.events[0]
        assert event.cycle_duration == 50
        assert event.wall_duration_ns == 0

    def test_instants_and_counters_carry_cycles(self):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("flow-deactivate", track="seg2", cycle=77)
        tracer.counter("active_flows", 5, track="seg2", cycle=78)
        kinds = [e.kind for e in tracer.events]
        assert kinds == [INSTANT, COUNTER]
        assert tracer.events[0].cycle_start == 77
        assert tracer.events[1].value == 5

    def test_tracks_in_first_seen_order(self):
        tracer = Tracer(clock=fake_clock())
        tracer.instant("a", track="run")
        tracer.instant("b", track="seg0")
        tracer.instant("c", track="run")
        assert tracer.tracks() == ("run", "seg0")


class TestNullObserver:
    def test_disabled_and_silent(self):
        assert not NULL_OBSERVER.enabled
        handle = NULL_OBSERVER.begin_span("a", cycle=1)
        NULL_OBSERVER.end_span(handle, cycle=2)
        NULL_OBSERVER.complete_span("b", cycle_start=0, cycle_end=1)
        NULL_OBSERVER.instant("c")
        NULL_OBSERVER.counter("d", 1)
        with NULL_OBSERVER.span("e"):
            pass
        NULL_OBSERVER.metrics.counter("f").inc()
        assert handle == -1
        assert len(NULL_OBSERVER.metrics) == 0

    def test_base_class_is_the_null_object(self):
        observer = Observer()
        assert not observer.enabled
        assert observer.begin_span("x") == -1

    def test_run_with_null_observer_produces_no_events(self):
        bench = build_benchmark("Bro217", scale=0.05, seed=0)
        run = run_benchmark(bench, trace_bytes=2_048)
        assert run.trace is None
        # Nothing accumulated in the shared null registry either.
        assert len(NULL_OBSERVER.metrics) == 0


class TestNullOverhead:
    def test_null_observer_overhead_under_five_percent(self):
        """Bound the disabled-instrumentation cost of a small benchmark.

        Overhead is estimated as (observer call sites exercised by the
        run) x (measured per-call cost of a null hook), relative to the
        run's wall time — the quantity the tentpole promises stays
        near-zero.  Measuring two full runs and differencing them would
        drown in scheduler noise; this decomposition is deterministic.
        """
        bench = build_benchmark("Bro217", scale=0.05, seed=0)

        # How many observer invocations does this run make?
        counting = CountingObserver()
        started = time.perf_counter()
        run_benchmark(bench, trace_bytes=4_096, observer=counting)
        run_seconds = time.perf_counter() - started
        assert counting.calls > 0

        # Per-call cost of the null hooks (instant is the hot one).
        null_calls = 200_000
        started = time.perf_counter()
        for _ in range(null_calls):
            NULL_OBSERVER.instant("x")
        per_call = (time.perf_counter() - started) / null_calls

        overhead = (counting.calls * per_call) / run_seconds
        assert overhead < 0.05, (
            f"null observer overhead {overhead:.2%} "
            f"({counting.calls} calls x {per_call * 1e9:.0f}ns "
            f"over {run_seconds:.3f}s)"
        )


class TestSpanKinds:
    def test_event_kind_constants(self):
        tracer = Tracer(clock=fake_clock())
        handle = tracer.begin_span("s")
        tracer.end_span(handle)
        assert tracer.events[0].kind == SPAN

"""Chrome trace-event export: shape, domains, and end-to-end content.

The end-to-end class is the ISSUE's acceptance check: a real PAP run's
trace must validate against the Chrome trace-event shape and contain
per-segment spans, flow lifecycle events, and cache counters.
"""

import itertools
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import export_chrome_trace, validate_chrome_trace
from repro.obs.tracer import Tracer
from repro.sim.runner import run_benchmark
from repro.sim.sweep import tdm_slice_sweep
from repro.workloads.suite import build_benchmark


def fake_clock(start: int = 1_000, step: int = 10):
    counter = itertools.count(start, step)
    return lambda: next(counter)


def small_tracer() -> Tracer:
    tracer = Tracer(clock=fake_clock())
    handle = tracer.begin_span("segment[1]", track="seg1", cycle=0)
    tracer.instant("flow-deactivate", track="seg1", cycle=40)
    tracer.counter("active_flows", 3, track="seg1", cycle=50)
    tracer.end_span(handle, cycle=100)
    wall_only = tracer.begin_span("plan", track="run")
    tracer.end_span(wall_only)
    return tracer


class TestExportShape:
    def test_cycles_domain_timestamps_are_cycles(self):
        trace = small_tracer().to_chrome(domain="cycles")
        payload = validate_chrome_trace(trace)
        spans = [e for e in payload if e["ph"] == "X"]
        assert len(spans) == 1  # wall-only "plan" span is dropped
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == 100.0
        counters = [e for e in payload if e["ph"] == "C"]
        assert counters[0]["args"] == {"active_flows": 3}
        assert trace["otherData"]["domain"] == "cycles"

    def test_wall_domain_includes_everything(self):
        trace = small_tracer().to_chrome(domain="wall")
        payload = validate_chrome_trace(trace)
        spans = [e for e in payload if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"segment[1]", "plan"}
        # Rebased to the first event at ts 0, in microseconds.
        assert min(e["ts"] for e in payload) == 0.0

    def test_tracks_become_named_threads(self):
        trace = small_tracer().to_chrome(domain="cycles")
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {"seg1", "run"}

    def test_metrics_snapshot_embedded(self):
        tracer = small_tracer()
        tracer.metrics.counter("flows.deactivated").inc(2)
        trace = tracer.to_chrome()
        assert (
            trace["otherData"]["metrics"]["flows.deactivated"]["value"] == 2
        )

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigurationError, match="domain"):
            export_chrome_trace([], domain="nonsense")

    def test_export_is_json_serializable(self):
        json.dumps(small_tracer().to_chrome())


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_span_without_dur(self):
        bad = {
            "traceEvents": [
                {"name": "s", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
            ]
        }
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(bad)

    def test_rejects_event_without_phase(self):
        bad = {"traceEvents": [{"name": "s", "ts": 0, "pid": 1, "tid": 1}]}
        with pytest.raises(ValueError, match="ph"):
            validate_chrome_trace(bad)

    def test_metadata_needs_no_tid(self):
        ok = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "args": {}}
            ]
        }
        assert validate_chrome_trace(ok) == []


class TestLaneAssignment:
    def test_nested_spans_share_a_lane(self):
        tracer = Tracer(clock=fake_clock())
        outer = tracer.begin_span("outer", track="exec", cycle=0)
        inner = tracer.begin_span("inner", track="exec", cycle=10)
        tracer.end_span(inner, cycle=20)
        tracer.end_span(outer, cycle=100)
        trace = tracer.to_chrome(domain="cycles")
        payload = validate_chrome_trace(trace)
        spans = [e for e in payload if e["ph"] == "X"]
        assert len({s["tid"] for s in spans}) == 1

    def test_partially_overlapping_spans_spill_to_lanes(self):
        tracer = Tracer(clock=fake_clock())
        a = tracer.begin_span("a", track="exec", cycle=0)
        b = tracer.begin_span("b", track="exec", cycle=50)
        tracer.end_span(a, cycle=80)
        tracer.end_span(b, cycle=120)
        trace = tracer.to_chrome(domain="cycles")
        payload = validate_chrome_trace(trace)  # nesting check passes
        spans = {e["name"]: e["tid"] for e in payload if e["ph"] == "X"}
        assert spans["a"] != spans["b"]
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"exec", "exec/1"} <= thread_names

    def test_sequential_spans_reuse_lane_zero(self):
        tracer = Tracer(clock=fake_clock())
        for i in range(3):
            span = tracer.begin_span(f"s{i}", track="exec", cycle=i * 100)
            tracer.end_span(span, cycle=i * 100 + 50)
        payload = validate_chrome_trace(tracer.to_chrome(domain="cycles"))
        spans = [e for e in payload if e["ph"] == "X"]
        assert len({s["tid"] for s in spans}) == 1

    def test_validator_rejects_overlap_on_one_tid(self):
        bad = {
            "traceEvents": [
                {
                    "name": "a",
                    "ph": "X",
                    "ts": 0,
                    "dur": 80,
                    "pid": 1,
                    "tid": 1,
                },
                {
                    "name": "b",
                    "ph": "X",
                    "ts": 50,
                    "dur": 70,
                    "pid": 1,
                    "tid": 1,
                },
            ]
        }
        with pytest.raises(ValueError, match="two open spans share tid"):
            validate_chrome_trace(bad)

    def test_validator_accepts_proper_nesting_on_one_tid(self):
        ok = {
            "traceEvents": [
                {
                    "name": "parent",
                    "ph": "X",
                    "ts": 0,
                    "dur": 100,
                    "pid": 1,
                    "tid": 1,
                },
                {
                    "name": "child",
                    "ph": "X",
                    "ts": 0,
                    "dur": 40,
                    "pid": 1,
                    "tid": 1,
                },
            ]
        }
        assert len(validate_chrome_trace(ok)) == 2


class TestWorkerTracks:
    """Merged worker batches land on per-pid tracks and keep both
    export domains valid — the acceptance criterion for the merged
    timeline."""

    @pytest.fixture(scope="class")
    def merged_tracer(self):
        from repro.exec import ProcessPoolBackend

        bench = build_benchmark("Snort", scale=0.05, seed=0)
        tracer = Tracer()
        with ProcessPoolBackend(workers=1) as backend:
            run_benchmark(
                bench, trace_bytes=8_192, observer=tracer, backend=backend
            )
        return tracer

    def test_worker_tracks_present(self, merged_tracer):
        worker_tracks = {
            t for t in merged_tracer.tracks() if t.startswith("pid")
        }
        assert worker_tracks
        assert any(":seg" in t for t in worker_tracks)

    @pytest.mark.parametrize("domain", ["cycles", "wall"])
    def test_both_domains_validate_with_worker_spans(
        self, merged_tracer, domain
    ):
        payload = validate_chrome_trace(
            merged_tracer.to_chrome(domain=domain)
        )
        assert any(
            e["ph"] == "X" and "args" in e and "pid" in e["args"]
            for e in payload
        )


class TestEndToEnd:
    """The acceptance-criteria trace: real run, real content."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        bench = build_benchmark("Snort", scale=0.05, seed=0)
        tracer = Tracer()
        run = run_benchmark(bench, trace_bytes=8_192, observer=tracer)
        return run, tracer

    def test_trace_validates(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        with open(path, "r", encoding="utf-8") as handle:
            payload = validate_chrome_trace(json.load(handle))
        assert payload

    def test_per_segment_spans_present(self, traced_run):
        run, tracer = traced_run
        payload = validate_chrome_trace(tracer.to_chrome())
        segment_spans = {
            e["name"]
            for e in payload
            if e["ph"] == "X" and e["name"].startswith("segment[")
        }
        assert len(segment_spans) == run.pap.num_segments

    def test_flow_lifecycle_events_present(self, traced_run):
        run, tracer = traced_run
        names = {e.name for e in tracer.events}
        assert "flow-spawn" in names
        dynamics = (
            run.pap.deactivations
            + run.pap.convergence_merges
            + run.pap.fiv_invalidations
        )
        assert dynamics > 0  # this workload exercises the machinery
        lifecycle = {"flow-deactivate", "flow-converge", "flow-fiv-kill"}
        assert lifecycle & names

    def test_cache_counters_present(self, traced_run):
        run, tracer = traced_run
        svc = run.pap.extra["svc"]
        assert svc["saves"] > 0
        assert svc["peak_occupancy"] > 0
        metrics = tracer.metrics.snapshot()
        assert metrics["svc.saves"]["value"] == svc["saves"]
        counter_names = {
            e.name for e in tracer.events if e.kind == "counter"
        }
        assert "svc_occupied" in counter_names
        assert "active_flows" in counter_names

    def test_host_decode_spans_in_cycle_domain(self, traced_run):
        _, tracer = traced_run
        decodes = [
            e for e in tracer.events if e.name.startswith("decode[")
        ]
        assert decodes
        assert all(e.cycle_duration > 0 for e in decodes)

    def test_run_carries_trace(self, traced_run):
        run, tracer = traced_run
        assert run.trace is tracer

    def test_text_profile_renders(self, traced_run):
        _, tracer = traced_run
        profile = tracer.text_profile()
        assert "PAP run profile" in profile
        assert "segment[" in profile
        assert "flow-spawn" in profile


class TestSweepTracing:
    def test_sweep_runs_carry_independent_traces(self):
        bench = build_benchmark("Bro217", scale=0.05, seed=0)
        sweep = tdm_slice_sweep(
            bench, slice_sizes=(64, 256), trace_bytes=2_048, trace=True
        )
        traces = [run.trace for run in sweep.values()]
        assert all(trace is not None for trace in traces)
        assert traces[0] is not traces[1]
        assert all(trace.events for trace in traces)

    def test_sweep_without_trace_flag_has_none(self):
        bench = build_benchmark("Bro217", scale=0.05, seed=0)
        sweep = tdm_slice_sweep(
            bench, slice_sizes=(256,), trace_bytes=2_048
        )
        assert all(run.trace is None for run in sweep.values())

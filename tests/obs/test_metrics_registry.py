"""Tests for the counter/gauge/histogram metrics registry."""

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("flows.deactivated")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_by_name(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2
        assert registry.counter("b").value == 0

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("svc.occupied")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("finish_cycles")
        for value in (1, 2, 5, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 108
        assert histogram.mean == 27.0
        assert histogram.min_value == 1
        assert histogram.max_value == 100
        # Power-of-two buckets: 1 -> e0, 2 -> e1, 5 -> e3, 100 -> e7.
        assert histogram.buckets == {0: 1, 1: 1, 3: 1, 7: 1}


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(10)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 3}
        assert snapshot["g"]["value"] == 1.5
        assert snapshot["h"]["count"] == 1
        json.dumps(snapshot)  # must serialize

    def test_empty_histogram_snapshot_has_null_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snapshot = registry.snapshot()
        assert snapshot["h"]["min"] is None
        assert snapshot["h"]["max"] is None

    def test_snapshot_keys_globally_sorted(self):
        # Interleave types and creation orders: serialized snapshots
        # must diff cleanly across runs, so ordering is by name alone.
        registry = MetricsRegistry()
        registry.histogram("zz.hist").observe(1)
        registry.counter("mm.count").inc()
        registry.gauge("aa.gauge").set(2.0)
        registry.counter("bb.count").inc()
        assert list(registry.snapshot()) == [
            "aa.gauge",
            "bb.count",
            "mm.count",
            "zz.hist",
        ]

    def test_snapshot_order_independent_of_creation_order(self):
        import json

        first = MetricsRegistry()
        first.counter("a").inc()
        first.gauge("b").set(1.0)
        second = MetricsRegistry()
        second.gauge("b").set(1.0)
        second.counter("a").inc()
        assert json.dumps(first.snapshot()) == json.dumps(second.snapshot())

    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3


class TestNullRegistry:
    def test_hands_out_shared_noops(self):
        assert NULL_REGISTRY.counter("x") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("x") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("x") is NULL_HISTOGRAM

    def test_noop_instruments_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(42)
        NULL_HISTOGRAM.observe(7)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_null_registry_stays_empty(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        assert len(registry) == 0
        assert registry.snapshot() == {}
        assert not registry.enabled

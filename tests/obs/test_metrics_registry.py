"""Tests for the counter/gauge/histogram metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("flows.deactivated")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_by_name(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2
        assert registry.counter("b").value == 0

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("svc.occupied")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("finish_cycles")
        for value in (1, 2, 5, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 108
        assert histogram.mean == 27.0
        assert histogram.min_value == 1
        assert histogram.max_value == 100
        # Power-of-two buckets: 1 -> e0, 2 -> e1, 5 -> e3, 100 -> e7.
        assert histogram.buckets == {0: 1, 1: 1, 3: 1, 7: 1}


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(10)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 3}
        assert snapshot["g"]["value"] == 1.5
        assert snapshot["h"]["count"] == 1
        json.dumps(snapshot)  # must serialize

    def test_empty_histogram_snapshot_has_null_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snapshot = registry.snapshot()
        assert snapshot["h"]["min"] is None
        assert snapshot["h"]["max"] is None

    def test_snapshot_keys_globally_sorted(self):
        # Interleave types and creation orders: serialized snapshots
        # must diff cleanly across runs, so ordering is by name alone.
        registry = MetricsRegistry()
        registry.histogram("zz.hist").observe(1)
        registry.counter("mm.count").inc()
        registry.gauge("aa.gauge").set(2.0)
        registry.counter("bb.count").inc()
        assert list(registry.snapshot()) == [
            "aa.gauge",
            "bb.count",
            "mm.count",
            "zz.hist",
        ]

    def test_snapshot_order_independent_of_creation_order(self):
        import json

        first = MetricsRegistry()
        first.counter("a").inc()
        first.gauge("b").set(1.0)
        second = MetricsRegistry()
        second.gauge("b").set(1.0)
        second.counter("a").inc()
        assert json.dumps(first.snapshot()) == json.dumps(second.snapshot())

    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3


class TestStrictJson:
    def test_never_set_gauge_snapshot_is_strict_json(self):
        # Regression: the -inf max sentinel used to leak into the
        # snapshot as -Infinity, which is not strict JSON.
        registry = MetricsRegistry()
        registry.gauge("g")  # created, never set
        registry.histogram("h")  # created, never observed
        snapshot = registry.snapshot()
        assert snapshot["g"]["max"] is None
        json.dumps(snapshot, allow_nan=False)

    def test_gauge_max_appears_after_first_set(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(-5.0)
        assert registry.snapshot()["g"]["max"] == -5.0

    def test_gauge_observed_max_none_until_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert gauge.observed_max is None
        gauge.set(3.0)
        assert gauge.observed_max == 3.0


class TestHistogramBuckets:
    def test_snapshot_includes_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1, 2, 5, 100):
            histogram.observe(value)
        snapshot = registry.snapshot()["h"]
        # String keys (JSON object keys) sorted by exponent.
        assert snapshot["buckets"] == {"0": 1, "1": 1, "3": 1, "7": 1}
        json.dumps(snapshot, allow_nan=False)

    def test_empty_histogram_has_empty_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        snapshot = registry.snapshot()["h"]
        assert snapshot["buckets"] == {}
        assert snapshot["quantiles"] is None


class TestQuantiles:
    def test_empty_histogram_quantile_is_none(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.quantiles() is None

    def test_quantile_rejects_out_of_range(self):
        histogram = Histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_single_bucket_clamps_to_observed_bounds(self):
        histogram = Histogram("h")
        histogram.observe(100)
        # One observation: every quantile is that exact value (the
        # bucket interpolation is clamped to observed min/max).
        assert histogram.quantile(0.0) == 100
        assert histogram.quantile(0.5) == 100
        assert histogram.quantile(1.0) == 100

    def test_quantiles_are_monotone(self):
        histogram = Histogram("h")
        for value in (1, 3, 9, 30, 100, 500, 2000, 5000):
            histogram.observe(value)
        summary = histogram.quantiles()
        assert summary is not None
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert histogram.min_value <= summary["p50"]
        assert summary["p99"] <= histogram.max_value

    def test_p99_lands_in_top_bucket(self):
        histogram = Histogram("h")
        for _ in range(98):
            histogram.observe(10)
        histogram.observe(5000)
        histogram.observe(5000)
        summary = histogram.quantiles()
        assert summary["p50"] <= 16  # 10 lives in the (8, 16] bucket
        assert summary["p99"] > 16

    def test_snapshot_quantiles_match_method(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (4, 8, 15, 16, 23, 42):
            histogram.observe(value)
        assert registry.snapshot()["h"]["quantiles"] == (
            histogram.quantiles()
        )


class TestNullRegistry:
    def test_hands_out_shared_noops(self):
        assert NULL_REGISTRY.counter("x") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("x") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("x") is NULL_HISTOGRAM

    def test_noop_instruments_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(42)
        NULL_HISTOGRAM.observe(7)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_null_registry_stays_empty(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        assert len(registry) == 0
        assert registry.snapshot() == {}
        assert not registry.enabled

"""CLI surface for run telemetry: --ledger/--metrics-export/
--drift-baseline on ``repro run`` and the ``repro obs`` subcommands."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import parse_openmetrics, read_ledger


@pytest.fixture(scope="module")
def run_artifacts(tmp_path_factory):
    """One instrumented run shared by the read-only obs tests."""
    directory = tmp_path_factory.mktemp("obs-cli")
    ledger = directory / "run.jsonl"
    metrics = directory / "run.prom"
    code = main(
        [
            "run",
            "Bro217",
            "--scale",
            "0.05",
            "--trace-bytes",
            "4096",
            "--ledger",
            str(ledger),
            "--metrics-export",
            str(metrics),
        ]
    )
    assert code == 0
    return ledger, metrics


class TestParser:
    def test_run_telemetry_defaults(self):
        args = build_parser().parse_args(["run", "Bro217"])
        assert args.ledger is None
        assert args.metrics_export is None
        assert args.drift_baseline is None
        assert args.drift_tolerance == 0.10

    def test_run_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "Bro217",
                "--ledger",
                "run.jsonl",
                "--metrics-export",
                "run.prom",
                "--drift-baseline",
                "ANALYZE.json",
                "--drift-tolerance",
                "0.25",
            ]
        )
        assert args.ledger == "run.jsonl"
        assert args.metrics_export == "run.prom"
        assert args.drift_baseline == "ANALYZE.json"
        assert args.drift_tolerance == 0.25

    def test_run_help_mentions_telemetry_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        helptext = capsys.readouterr().out
        assert "--ledger" in helptext
        assert "--metrics-export" in helptext
        assert "--drift-baseline" in helptext
        assert "crash bundle" in helptext

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_summary_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["obs", "summary", "x.jsonl", "--format", "xml"]
            )


class TestRunWithTelemetry:
    def test_ledger_is_valid_and_announced(
        self, run_artifacts, capsys
    ):
        ledger, _ = run_artifacts
        records = read_ledger(str(ledger))
        assert records[0]["kind"] == "open"
        assert records[-1]["kind"] == "close"

    def test_metrics_export_parses(self, run_artifacts):
        _, metrics = run_artifacts
        samples = parse_openmetrics(metrics.read_text())
        assert samples["repro_exec_dispatches_total"] >= 1
        assert any("segment_finish_cycles" in name for name in samples)

    def test_json_format_keeps_stdout_clean(self, tmp_path, capsys):
        ledger = tmp_path / "run.jsonl"
        code = main(
            [
                "run",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--ledger",
                str(ledger),
                "--format",
                "json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)  # stdout is pure JSON
        assert summary["benchmark"] == "Bro217"
        assert "ledger written" in captured.err


class TestRunDrift:
    def _analyze(self, tmp_path, capsys) -> str:
        path = tmp_path / "ANALYZE.json"
        code = main(
            [
                "analyze",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return str(path)

    def _run(self, extra):
        return [
            "run",
            "Bro217",
            "--scale",
            "0.05",
            "--trace-bytes",
            "4096",
            "--format",
            "json",
        ] + extra

    def test_matching_prediction_is_quiet(self, tmp_path, capsys):
        artifact = self._analyze(tmp_path, capsys)
        code = main(self._run(["--drift-baseline", artifact]))
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["drift"] == []

    def test_perturbed_prediction_fires_ap401(self, tmp_path, capsys):
        artifact = self._analyze(tmp_path, capsys)
        payload = json.loads(open(artifact).read())
        prediction = payload["workloads"]["Bro217@r1"]["prediction"]
        prediction["enumeration_cycles"] = int(
            prediction["enumeration_cycles"] * 1.5
        )
        with open(artifact, "w") as handle:
            json.dump(payload, handle)
        code = main(
            self._run(
                ["--drift-baseline", artifact, "--drift-tolerance", "0.1"]
            )
        )
        assert code == 0  # drift warns, never fails the run
        summary = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in summary["drift"]] == ["AP401"]

    def test_missing_baseline_exits_one(self, tmp_path, capsys):
        code = main(
            self._run(
                ["--drift-baseline", str(tmp_path / "nope.json")]
            )
        )
        assert code == 1
        assert "cannot load" in capsys.readouterr().err


class TestObsSummary:
    def test_ledger_summary_text(self, run_artifacts, capsys):
        ledger, _ = run_artifacts
        assert main(["obs", "summary", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "run              :" in out
        assert "sealed yes" in out

    def test_ledger_summary_json(self, run_artifacts, capsys):
        ledger, _ = run_artifacts
        assert main(["obs", "summary", str(ledger), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["sealed"] is True
        assert summary["kinds"]["open"] == 1

    def test_openmetrics_summary(self, run_artifacts, capsys):
        _, metrics = run_artifacts
        assert main(["obs", "summary", str(metrics)]) == 0
        assert "samples" in capsys.readouterr().out

    def test_invalid_ledger_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 99, "kind": "open"}\n')
        assert main(["obs", "summary", str(bad)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope")]) == 1

    def test_serial_ledger_has_no_workers_section(
        self, run_artifacts, capsys
    ):
        ledger, _ = run_artifacts
        assert main(["obs", "summary", str(ledger)]) == 0
        assert "workers" not in capsys.readouterr().out


class TestObsSummaryWorkers:
    @pytest.fixture(scope="class")
    def process_ledger(self, tmp_path_factory):
        """One process-backend run whose ledger carries worker batches."""
        ledger = tmp_path_factory.mktemp("obs-workers") / "run.jsonl"
        code = main(
            [
                "run",
                "Bro217",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--backend",
                "process",
                "--workers",
                "1",
                "--ledger",
                str(ledger),
            ]
        )
        assert code == 0
        return ledger

    def test_text_summary_grows_worker_section(
        self, process_ledger, capsys
    ):
        assert main(["obs", "summary", str(process_ledger)]) == 0
        out = capsys.readouterr().out
        assert "workers          :" in out
        assert "worker wall      :" in out
        assert "compile" in out and "hit" in out

    def test_json_summary_carries_worker_rollup(
        self, process_ledger, capsys
    ):
        code = main(
            ["obs", "summary", str(process_ledger), "--format", "json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        workers = summary["workers"]
        assert workers["batches"] >= 1
        assert workers["records"] >= workers["batches"]
        assert workers["dispatches"] == workers["batches"]
        assert len(workers["pids"]) == 1
        per_pid = workers["per_pid"][str(workers["pids"][0])]
        assert per_pid["compile_hits"] + per_pid["compile_misses"] == (
            per_pid["batches"]
        )

    def test_worker_records_carry_lineage_in_ledger(self, process_ledger):
        records = read_ledger(str(process_ledger))
        run_id = records[0]["run"]
        worker_lines = [
            r
            for r in records
            if str(r.get("track", "")).startswith("pid")
        ]
        assert worker_lines
        for record in worker_lines:
            args = record.get("args") or {}
            assert args.get("pid")
            assert args.get("parent_span") is not None
            assert args.get("run") == run_id


class TestObsExport:
    def test_export_openmetrics_to_file(
        self, run_artifacts, tmp_path, capsys
    ):
        ledger, _ = run_artifacts
        out = tmp_path / "export.prom"
        code = main(["obs", "export", str(ledger), "-o", str(out)])
        assert code == 0
        samples = parse_openmetrics(out.read_text())
        assert samples["repro_exec_dispatches_total"] >= 1

    def test_export_json_to_stdout(self, run_artifacts, capsys):
        ledger, _ = run_artifacts
        code = main(
            ["obs", "export", str(ledger), "--format", "json"]
        )
        assert code == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["exec.dispatches"]["type"] == "counter"

    def test_unsealed_ledger_exits_one(self, run_artifacts, tmp_path, capsys):
        ledger, _ = run_artifacts
        lines = ledger.read_text().splitlines()
        truncated = tmp_path / "unsealed.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        assert main(["obs", "export", str(truncated)]) == 1
        assert "no close record" in capsys.readouterr().err


class TestObsDiff:
    def test_identical_exits_zero(self, run_artifacts, capsys):
        ledger, _ = run_artifacts
        code = main(["obs", "diff", str(ledger), str(ledger)])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_ledger_vs_its_own_export_is_identical(
        self, run_artifacts, capsys
    ):
        # The run's --metrics-export snapshots slightly *after* the
        # ledger close record (the close itself is a record), so diff
        # the ledger against an `obs export` of itself instead.
        ledger, _ = run_artifacts
        export = ledger.parent / "roundtrip.prom"
        assert main(["obs", "export", str(ledger), "-o", str(export)]) == 0
        capsys.readouterr()
        code = main(["obs", "diff", str(ledger), str(export)])
        assert code == 0

    def test_different_runs_exit_one(
        self, run_artifacts, tmp_path, capsys
    ):
        ledger, _ = run_artifacts
        other = tmp_path / "other.jsonl"
        code = main(
            [
                "run",
                "Ranges1",
                "--scale",
                "0.05",
                "--trace-bytes",
                "4096",
                "--ledger",
                str(other),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(ledger), str(other)]) == 1
        out = capsys.readouterr().out
        assert "changed" in out or "added" in out

    def test_missing_operand_exits_one(self, run_artifacts, tmp_path):
        ledger, _ = run_artifacts
        assert (
            main(["obs", "diff", str(ledger), str(tmp_path / "nope")])
            == 1
        )

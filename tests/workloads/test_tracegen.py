"""Unit tests for trace generation."""

import pytest

from repro.automata import builder
from repro.automata.anml import Automaton
from repro.automata.execution import run_automaton
from repro.errors import ConfigurationError
from repro.workloads.tracegen import (
    alphabet_trace,
    embed_matches,
    mixed_trace,
    pm_trace,
)


@pytest.fixture
def ruleset():
    automaton = Automaton()
    hub = builder.star_self_loop(automaton)
    builder.attach_pattern(automaton, hub, builder.classes_for("needle"))
    builder.attach_pattern(automaton, hub, builder.classes_for("haystk"))
    return automaton


class TestPmTrace:
    def test_length_and_determinism(self, ruleset):
        first = pm_trace(ruleset, 500, seed=3)
        second = pm_trace(ruleset, 500, seed=3)
        assert len(first) == 500
        assert first == second
        assert pm_trace(ruleset, 500, seed=4) != first

    def test_high_pm_drives_matches(self, ruleset):
        matchy = pm_trace(ruleset, 3000, pm=0.95, seed=1)
        random_ish = pm_trace(ruleset, 3000, pm=0.0, seed=1)
        deep = len(run_automaton(ruleset, matchy).reports)
        shallow = len(run_automaton(ruleset, random_ish).reports)
        assert deep >= shallow

    def test_pm_drives_activity_not_just_reports(self, ruleset):
        matchy = pm_trace(ruleset, 2000, pm=0.9, seed=5)
        cold = pm_trace(ruleset, 2000, pm=0.0, seed=5)
        assert (
            run_automaton(ruleset, matchy).transitions
            > run_automaton(ruleset, cold).transitions
        )

    def test_invalid_pm_rejected(self, ruleset):
        with pytest.raises(ConfigurationError):
            pm_trace(ruleset, 10, pm=1.5)

    def test_zero_length(self, ruleset):
        assert pm_trace(ruleset, 0) == b""

    def test_automaton_without_starts(self):
        assert len(pm_trace(Automaton(), 16, seed=1)) == 16


class TestAlphabetTraces:
    def test_alphabet_trace_stays_in_alphabet(self):
        trace = alphabet_trace(b"ACGT", 200, seed=2)
        assert len(trace) == 200
        assert set(trace) <= set(b"ACGT")

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            alphabet_trace(b"", 10)

    def test_mixed_trace_noise_floor(self):
        trace = mixed_trace(b"A", 5000, noise=0.2, seed=1)
        noise_bytes = sum(1 for b in trace if b != ord("A"))
        assert 500 < noise_bytes < 1500  # ~20% +- slack

    def test_mixed_trace_zero_noise(self):
        trace = mixed_trace(b"XY", 100, noise=0.0, seed=1)
        assert set(trace) <= set(b"XY")

    def test_mixed_trace_validates_noise(self):
        with pytest.raises(ConfigurationError):
            mixed_trace(b"A", 10, noise=2.0)


class TestEmbedMatches:
    def test_snippets_present(self):
        base = alphabet_trace(b"z", 1000, seed=0)
        out = embed_matches(base, [b"needle"], every=100, seed=1)
        assert len(out) == len(base)
        assert out.count(b"needle") >= 8

    def test_no_snippets_is_identity(self):
        base = b"abcdef"
        assert embed_matches(base, [], every=2) == base

    def test_snippet_truncated_at_end(self):
        out = embed_matches(b"zzzz", [b"longsnippet"], every=1, seed=0)
        assert len(out) == 4

    def test_interval_validated(self):
        with pytest.raises(ConfigurationError):
            embed_matches(b"zz", [b"a"], every=0)

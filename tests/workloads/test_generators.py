"""Unit tests for the domain workload generators."""

import random


from repro.automata.analysis import AutomatonAnalysis
from repro.automata.execution import run_automaton
from repro.workloads.entityres import (
    entity_automaton,
    entityresolution_benchmark,
    name_trace,
)
from repro.workloads.fermi import (
    COORDINATE_HIGH,
    COORDINATE_LOW,
    fermi_benchmark,
    hit_trace,
    trajectory_automaton,
)
from repro.workloads.protomata import (
    AMINO_ACIDS,
    protein_trace,
    protomata_benchmark,
    random_motif,
)
from repro.workloads.randomforest import (
    VECTOR_SEPARATOR,
    feature_trace,
    randomforest_benchmark,
    tree_automaton,
)
from repro.workloads.regexgen import RegexSuiteParams, generate_ruleset
from repro.workloads.spm import (
    TRANSACTION_DELIMITER,
    spm_benchmark,
    spm_pattern,
    transaction_trace,
)


class TestRegexGen:
    def test_one_component_per_group(self):
        params = RegexSuiteParams(num_groups=5, patterns_per_group=6)
        automaton, patterns = generate_ruleset(params, seed=1)
        assert len(patterns) == 30
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 5

    def test_deterministic_by_seed(self):
        params = RegexSuiteParams(num_groups=2, patterns_per_group=3)
        first, _ = generate_ruleset(params, seed=9)
        second, _ = generate_ruleset(params, seed=9)
        assert first.num_states == second.num_states

    def test_dotstar_fraction_adds_full_states(self):
        plain = RegexSuiteParams(num_groups=4, patterns_per_group=10)
        dotty = RegexSuiteParams(
            num_groups=4, patterns_per_group=10, dotstar_fraction=0.9
        )
        plain_auto, _ = generate_ruleset(plain, seed=2)
        dotty_auto, _ = generate_ruleset(dotty, seed=2)

        def full_non_start(automaton):
            return sum(
                1
                for s in automaton.states()
                if s.label.is_full() and not automaton.has_self_loop(s.sid)
            )

        # Mid-pattern .* states self-loop too; count full-label states
        # beyond the per-group hubs instead.
        def full_states(automaton):
            return sum(1 for s in automaton.states() if s.label.is_full())

        assert full_states(dotty_auto) > full_states(plain_auto)
        del full_non_start

    def test_patterns_match_their_own_text(self):
        params = RegexSuiteParams(
            num_groups=2, patterns_per_group=4, prefix_length=2
        )
        automaton, patterns = generate_ruleset(params, seed=4)
        literal = next(
            p for p in patterns if all(c.isalnum() for c in p)
        )
        reports = run_automaton(automaton, literal.encode()).report_set
        assert reports


class TestSpm:
    def test_pattern_shape(self):
        assert spm_pattern([b"ab", b"cd"]) == "ab[^|]*cd"

    def test_gap_match_within_transaction(self):
        automaton, items = spm_benchmark(num_patterns=1, seed=0)
        i1, i2, i3, i4 = items[0]
        stream = i1 + b"xx" + i2 + i3 + b"y" + i4
        assert run_automaton(automaton, stream).report_set

    def test_delimiter_resets_partial_matches(self):
        automaton, items = spm_benchmark(num_patterns=1, seed=0)
        i1, i2, i3, i4 = items[0]
        stream = i1 + i2 + i3 + b"|" + i4
        assert not run_automaton(automaton, stream).report_set

    def test_one_component_per_candidate(self):
        automaton, _ = spm_benchmark(num_patterns=7, seed=1)
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 7

    def test_transaction_trace_is_delimited(self):
        _, items = spm_benchmark(num_patterns=3, seed=1)
        stream = transaction_trace(items, 2000, seed=2)
        assert stream.count(bytes([TRANSACTION_DELIMITER])) > 10

    def test_trace_produces_supported_patterns(self):
        automaton, items = spm_benchmark(num_patterns=10, seed=3)
        stream = transaction_trace(items, 8000, seed=4, hit_fraction=0.5)
        assert run_automaton(automaton, stream).report_set


class TestFermi:
    def test_trajectory_windows(self):
        automaton = trajectory_automaton([0x40, 0x44], 2, report_code=5)
        reports = run_automaton(automaton, bytes([0x41, 0x45])).report_set
        assert {r.code for r in reports} == {5}
        miss = run_automaton(automaton, bytes([0x41, 0x50])).report_set
        assert not miss

    def test_wide_windows_dominate_ranges(self):
        automaton, _ = fermi_benchmark(num_trajectories=20, seed=1)
        analysis = AutomatonAnalysis(automaton)
        mid = (COORDINATE_LOW + COORDINATE_HIGH) // 2
        assert len(analysis.symbol_range(mid)) > automaton.num_states * 0.2

    def test_hit_trace_in_coordinate_range(self):
        trace = hit_trace(500, seed=1)
        assert all(COORDINATE_LOW <= b <= COORDINATE_HIGH for b in trace)

    def test_component_count(self):
        automaton, centers = fermi_benchmark(num_trajectories=9, seed=2)
        assert len(centers) == 9
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 9


class TestRandomForest:
    def test_trees_are_single_components(self):
        automaton = randomforest_benchmark(num_trees=6, seed=1)
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 6

    def test_classification_fires_per_vector(self):
        rng = random.Random(0)
        tree = tree_automaton(
            depth=2, num_leaves=8, rng=rng, report_code=0
        )
        # Brute-force a matching 2-byte vector.
        hit = None
        for a in range(0x20, 0x7F):
            for b in range(0x20, 0x7F):
                if run_automaton(tree, bytes([a, b])).report_set:
                    hit = bytes([a, b])
                    break
            if hit:
                break
        assert hit is not None
        # The same vector must classify again after a separator.
        stream = hit + bytes([VECTOR_SEPARATOR]) + hit
        offsets = {
            r.offset for r in run_automaton(tree, stream).report_set
        }
        assert offsets == {1, 4}

    def test_feature_trace_has_separators(self):
        trace = feature_trace(1000, vector_size=10, seed=1)
        assert trace.count(bytes([VECTOR_SEPARATOR])) >= 80


class TestProtomata:
    def test_motif_alphabet(self):
        rng = random.Random(0)
        motif = random_motif(rng)
        stripped = motif.replace("[", "").replace("]", "")
        assert all(c in AMINO_ACIDS for c in stripped)

    def test_group_components(self):
        automaton, motifs = protomata_benchmark(num_groups=4, seed=1)
        assert len(motifs) == 16
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 4

    def test_protein_trace_mostly_residues(self):
        trace = protein_trace(2000, seed=1)
        residues = sum(1 for b in trace if chr(b) in AMINO_ACIDS)
        assert residues > 1800


class TestEntityResolution:
    def test_orderings_and_abbreviations_match(self):
        automaton = entity_automaton(["ann", "roe"], report_code=3)
        for text in (b"ann roe", b"roe ann", b"a. roe"):
            reports = run_automaton(automaton, b"xx" + text).report_set
            assert {r.code for r in reports} == {3}, text

    def test_components_are_dense_and_few(self):
        automaton, entities = entityresolution_benchmark(
            num_entities=10, entities_per_component=5, seed=1
        )
        assert len(entities) == 10
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 2

    def test_name_trace_contains_entities(self):
        automaton, entities = entityresolution_benchmark(
            num_entities=6, entities_per_component=3, seed=2
        )
        trace = name_trace(entities, 4000, seed=3, hit_fraction=0.4)
        assert run_automaton(automaton, trace).report_set

"""Tests for loading/exporting benchmarks as ANML files."""

import pytest

from repro.ap.sequential import run_sequential
from repro.sim.runner import run_benchmark
from repro.workloads.anml_io import (
    export_benchmark,
    load_anml_benchmark,
    roundtrip_benchmark,
)
from repro.workloads.suite import build_benchmark


@pytest.fixture(scope="module")
def bench():
    return build_benchmark("Bro217", scale=0.05, seed=0)


class TestExportImport:
    def test_roundtrip_preserves_structure(self, bench, tmp_path_factory):
        directory = tmp_path_factory.mktemp("anml")
        loaded = roundtrip_benchmark(bench, directory)
        assert loaded.automaton.num_states == bench.automaton.num_states
        assert loaded.paper.components == len(
            __import__(
                "repro.automata.analysis", fromlist=["AutomatonAnalysis"]
            ).AutomatonAnalysis(bench.automaton).connected_components()
        )

    def test_roundtrip_preserves_matching(self, bench, tmp_path_factory):
        directory = tmp_path_factory.mktemp("anml")
        loaded = roundtrip_benchmark(bench, directory)
        data = loaded.trace(4_096, 1)
        original = run_sequential(bench.automaton, data)
        reloaded = run_sequential(loaded.automaton, data)
        assert reloaded.reports == original.reports

    def test_loaded_benchmark_runs_through_harness(
        self, bench, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("anml")
        loaded = roundtrip_benchmark(bench, directory)
        run = run_benchmark(loaded, ranks=1, trace_bytes=4_096)
        assert run.reports_match

    def test_trace_file_wraps(self, bench, tmp_path_factory):
        directory = tmp_path_factory.mktemp("anml")
        loaded = roundtrip_benchmark(bench, directory)
        long = loaded.trace(40_000, 1)
        assert len(long) == 40_000

    def test_missing_trace_rejected_on_use(self, bench, tmp_path):
        anml_path = tmp_path / "machine.anml"
        export_benchmark(bench, anml_path)
        loaded = load_anml_benchmark(anml_path)
        with pytest.raises(ValueError, match="without a trace"):
            loaded.trace(100, 1)

    def test_half_core_override(self, bench, tmp_path):
        anml_path = tmp_path / "machine.anml"
        export_benchmark(bench, anml_path)
        loaded = load_anml_benchmark(anml_path, half_cores=3)
        assert loaded.half_cores == 3

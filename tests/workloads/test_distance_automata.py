"""Oracle-checked tests for the Hamming and Levenshtein automata."""

import random

import pytest

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.execution import run_automaton
from repro.errors import ConfigurationError
from repro.workloads.hamming import (
    hamming_automaton,
    hamming_benchmark,
    hamming_matches,
)
from repro.workloads.levenshtein import (
    levenshtein_automaton,
    levenshtein_benchmark,
    levenshtein_matches,
)


class TestHammingOracle:
    @pytest.mark.parametrize("distance", [0, 1, 2])
    def test_matches_equal_bruteforce(self, distance):
        rng = random.Random(distance)
        reference = b"ACGTAC"
        automaton = hamming_automaton(reference, distance)
        for _ in range(20):
            data = bytes(rng.choice(b"ACGT") for _ in range(50))
            got = {r.offset for r in run_automaton(automaton, data).report_set}
            assert got == hamming_matches(reference, data, distance)

    def test_exact_match_at_distance_zero(self):
        automaton = hamming_automaton(b"ACG", 0)
        reports = run_automaton(automaton, b"xACGx").report_set
        assert {r.offset for r in reports} == {3}

    def test_distance_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            hamming_automaton(b"ACG", 3)
        with pytest.raises(ConfigurationError):
            hamming_automaton(b"", 0)

    def test_anchored_variant(self):
        automaton = hamming_automaton(b"ACG", 1, unanchored=False)
        hit = run_automaton(automaton, b"ACC").report_set
        miss = run_automaton(automaton, b"xACG").report_set
        assert hit and not miss

    def test_report_code(self):
        automaton = hamming_automaton(b"ACG", 1, report_code=42)
        reports = run_automaton(automaton, b"ACG").report_set
        assert {r.code for r in reports} == {42}

    def test_state_count_grid(self):
        # length 6, distance 2: match states sum(min(i,2)+1) and miss
        # states sum(min(i+1,2) for i>=0, from level 1), plus the hub.
        automaton = hamming_automaton(b"ACGTAC", 2)
        assert automaton.num_states == 27

    def test_mismatch_states_dominate_range(self):
        automaton, _ = hamming_benchmark(num_machines=4, pattern_length=8, distance=2)
        analysis = AutomatonAnalysis(automaton)
        # A non-DNA byte hits every complement-labeled (miss) state.
        rng = analysis.symbol_range(ord("z"))
        assert len(rng) > automaton.num_states * 0.3


class TestLevenshteinOracle:
    @pytest.mark.parametrize("distance", [1, 2])
    def test_matches_equal_dp(self, distance):
        rng = random.Random(distance + 10)
        reference = b"ACGTA"
        automaton = levenshtein_automaton(reference, distance)
        for _ in range(20):
            data = bytes(rng.choice(b"ACGT") for _ in range(40))
            got = {r.offset for r in run_automaton(automaton, data).report_set}
            assert got == levenshtein_matches(reference, data, distance)

    def test_insertion_detected(self):
        automaton = levenshtein_automaton(b"ACGT", 1)
        # ACXGT = ACGT with one inserted X.
        reports = run_automaton(automaton, b"ACXGT").report_set
        assert 4 in {r.offset for r in reports}

    def test_deletion_detected(self):
        automaton = levenshtein_automaton(b"ACGT", 1)
        reports = run_automaton(automaton, b"AGT").report_set
        assert 2 in {r.offset for r in reports}

    def test_substitution_detected(self):
        automaton = levenshtein_automaton(b"ACGT", 1)
        reports = run_automaton(automaton, b"AXGT").report_set
        assert 3 in {r.offset for r in reports}

    def test_beyond_distance_rejected(self):
        automaton = levenshtein_automaton(b"ACGT", 1)
        reports = run_automaton(automaton, b"XXGX").report_set
        assert 3 not in {r.offset for r in reports}

    def test_distance_ge_length_rejected(self):
        with pytest.raises(ConfigurationError):
            levenshtein_automaton(b"AC", 2)


class TestBenchmarkBuilders:
    def test_hamming_benchmark_components(self):
        automaton, references = hamming_benchmark(
            num_machines=5, pattern_length=6, distance=1
        )
        assert len(references) == 5
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 5

    def test_levenshtein_benchmark_bridged_components(self):
        automaton, references = levenshtein_benchmark(
            num_components=3,
            patterns_per_component=2,
            pattern_length=6,
            distance=1,
        )
        assert len(references) == 6
        analysis = AutomatonAnalysis(automaton)
        assert len(analysis.connected_components()) == 3

    def test_bridge_is_semantically_inert(self):
        rng = random.Random(0)
        bridged, references = levenshtein_benchmark(
            num_components=1,
            patterns_per_component=2,
            pattern_length=5,
            distance=1,
            seed=3,
        )
        data = bytes(rng.choice(b"ACGT") for _ in range(120))
        got = {
            (r.offset, r.code)
            for r in run_automaton(bridged, data).report_set
        }
        expected = set()
        for code, reference in enumerate(references):
            for offset in levenshtein_matches(reference, data, 1):
                expected.add((offset, code))
        assert got == expected

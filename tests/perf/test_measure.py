"""Tests for wall-clock measurement and median/MAD summaries."""

import pytest

from repro.perf.measure import (
    WallClockStats,
    measure_wall,
    summarize_samples,
)


class TestSummarize:
    def test_median_and_mad(self):
        stats = summarize_samples([1.0, 2.0, 3.0, 100.0, 2.5], warmup=1)
        assert stats.median_s == 2.5
        # Deviations: 1.5, 0.5, 0.5, 97.5, 0.0 -> median 0.5 (robust to
        # the 100.0 outlier where mean/stddev would not be).
        assert stats.mad_s == 0.5
        assert stats.repeats == 5
        assert stats.warmup == 1

    def test_single_sample_has_zero_mad(self):
        stats = summarize_samples([0.25])
        assert stats.median_s == 0.25
        assert stats.mad_s == 0.0

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="empty"):
            summarize_samples([])

    def test_round_trip_through_dict(self):
        stats = summarize_samples([1.0, 2.0], warmup=2)
        assert WallClockStats.from_dict(stats.to_dict()) == stats


class TestMeasureWall:
    def test_counts_calls(self):
        calls = []
        result, stats = measure_wall(
            lambda: calls.append(1) or len(calls), warmup=2, repeats=3
        )
        assert len(calls) == 5
        assert result == 5  # last pass's return value
        assert stats.repeats == 3
        assert stats.warmup == 2
        assert len(stats.samples_s) == 3
        assert all(s >= 0 for s in stats.samples_s)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            measure_wall(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure_wall(lambda: None, warmup=-1)

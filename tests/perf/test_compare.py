"""Tests for the dual-domain comparison engine."""

import pytest

from repro.perf.artifact import BenchmarkRecord, PerfReport
from repro.perf.compare import (
    ChangeKind,
    PerfDiff,
    TolerancePolicy,
    compare_reports,
)
from repro.perf.measure import WallClockStats


def record(key="A@r1", wall=None, **cycles):
    base = {
        "baseline_cycles": 4_000,
        "pap_cycles": 1_000,
        "speedup": 4.0,
        "reports_match": True,
    }
    base.update(cycles)
    return BenchmarkRecord(
        key=key,
        name=key.split("@")[0],
        ranks=1,
        trace_bytes=8_192,
        cycles=base,
        wall=wall,
    )


def report(label, *records):
    out = PerfReport(label=label)
    for rec in records:
        out.add(rec)
    return out


def wall(median, mad=0.0):
    return WallClockStats(median, mad, repeats=3, warmup=1)


class TestCycleDomain:
    def test_identical_reports_are_clean(self):
        diff = compare_reports(
            report("a", record()), report("b", record())
        )
        assert diff.clean
        assert diff.changes == []

    def test_any_cycle_drift_is_a_regression(self):
        diff = compare_reports(
            report("a", record(pap_cycles=1_000)),
            report("b", record(pap_cycles=1_001)),
        )
        assert [c.kind for c in diff.changes] == [ChangeKind.REGRESSION]
        change = diff.regressions[0]
        assert change.metric == "pap_cycles"
        assert change.domain == "cycles"
        assert "pap_cycles" in change.describe()

    def test_faster_cycles_still_flagged(self):
        # Cycle metrics are fidelity: an unexplained improvement is
        # still drift and must force a deliberate re-baseline.
        diff = compare_reports(
            report("a", record(pap_cycles=1_000)),
            report("b", record(pap_cycles=900)),
        )
        assert len(diff.regressions) == 1

    def test_zero_cycle_runs_compare_without_error(self):
        base = record(pap_cycles=0, baseline_cycles=0, speedup=1.0)
        diff = compare_reports(report("a", base), report("b", base))
        assert diff.clean
        drifted = record(pap_cycles=5, baseline_cycles=0, speedup=1.0)
        diff = compare_reports(report("a", base), report("b", drifted))
        assert len(diff.regressions) == 1
        assert "baseline was 0" in diff.regressions[0].detail

    def test_metric_added_and_removed(self):
        diff = compare_reports(
            report("a", record(old_metric=7)),
            report("b", record(new_metric=9)),
        )
        kinds = {c.metric: c.kind for c in diff.changes}
        assert kinds["old_metric"] is ChangeKind.REMOVED
        assert kinds["new_metric"] is ChangeKind.NEW
        assert not diff.regressions


class TestSuiteMembership:
    def test_benchmark_added_and_removed(self):
        diff = compare_reports(
            report("a", record("Old@r1")),
            report("b", record("New@r1")),
        )
        assert [c.benchmark for c in diff.added] == ["New@r1"]
        assert [c.benchmark for c in diff.removed] == ["Old@r1"]
        assert not diff.regressions
        assert not diff.clean


class TestWallDomain:
    POLICY = TolerancePolicy(wall_rel_tolerance=0.10, mad_factor=3.0)

    def compare(self, base_wall, cand_wall):
        return compare_reports(
            report("a", record(wall=base_wall)),
            report("b", record(wall=cand_wall)),
            policy=self.POLICY,
        )

    def test_noise_inside_threshold_is_clean(self):
        # Band: 10% of 1.0 plus 3*(0.01+0.01) = 0.16.
        diff = self.compare(wall(1.0, 0.01), wall(1.16, 0.01))
        assert diff.clean

    def test_slowdown_outside_threshold_regresses(self):
        diff = self.compare(wall(1.0, 0.01), wall(1.17, 0.01))
        assert len(diff.regressions) == 1
        change = diff.regressions[0]
        assert change.domain == "wall"
        assert change.metric == "median_s"

    def test_speedup_outside_threshold_improves(self):
        diff = self.compare(wall(1.0, 0.01), wall(0.83, 0.01))
        assert [c.kind for c in diff.changes] == [ChangeKind.IMPROVEMENT]

    def test_missing_wall_stats_skip_wall_compare(self):
        diff = compare_reports(
            report("a", record(wall=wall(1.0))),
            report("b", record(wall=None)),
        )
        assert diff.clean

    def test_noisy_runs_widen_the_band(self):
        # Same +17% move is forgiven when the MADs say it's noise.
        diff = self.compare(wall(1.0, 0.05), wall(1.17, 0.05))
        assert diff.clean


class TestDiffShape:
    def test_exit_semantics_by_domain(self):
        diff = compare_reports(
            report("a", record(pap_cycles=1_000, wall=wall(1.0))),
            report("b", record(pap_cycles=1_000, wall=wall(5.0))),
        )
        assert diff.regressions_in(("wall",))
        assert not diff.regressions_in(("cycles", "suite"))

    def test_to_dict_counts(self):
        diff = compare_reports(
            report("a", record(pap_cycles=1_000), record("B@r1")),
            report("b", record(pap_cycles=2_000)),
        )
        payload = diff.to_dict()
        assert payload["clean"] is False
        assert payload["counts"]["regression"] == 1
        assert payload["counts"]["removed"] == 1
        assert {c["kind"] for c in payload["changes"]} == {
            "regression",
            "removed",
        }

    def test_clean_to_dict(self):
        payload = compare_reports(
            PerfReport(label="x"), PerfReport(label="y")
        ).to_dict()
        assert payload["clean"] is True
        assert payload["counts"]["regression"] == 0

    def test_empty_diff_is_clean(self):
        diff = PerfDiff(baseline_label="a", candidate_label="b")
        assert diff.clean

"""Tests for the `repro bench run/compare/report` CLI family.

Covers the acceptance flow: `bench run --out BENCH_x.json` then
self-compare exits 0 all-clean; perturbing any cycle-domain metric
makes `compare` exit 1 and name the metric; usage errors exit 2.
"""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One real (tiny) bench run captured as an artifact."""
    path = tmp_path_factory.mktemp("bench") / "BENCH_x.json"
    code = main(
        [
            "bench",
            "run",
            "--benchmarks",
            "Bro217",
            "--scale",
            "0.05",
            "--trace-bytes",
            "4096",
            "--warmup",
            "0",
            "--repeats",
            "1",
            "--label",
            "x",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["bench", "compare", "a", "b"])
        assert args.fail_on == "any"
        assert args.wall_tolerance == 0.10
        assert args.format == "text"

    def test_run_defaults(self):
        args = build_parser().parse_args(["bench", "run"])
        assert args.repeats == 3
        assert args.warmup == 1
        assert args.label == "local"


class TestBenchRun:
    def test_artifact_shape(self, artifact):
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == 1
        assert payload["label"] == "x"
        record = payload["benchmarks"]["Bro217@r1"]
        assert record["cycles"]["reports_match"] is True
        assert record["wall"]["repeats"] == 1

    def test_unknown_benchmark_is_operational_error(self, tmp_path, capsys):
        """A bad workload name exits 1 with a one-line message (the flag
        itself was well-formed, so it is not a usage error)."""
        code = main(
            [
                "bench",
                "run",
                "--benchmarks",
                "NotABenchmark",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert code == 1
        assert "NotABenchmark" in capsys.readouterr().err

    def test_bad_fault_spec_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "run",
                "--benchmarks",
                "Bro217",
                "--inject-faults",
                "rate=0.5",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert code == 2
        assert "seed" in capsys.readouterr().err

    def test_env_subset_selected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_ONLY", "Bro217")
        out = tmp_path / "BENCH_env.json"
        code = main(
            [
                "bench",
                "run",
                "--scale",
                "0.05",
                "--trace-bytes",
                "2048",
                "--warmup",
                "0",
                "--repeats",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert list(payload["benchmarks"]) == ["Bro217@r1"]


class TestBenchCompare:
    def test_self_compare_clean(self, artifact, capsys):
        code = main(
            ["bench", "compare", str(artifact), str(artifact)]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "metric", ["pap_cycles", "speedup", "fiv_invalidations"]
    )
    def test_perturbed_cycle_metric_fails_and_is_named(
        self, artifact, tmp_path, capsys, metric
    ):
        payload = json.loads(artifact.read_text())
        cycles = payload["benchmarks"]["Bro217@r1"]["cycles"]
        cycles[metric] = cycles[metric] + 1
        perturbed = tmp_path / f"BENCH_{metric}.json"
        perturbed.write_text(json.dumps(payload))
        code = main(
            ["bench", "compare", str(artifact), str(perturbed)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert metric in out
        assert "REGRESSION" in out

    def test_fail_on_never_masks_exit(self, artifact, tmp_path):
        payload = json.loads(artifact.read_text())
        payload["benchmarks"]["Bro217@r1"]["cycles"]["pap_cycles"] += 5
        perturbed = tmp_path / "BENCH_p.json"
        perturbed.write_text(json.dumps(payload))
        assert (
            main(
                [
                    "bench",
                    "compare",
                    str(artifact),
                    str(perturbed),
                    "--fail-on",
                    "never",
                ]
            )
            == 0
        )

    def test_fail_on_cycles_ignores_wall_noise(self, artifact, tmp_path):
        payload = json.loads(artifact.read_text())
        wall = payload["benchmarks"]["Bro217@r1"]["wall"]
        wall["median_s"] = wall["median_s"] * 10 + 1.0
        noisy = tmp_path / "BENCH_noisy.json"
        noisy.write_text(json.dumps(payload))
        args = ["bench", "compare", str(artifact), str(noisy)]
        assert main(args) == 1
        assert main(args + ["--fail-on", "cycles"]) == 0

    def test_missing_baseline_is_usage_error(self, artifact, capsys):
        code = main(
            ["bench", "compare", "/nonexistent/BENCH.json", str(artifact)]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_schema_is_usage_error(self, artifact, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {"schema_version": 99, "label": "?", "benchmarks": {}}
            )
        )
        code = main(["bench", "compare", str(bad), str(artifact)])
        assert code == 2
        assert "schema_version" in capsys.readouterr().err

    def test_json_format(self, artifact, capsys):
        code = main(
            [
                "bench",
                "compare",
                str(artifact),
                str(artifact),
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True


class TestBenchReport:
    def test_text_report(self, artifact, capsys):
        assert main(["bench", "report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "Bro217@r1" in out
        assert "geomean" in out

    def test_markdown_report(self, artifact, capsys):
        code = main(
            ["bench", "report", str(artifact), "--format", "markdown"]
        )
        assert code == 0
        assert "| benchmark |" in capsys.readouterr().out

    def test_missing_artifact_is_usage_error(self, capsys):
        assert main(["bench", "report", "/nonexistent.json"]) == 2

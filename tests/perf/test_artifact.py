"""Tests for the BENCH_*.json artifact schema and (de)serialization."""

import json

import pytest

from repro.errors import ArtifactError
from repro.perf.artifact import (
    SCHEMA_VERSION,
    BenchmarkRecord,
    PerfReport,
    load_report,
    report_from_runs,
    run_key,
)
from repro.perf.measure import WallClockStats
from repro.sim.runner import run_benchmark
from repro.workloads.suite import build_benchmark


@pytest.fixture(scope="module")
def run():
    bench = build_benchmark("Bro217", scale=0.05, seed=0)
    return run_benchmark(bench, ranks=1, trace_bytes=4_096)


def make_record(key="Synth@r1", **cycles) -> BenchmarkRecord:
    base = {"pap_cycles": 100, "baseline_cycles": 400, "speedup": 4.0}
    base.update(cycles)
    return BenchmarkRecord(
        key=key,
        name=key.split("@")[0],
        ranks=1,
        trace_bytes=4_096,
        cycles=base,
    )


class TestRecord:
    def test_from_run_lifts_cycle_metrics(self, run):
        record = BenchmarkRecord.from_run(run)
        assert record.key == "Bro217@r1"
        assert record.cycles["pap_cycles"] == run.pap.total_cycles
        assert record.cycles["baseline_cycles"] == run.baseline.total_cycles
        assert record.speedup == run.speedup
        assert record.wall is None

    def test_run_key_with_suffix(self):
        assert run_key("Snort", 4) == "Snort@r4"
        assert run_key("Snort", 4, "10MB") == "Snort@r4/10MB"

    def test_round_trip(self, run):
        wall = WallClockStats(0.5, 0.01, repeats=3, warmup=1)
        record = BenchmarkRecord.from_run(run, wall=wall)
        again = BenchmarkRecord.from_dict(record.key, record.to_dict())
        assert again == record

    def test_malformed_record_raises(self):
        with pytest.raises(ArtifactError, match="malformed"):
            BenchmarkRecord.from_dict("x", {"name": "x"})


class TestPerfReport:
    def test_write_and_load(self, run, tmp_path):
        report = PerfReport(label="unit")
        report.add(BenchmarkRecord.from_run(run))
        path = report.write(tmp_path / "BENCH_unit.json")
        loaded = load_report(path)
        assert loaded.label == "unit"
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.benchmarks.keys() == report.benchmarks.keys()
        assert (
            loaded.benchmarks["Bro217@r1"].cycles
            == report.benchmarks["Bro217@r1"].cycles
        )

    def test_serialized_keys_are_sorted(self, tmp_path):
        report = PerfReport(label="order")
        report.add(make_record("Zeta@r1"))
        report.add(make_record("Alpha@r1"))
        payload = json.loads(
            report.write(tmp_path / "b.json").read_text()
        )
        assert list(payload["benchmarks"]) == ["Alpha@r1", "Zeta@r1"]
        cycles = payload["benchmarks"]["Alpha@r1"]["cycles"]
        assert list(cycles) == sorted(cycles)

    def test_geomean_speedup(self):
        report = PerfReport(label="g")
        report.add(make_record("A@r1", speedup=2.0))
        report.add(make_record("B@r1", speedup=8.0))
        assert report.geomean_speedup == pytest.approx(4.0)

    def test_geomean_none_when_empty(self):
        assert PerfReport(label="empty").geomean_speedup is None

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"schema_version": 999, "label": "x", "benchmarks": {}}
            )
        )
        with pytest.raises(ArtifactError, match="schema_version"):
            load_report(path)

    def test_non_object_benchmarks_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(
            json.dumps(
                {"schema_version": 1, "label": "x", "benchmarks": []}
            )
        )
        with pytest.raises(ArtifactError, match="must be an object"):
            load_report(path)

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_report(tmp_path / "absent.json")

    def test_invalid_json_raises_artifact_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_report(path)

    def test_report_from_runs_uses_given_keys(self, run):
        report = report_from_runs(
            {"full": run, "no-fiv": run}, label="sweep"
        )
        assert set(report.benchmarks) == {"full", "no-fiv"}


class TestSweepHook:
    def test_sweep_report_serializes(self, tmp_path):
        from repro.sim.sweep import sweep_report, tdm_slice_sweep

        bench = build_benchmark("Bro217", scale=0.05, seed=0)
        sweep = tdm_slice_sweep(
            bench, slice_sizes=(64, 128), trace_bytes=2_048
        )
        report = sweep_report(sweep, label="tdm")
        assert set(report.benchmarks) == {"64", "128"}
        loaded = load_report(report.write(tmp_path / "sweep.json"))
        assert set(loaded.benchmarks) == {"64", "128"}

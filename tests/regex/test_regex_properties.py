"""Property-based tests for the regex engine against Python's `re`."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.execution import run_automaton
from repro.errors import RegexSyntaxError
from repro.regex.compiler import compile_pattern
from repro.regex.parser import parse

# A recursive strategy over the supported regex AST, rendered as text.
literals = st.sampled_from(list("abcd"))


def _render_class(chars):
    return "[" + "".join(sorted(set(chars))) + "]"


atoms = st.one_of(
    literals,
    st.lists(literals, min_size=1, max_size=3).map(_render_class),
    st.just("."),
)


def _quantify(inner):
    return st.one_of(
        st.just(inner),
        st.just(f"{inner}?"),
        st.just(f"{inner}*"),
        st.just(f"{inner}+"),
        st.just(inner + "{1,2}"),
        st.just(inner + "{2}"),
    )


def patterns(depth=2):
    if depth == 0:
        return atoms.flatmap(_quantify)
    sub = patterns(depth - 1)
    return st.one_of(
        atoms.flatmap(_quantify),
        st.tuples(sub, sub).map(lambda p: p[0] + p[1]),
        st.tuples(sub, sub).map(lambda p: f"({p[0]}|{p[1]})"),
        sub.map(lambda p: f"({p})").flatmap(_quantify),
    )


inputs = st.binary(min_size=0, max_size=24).map(
    lambda raw: bytes(b"abcde"[b % 5] for b in raw)
)


def re_end_offsets(pattern: str, data: bytes, anchored: bool) -> set[int]:
    compiled = re.compile(
        pattern.lstrip("^").encode("latin-1"), re.DOTALL
    )
    offsets = set()
    for end in range(1, len(data) + 1):
        starts = [0] if anchored else range(end)
        for start in starts:
            if compiled.fullmatch(data, start, end):
                offsets.add(end - 1)
                break
    return offsets


@settings(max_examples=150, deadline=None)
@given(pattern=patterns(), data=inputs, anchored=st.booleans())
def test_compiler_matches_python_re(pattern, data, anchored):
    text = ("^" if anchored else "") + pattern
    try:
        automaton = compile_pattern(text)
    except RegexSyntaxError:
        # Nullable patterns are rejected by design; nothing to compare.
        return
    ours = {r.offset for r in run_automaton(automaton, data).report_set}
    assert ours == re_end_offsets(pattern, data, anchored), text


@settings(max_examples=100, deadline=None)
@given(pattern=patterns())
def test_parse_compile_never_crashes(pattern):
    try:
        parsed = parse(pattern)
    except RegexSyntaxError:
        return
    try:
        automaton = compile_pattern(parsed)
    except RegexSyntaxError:
        return  # nullable
    automaton.validate()


@settings(max_examples=100, deadline=None)
@given(pattern=patterns(), data=inputs)
def test_glushkov_size_is_linear_in_positions(pattern, data):
    """Glushkov's guarantee: one state per literal position (plus the
    optional hub), independent of the input."""
    try:
        parsed = parse(pattern)
    except RegexSyntaxError:
        return
    from repro.regex.ast import Literal, expand_repeats

    def count_positions(node):
        if isinstance(node, Literal):
            return 1
        total = 0
        for field in getattr(node, "__dataclass_fields__", {}):
            child = getattr(node, field)
            if hasattr(child, "__dataclass_fields__"):
                total += count_positions(child)
        return total

    try:
        automaton = compile_pattern(parsed)
    except RegexSyntaxError:
        return
    positions = count_positions(expand_repeats(parsed.ast))
    expected = positions + (0 if parsed.anchored else 1)
    assert automaton.num_states == expected
    del data

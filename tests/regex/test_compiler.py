"""Unit tests for the Glushkov compiler, cross-validated against
Python's `re` on substring-occurrence semantics."""

import re

import pytest

from repro.automata.anml import StartKind
from repro.automata.charclass import CharClass
from repro.automata.execution import run_automaton
from repro.errors import RegexSyntaxError
from repro.regex.compiler import compile_pattern
from repro.regex.ruleset import compile_ruleset


def match_offsets(pattern: str, data: bytes) -> set[int]:
    """Offsets where our automaton reports for ``pattern``."""
    automaton = compile_pattern(pattern)
    return {r.offset for r in run_automaton(automaton, data).report_set}


def re_end_offsets(pattern: str, data: bytes, anchored: bool) -> set[int]:
    """Ground truth via Python re: offsets t such that some substring
    data[i..t] (i=0 when anchored) fully matches the pattern."""
    compiled = re.compile(pattern.lstrip("^").encode("latin-1"), re.DOTALL)
    offsets = set()
    for end in range(1, len(data) + 1):
        starts = [0] if anchored else range(end)
        for start in starts:
            if compiled.fullmatch(data, start, end):
                offsets.add(end - 1)
                break
    return offsets


CROSS_CASES = [
    ("abc", b"zzabczabc"),
    ("^abc", b"abcabc"),
    ("a+b", b"aaab aab b ab"),
    ("a*b", b"baab"),
    ("ab?c", b"ac abc abbc"),
    ("a{2,3}", b"aaaaa"),
    ("a{3}", b"aaaa"),
    ("a{2,}", b"aaaaa"),
    ("(ab)+", b"ababab"),
    ("a|bc", b"a bc abc"),
    ("[ab]c", b"ac bc cc"),
    ("[^a]b", b"ab xb bb"),
    ("a.c", b"abc axc ac"),
    ("x(a|b)*y", b"xy xaby xbbay xz"),
    (r"\d+", b"a12b345"),
    (r"a\.b", b"a.b axb"),
    ("(a|ab)(c|bc)", b"abc"),
]


class TestCrossValidation:
    @pytest.mark.parametrize("pattern,data", CROSS_CASES)
    def test_against_python_re(self, pattern, data):
        anchored = pattern.startswith("^")
        assert match_offsets(pattern, data) == re_end_offsets(
            pattern, data, anchored
        ), pattern


class TestStructure:
    def test_unanchored_gets_star_hub(self):
        automaton = compile_pattern("ab")
        hub = automaton.state(0)
        assert hub.label == CharClass.full()
        assert hub.start is StartKind.START_OF_DATA
        assert automaton.has_self_loop(0)

    def test_anchored_has_no_hub(self):
        automaton = compile_pattern("^ab")
        assert all(not s.label.is_full() for s in automaton.states())

    def test_one_state_per_position(self):
        # ^a(b|c)d has 4 positions.
        automaton = compile_pattern("^a(b|c)d")
        assert automaton.num_states == 4

    def test_report_code_assignment(self):
        automaton = compile_pattern("^ab", report_code=17)
        reports = run_automaton(automaton, b"ab").report_set
        assert {r.code for r in reports} == {17}

    def test_multiple_last_positions_all_report(self):
        automaton = compile_pattern("^a(b|c)")
        reporting = automaton.reporting_states()
        assert len(reporting) == 2

    def test_empty_matching_pattern_rejected(self):
        with pytest.raises(RegexSyntaxError, match="empty string"):
            compile_pattern("a*")
        with pytest.raises(RegexSyntaxError, match="empty string"):
            compile_pattern("")

    def test_nullable_via_alternation_rejected(self):
        with pytest.raises(RegexSyntaxError):
            compile_pattern("a|")


class TestRuleset:
    def test_codes_identify_rules(self):
        automaton, _ = compile_ruleset(["^ab", "^cd"])
        reports = run_automaton(automaton, b"cd").report_set
        assert {r.code for r in reports} == {1}

    def test_rule_count_in_stats(self):
        _, stats = compile_ruleset(["^ab", "^cd", "^ef"])
        assert stats.num_rules == 3

    def test_prefix_merge_compresses_shared_prefixes(self):
        patterns = ["^abcx", "^abcy", "^abcz"]
        _, merged_stats = compile_ruleset(patterns, prefix_merge=True)
        _, raw_stats = compile_ruleset(patterns, prefix_merge=False)
        assert merged_stats.states_after_merge < raw_stats.states_after_merge
        assert merged_stats.compression > 0

    def test_merge_preserves_reports(self):
        patterns = ["abcx", "abcy", "ab"]
        merged, _ = compile_ruleset(patterns, prefix_merge=True)
        raw, _ = compile_ruleset(patterns, prefix_merge=False)
        data = b"zabcx abcy ab"
        merged_reports = {
            (r.offset, r.code) for r in run_automaton(merged, data).report_set
        }
        raw_reports = {
            (r.offset, r.code) for r in run_automaton(raw, data).report_set
        }
        assert merged_reports == raw_reports

    def test_hubs_shared_after_merge(self):
        merged, _ = compile_ruleset(["ab", "cd", "ef"], prefix_merge=True)
        hubs = [s for s in merged.states() if s.label.is_full()]
        assert len(hubs) == 1


class TestCaseInsensitive:
    def test_nocase_matches_both_cases(self):
        from repro.regex.ruleset import compile_ruleset as cr

        automaton, _ = cr(["attack"], case_insensitive=True)
        for text in (b"attack", b"ATTACK", b"AtTaCk"):
            assert run_automaton(automaton, text).report_set, text

    def test_nocase_widens_classes(self):
        from repro.regex.ruleset import compile_ruleset as cr

        automaton, _ = cr(["[a-c]x"], case_insensitive=True)
        assert run_automaton(automaton, b"Bx").report_set
        assert not run_automaton(automaton, b"Dx").report_set

    def test_nocase_leaves_digits_alone(self):
        from repro.regex.ruleset import compile_ruleset as cr

        automaton, _ = cr(["a7"], case_insensitive=True)
        assert run_automaton(automaton, b"A7").report_set
        assert not run_automaton(automaton, b"A8").report_set

    def test_nocase_preserves_quantifiers(self):
        from repro.regex.ruleset import compile_ruleset as cr

        automaton, _ = cr(["ab+c"], case_insensitive=True)
        assert run_automaton(automaton, b"ABBBC").report_set

    def test_case_sensitive_default(self):
        from repro.regex.ruleset import compile_ruleset as cr

        automaton, _ = cr(["attack"])
        assert not run_automaton(automaton, b"ATTACK").report_set

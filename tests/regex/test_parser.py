"""Unit tests for the regex parser."""

import pytest

from repro.automata.charclass import CharClass
from repro.errors import RegexSyntaxError
from repro.regex.ast import Alt, Concat, Empty, Literal, Optional, Plus, Repeat, Star
from repro.regex.parser import parse


class TestAtoms:
    def test_single_literal(self):
        parsed = parse("a")
        assert parsed.ast == Literal(CharClass.single("a"))
        assert not parsed.anchored

    def test_concatenation(self):
        parsed = parse("ab")
        assert parsed.ast == Concat(
            Literal(CharClass.single("a")), Literal(CharClass.single("b"))
        )

    def test_dot_is_full_class(self):
        assert parse(".").ast == Literal(CharClass.full())

    def test_empty_pattern(self):
        assert parse("").ast == Empty()

    def test_anchor_flag(self):
        assert parse("^abc").anchored
        assert not parse("abc").anchored

    def test_group_is_transparent(self):
        assert parse("(ab)").ast == parse("ab").ast

    def test_non_capturing_group(self):
        assert parse("(?:ab)").ast == parse("ab").ast


class TestQuantifiers:
    def test_star(self):
        assert parse("a*").ast == Star(Literal(CharClass.single("a")))

    def test_plus(self):
        assert parse("a+").ast == Plus(Literal(CharClass.single("a")))

    def test_optional(self):
        assert parse("a?").ast == Optional(Literal(CharClass.single("a")))

    def test_exact_repeat(self):
        assert parse("a{3}").ast == Repeat(Literal(CharClass.single("a")), 3, 3)

    def test_bounded_repeat(self):
        assert parse("a{2,5}").ast == Repeat(Literal(CharClass.single("a")), 2, 5)

    def test_unbounded_repeat(self):
        assert parse("a{2,}").ast == Repeat(Literal(CharClass.single("a")), 2, None)

    def test_quantifier_binds_to_group(self):
        parsed = parse("(ab)*")
        assert isinstance(parsed.ast, Star)

    def test_stacked_quantifiers(self):
        assert parse("a*?").ast == Optional(Star(Literal(CharClass.single("a"))))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{5,2}")

    def test_dangling_quantifier_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("*a")


class TestAlternation:
    def test_two_branches(self):
        assert parse("a|b").ast == Alt(
            Literal(CharClass.single("a")), Literal(CharClass.single("b"))
        )

    def test_alternation_binds_loosest(self):
        parsed = parse("ab|cd")
        assert isinstance(parsed.ast, Alt)
        assert isinstance(parsed.ast.left, Concat)

    def test_empty_branch(self):
        parsed = parse("a|")
        assert parsed.ast == Alt(Literal(CharClass.single("a")), Empty())


class TestCharClasses:
    def test_simple_class(self):
        assert parse("[abc]").ast == Literal(CharClass("abc"))

    def test_range(self):
        assert parse("[a-c]").ast == Literal(CharClass.range("a", "c"))

    def test_mixed_range_and_singles(self):
        assert parse("[a-cx]").ast == Literal(CharClass("abcx"))

    def test_negated_class(self):
        klass = parse("[^ab]").ast.klass
        assert "a" not in klass and "c" in klass
        assert len(klass) == 254

    def test_literal_dash_at_end(self):
        assert parse("[a-]").ast == Literal(CharClass("a-"))

    def test_closing_bracket_first_is_literal(self):
        assert parse("[]a]").ast == Literal(CharClass("]a"))

    def test_escape_inside_class(self):
        assert parse(r"[\d]").ast == Literal(CharClass.range("0", "9"))

    def test_unterminated_class_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")


class TestEscapes:
    def test_predefined_classes(self):
        assert parse(r"\d").ast == Literal(CharClass.range("0", "9"))
        assert parse(r"\D").ast == Literal(CharClass.range("0", "9").complement())
        assert "a" in parse(r"\w").ast.klass
        assert " " in parse(r"\s").ast.klass
        assert " " not in parse(r"\S").ast.klass

    def test_control_escapes(self):
        assert parse(r"\n").ast == Literal(CharClass(["\n"]))
        assert parse(r"\t").ast == Literal(CharClass(["\t"]))

    def test_hex_escape(self):
        assert parse(r"\x41").ast == Literal(CharClass.single("A"))

    def test_bad_hex_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse(r"\xZZ")

    def test_escaped_metacharacters(self):
        assert parse(r"\.").ast == Literal(CharClass.single("."))
        assert parse(r"\*").ast == Literal(CharClass.single("*"))
        assert parse(r"\\").ast == Literal(CharClass.single("\\"))

    def test_unknown_alnum_escape_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse(r"\q")


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse("(ab")
        with pytest.raises(RegexSyntaxError):
            parse("ab)")

    def test_dollar_unsupported(self):
        with pytest.raises(RegexSyntaxError, match="not supported"):
            parse("ab$")

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as exc_info:
            parse("ab)")
        assert exc_info.value.position == 2
        assert exc_info.value.pattern == "ab)"

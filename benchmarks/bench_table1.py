"""Table 1: benchmark characteristics.

Regenerates the paper's Table 1 for the synthetic suite: states, chosen
partition-symbol range, connected components, half-core footprint, and
segments available on 1-rank and 4-rank boards — side by side with the
paper's reported values.  The timed portion is the structural analysis
pipeline (connected components + range profiling + symbol choice), the
preprocessing cost of Section 3.5.
"""

from __future__ import annotations

from conftest import SELECTED, publish

from repro.automata.analysis import AutomatonAnalysis
from repro.core.ranges import choose_partition_symbol
from repro.sim.report import format_table1


def _characterize(suite_cache, names):
    rows = []
    for name in names:
        bench = suite_cache.instance(name)
        analysis = AutomatonAnalysis(bench.automaton)
        components = len(analysis.connected_components())
        data = bench.trace(16_384, 7)
        choice = choose_partition_symbol(
            analysis,
            data,
            num_segments=bench.paper.segments_one_rank,
            exclude=analysis.path_independent_states(),
        )
        raw_range = len(analysis.symbol_range(choice.symbol))
        rows.append((bench, bench.automaton.num_states, components, raw_range))
    return rows


def test_table1_characteristics(benchmark, suite_cache):
    rows = benchmark.pedantic(
        _characterize, args=(suite_cache, SELECTED), rounds=1, iterations=1
    )
    publish("table1", format_table1(rows))
    for bench, states, components, _ in rows:
        assert states > 0
        # The generators target the paper's component counts; at scale
        # they stay proportional for the many-component benchmarks.
        assert components >= 1

"""Micro-benchmarks of the functional executor (the VASim substitute).

These are conventional pytest-benchmark timings (multiple rounds) of
the substrate everything else is built on: symbol throughput of the
active-set executor on light and saturated automata, and flow context
creation.  They track the simulator's own performance, not a paper
figure.
"""

from __future__ import annotations

import random

from repro.automata.execution import CompiledAutomaton, FlowExecution
from repro.regex.ruleset import compile_ruleset
from repro.workloads.spm import spm_benchmark, transaction_trace


def _ruleset_setup():
    patterns = [f"rule{i:03d}x[0-9]{{2}}" for i in range(64)]
    automaton, _ = compile_ruleset(patterns)
    compiled = CompiledAutomaton(automaton)
    rng = random.Random(3)
    data = bytes(rng.randrange(256) for _ in range(16_384))
    return compiled, data


def test_executor_throughput_sparse(benchmark):
    """Symbols/second on a ruleset where the active set stays small."""
    compiled, data = _ruleset_setup()

    def run():
        flow = FlowExecution(compiled)
        flow.run(data)
        return flow.symbols_processed

    symbols = benchmark(run)
    assert symbols == len(data)


def test_executor_throughput_saturated(benchmark):
    """Symbols/second on gap-pattern automata whose stable active set
    is large — the latched-state fast path's target."""
    automaton, items = spm_benchmark(num_patterns=100, seed=0)
    compiled = CompiledAutomaton(automaton)
    data = transaction_trace(items, 8_192, seed=1)

    def run():
        flow = FlowExecution(compiled)
        flow.run(data)
        return flow.symbols_processed

    symbols = benchmark(run)
    assert symbols == len(data)


def test_flow_creation_cost(benchmark):
    """Spawning flows against shared compiled tables must be cheap —
    enumeration creates hundreds per segment."""
    compiled, _ = _ruleset_setup()
    seeds = list(range(0, len(compiled), 7))

    def spawn():
        return [
            FlowExecution(compiled, initial_current=[sid], one_shot=frozenset())
            for sid in seeds
        ]

    flows = benchmark(spawn)
    assert len(flows) == len(seeds)

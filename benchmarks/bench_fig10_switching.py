"""Figure 10: flow-switching overhead.

Context-switch cycles as a fraction of total segment execution, per
benchmark (1 rank, 1MB-class).  The paper reports under 2% for most
benchmarks, with the flow-heavy ones (ClamAV there) a little higher.
"""

from __future__ import annotations

from conftest import publish

from repro.sim.report import format_figure10


def test_fig10_switch_overhead(benchmark, suite_cache):
    runs = benchmark.pedantic(
        suite_cache.runs, args=(1, "1MB"), rounds=1, iterations=1
    )
    publish("fig10", format_figure10(runs))
    for run in runs:
        # 3 cycles per 256-symbol slice bounds the overhead near 1.2%
        # per concurrently-live flow; even flow-heavy benchmarks stay
        # in the paper's few-percent regime.
        assert run.pap.switching_overhead < 0.10, run.name

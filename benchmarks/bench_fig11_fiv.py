"""Figure 11: false-path invalidation cost at segment boundaries.

Average and maximum ``T_cpu`` (state-vector readout + host decode)
actually charged per segment, per benchmark (1 rank, 1MB-class).  The
charged values are reported in *modeled* full-input cycles — the
harness scales the per-segment constants with trace size, so the
numbers below are rescaled back for comparison with the paper's
~2,000-cycle average.
"""

from __future__ import annotations

from conftest import publish, trace_budget


def test_fig11_false_path_decode(benchmark, suite_cache):
    runs = benchmark.pedantic(
        suite_cache.runs, args=(1, "1MB"), rounds=1, iterations=1
    )
    rows = []
    for run in runs:
        actual, modeled = trace_budget(run.name, "1MB")
        factor = modeled / max(1, actual)
        charged = [c * factor for c in run.pap.tcpu_cycles if c > 0]
        rows.append((run.name, charged))

    lines = ["== Figure 11 (modeled full-input cycles) =="]
    lines.append(
        f"{'Benchmark':<18}{'AvgTcpu':>10}{'MaxTcpu':>10}{'Charged':>9}"
    )
    for name, charged in rows:
        avg = sum(charged) / len(charged) if charged else 0.0
        top = max(charged) if charged else 0.0
        lines.append(f"{name:<18}{avg:>10.0f}{top:>10.0f}{len(charged):>9}")
    publish("fig11", "\n".join(lines))

    for name, charged in rows:
        for value in charged:
            # T_cpu is dominated by the 1,668-cycle readout plus per-flow
            # decode: the paper's ~2,000-cycle regime, never runaway.
            assert 1_000 <= value <= 60_000, name

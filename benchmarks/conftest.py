"""Shared infrastructure for the paper-reproduction benchmarks.

Environment knobs (all optional):

``REPRO_BENCH_SCALE``
    Workload scale relative to the paper's state counts (default 0.1).
``REPRO_BENCH_1MB``
    Trace bytes standing in for the paper's 1 MB input (default 65536).
``REPRO_BENCH_10MB``
    Trace bytes standing in for the paper's 10 MB input (default 262144).
``REPRO_BENCH_ONLY``
    Comma-separated benchmark names to restrict the suite.

Per-segment constant costs are rescaled with the trace (see
``TimingModel.scaled_for_input``), so speedup ratios model the paper's
full-size experiments.  Expensive automata (Fermi) run on a quarter of
the trace budget; their absolute speedups are flat anyway.

Benchmark instances and PAP runs are cached per session so the figure
benches share the Figure 8 measurements instead of recomputing them.
Formatted tables are printed and written to ``benchmarks/results/``;
at session end every cached run is also serialized as a
machine-readable ``benchmarks/results/suite_runs.json`` artifact (the
``repro.perf`` schema), so each bench session leaves a diffable
cycle-domain record next to the human-readable tables.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perf.artifact import BenchmarkRecord, PerfReport, run_key
from repro.sim.runner import BenchmarkRun, run_benchmark
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

PAPER_1MB = 1_048_576
PAPER_10MB = 10_485_760

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
TRACE_1MB_CLASS = int(os.environ.get("REPRO_BENCH_1MB", str(64 * 1024)))
TRACE_10MB_CLASS = int(os.environ.get("REPRO_BENCH_10MB", str(256 * 1024)))

_only = os.environ.get("REPRO_BENCH_ONLY", "")
SELECTED: tuple[str, ...] = (
    tuple(name for name in BENCHMARK_NAMES if name in set(_only.split(",")))
    if _only
    else BENCHMARK_NAMES
)

# Workloads whose dense active sets make functional simulation slow get
# a reduced trace budget; their speedup curves are flat in trace size.
HEAVY = {"Fermi": 4}

RESULTS_DIR = Path(__file__).parent / "results"


def trace_budget(name: str, size_class: str) -> tuple[int, int]:
    """(actual trace bytes, modeled paper bytes) for one run."""
    base = TRACE_1MB_CLASS if size_class == "1MB" else TRACE_10MB_CLASS
    modeled = PAPER_1MB if size_class == "1MB" else PAPER_10MB
    return base // HEAVY.get(name, 1), modeled // HEAVY.get(name, 1)


class SuiteCache:
    """Session-wide lazy store of benchmark instances and PAP runs."""

    def __init__(self) -> None:
        self._instances: dict[str, object] = {}
        self._runs: dict[tuple[str, int, str], BenchmarkRun] = {}

    def instance(self, name: str):
        if name not in self._instances:
            self._instances[name] = build_benchmark(name, scale=SCALE, seed=0)
        return self._instances[name]

    def run(self, name: str, ranks: int, size_class: str) -> BenchmarkRun:
        key = (name, ranks, size_class)
        if key not in self._runs:
            actual, modeled = trace_budget(name, size_class)
            self._runs[key] = run_benchmark(
                self.instance(name),
                ranks=ranks,
                trace_bytes=actual,
                modeled_bytes=modeled,
                trace_seed=1,
            )
        return self._runs[key]

    def runs(
        self, ranks: int, size_class: str, names=SELECTED
    ) -> list[BenchmarkRun]:
        return [self.run(name, ranks, size_class) for name in names]

    def perf_report(self, label: str = "pytest-bench") -> PerfReport:
        """Every cached run as a repro.perf artifact (no wall stats —
        these runs were shared across figures, not timed)."""
        report = PerfReport(
            label=label,
            parameters={
                "scale": SCALE,
                "trace_1mb_class": TRACE_1MB_CLASS,
                "trace_10mb_class": TRACE_10MB_CLASS,
                "selected": list(SELECTED),
            },
        )
        for (name, ranks, size_class), run in sorted(self._runs.items()):
            report.add(
                BenchmarkRecord.from_run(
                    run, key=run_key(name, ranks, size_class)
                )
            )
        return report


_CACHE = SuiteCache()


@pytest.fixture(scope="session")
def suite_cache() -> SuiteCache:
    return _CACHE


def pytest_sessionfinish(session, exitstatus) -> None:
    """Persist the session's cached runs as a JSON artifact."""
    if not _CACHE._runs:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    path = _CACHE.perf_report().write(RESULTS_DIR / "suite_runs.json")
    print(f"\n[benchmark artifact written to {path}]")


def publish(title: str, text: str) -> None:
    """Print a formatted table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{title}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")

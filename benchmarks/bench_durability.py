"""Durability study: checkpoint overhead and hedged straggler recovery.

Two questions a durable run setup has to answer with numbers:

* What does write-through checkpointing cost, and what does resuming
  from a complete checkpoint buy?  Measured on three workloads as
  cold wall vs. checkpointed wall vs. resumed wall, with the resumed
  run asserted bit-exact against the cold run (the whole point of the
  content-addressed store).
* How much faster does straggler *hedging* recover a hung segment than
  the deadline path (segment timeout -> teardown -> retry) it
  replaces?  One seeded hang, same workload, both policies.

Tables land in ``benchmarks/results/`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import tempfile
import time

from conftest import publish, trace_budget

from repro.exec import (
    FaultPlan,
    FaultSpec,
    HedgePolicy,
    ProcessPoolBackend,
    RetryPolicy,
    cycle_fingerprint,
)
from repro.sim.runner import run_benchmark

DURABILITY_BENCHMARKS = ("Snort", "Bro217", "Ranges1")


def _timed_run(instance, actual, modeled, **kwargs):
    start = time.perf_counter()
    run = run_benchmark(
        instance,
        trace_bytes=actual,
        modeled_bytes=modeled,
        trace_seed=1,
        **kwargs,
    )
    return run, time.perf_counter() - start


def test_checkpoint_overhead(benchmark, suite_cache):
    def sweep():
        rows = []
        for name in DURABILITY_BENCHMARKS:
            actual, modeled = trace_budget(name, "1MB")
            instance = suite_cache.instance(name)
            cold, cold_s = _timed_run(instance, actual, modeled)
            with tempfile.TemporaryDirectory() as root:
                written, write_s = _timed_run(
                    instance, actual, modeled, checkpoint=root
                )
                resumed, resume_s = _timed_run(
                    instance, actual, modeled, checkpoint=root, resume=True
                )
                ckpt = resumed.pap.extra["checkpoint"]
            # The durability contract: write-through changes nothing,
            # and a resume replays every segment from the store.
            assert cycle_fingerprint(written.pap) == cycle_fingerprint(
                cold.pap
            ), name
            assert cycle_fingerprint(resumed.pap) == cycle_fingerprint(
                cold.pap
            ), name
            assert ckpt["hits"] == cold.pap.num_segments, name
            rows.append((name, cold.pap.num_segments, cold_s, write_s, resume_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["== Checkpoint overhead and resume speedup (1MB-class) =="]
    lines.append(
        f"{'Benchmark':<14}{'Segs':>6}{'Cold(ms)':>10}{'+Ckpt(ms)':>11}"
        f"{'Write ovh':>11}{'Resume(ms)':>12}{'vs cold':>9}"
    )
    for name, segs, cold_s, write_s, resume_s in rows:
        overhead = (write_s - cold_s) / cold_s * 100
        lines.append(
            f"{name:<14}{segs:>6}{cold_s * 1e3:>10.1f}{write_s * 1e3:>11.1f}"
            f"{overhead:>+10.1f}%{resume_s * 1e3:>12.1f}"
            f"{cold_s / resume_s:>8.2f}x"
        )
    publish("durability_checkpoint", "\n".join(lines))


def test_hedge_vs_deadline_recovery(benchmark, suite_cache):
    def race():
        name = "Ranges1"
        actual = min(trace_budget(name, "1MB")[0], 16_384)
        instance = suite_cache.instance(name)
        reference = cycle_fingerprint(
            run_benchmark(instance, trace_bytes=actual, trace_seed=1).pap
        )
        last = run_benchmark(
            instance, trace_bytes=actual, trace_seed=1
        ).pap.num_segments - 1
        faults = FaultPlan(
            specs=(FaultSpec(segment=last, kind="hang"),), hang_s=3.0
        )
        results = {}
        for policy, hedge, timeout in (
            ("hedged", HedgePolicy(), 30.0),
            ("deadline", None, 1.5),
        ):
            backend = ProcessPoolBackend(workers=2, hedge=hedge)
            try:
                # Warm the pool so spawn/compile cost stays out of the
                # recovery measurement.
                run_benchmark(
                    instance, trace_bytes=actual, trace_seed=1,
                    backend=backend,
                )
                run, wall = _timed_run(
                    instance,
                    actual,
                    None,
                    backend=backend,
                    retry=RetryPolicy(
                        max_retries=2,
                        segment_timeout_s=timeout,
                        backoff_base_s=0.0,
                    ),
                    faults=faults,
                )
                assert cycle_fingerprint(run.pap) == reference, policy
                results[policy] = (wall, run.pap.extra["health"])
            finally:
                backend.close()
        return results

    results = benchmark.pedantic(race, rounds=1, iterations=1)
    hedged_wall, hedged_health = results["hedged"]
    deadline_wall, deadline_health = results["deadline"]

    lines = ["== Hedge vs. deadline recovery of one hung segment =="]
    lines.append(f"{'Policy':<12}{'Wall(ms)':>10}  detail")
    lines.append(
        f"{'hedged':<12}{hedged_wall * 1e3:>10.1f}  "
        f"{hedged_health['hedges']} hedge(s), "
        f"{len(hedged_health['hedge_wins'])} won, "
        f"{hedged_health['timeouts']} timeouts"
    )
    lines.append(
        f"{'deadline':<12}{deadline_wall * 1e3:>10.1f}  "
        f"{deadline_health['timeouts']} timeout(s), "
        f"{deadline_health['retries']} retries"
    )
    publish("durability_hedge", "\n".join(lines))

    # Hedging must recover the seeded hang without tripping the
    # deadline machinery, and strictly faster than the deadline path.
    assert len(hedged_health["hedge_wins"]) >= 1
    assert hedged_health["timeouts"] == 0
    assert deadline_health["timeouts"] >= 1
    assert hedged_wall < deadline_wall

"""Figure 8: PAP speedup over the sequential AP baseline.

The headline experiment: every benchmark, two board sizes (1 rank = 16
half-cores, 4 ranks = 64), two input classes standing in for the
paper's 1 MB and 10 MB traces.  Each run verifies that PAP's composed
report set equals the sequential baseline's before any speedup is
reported.

Expected shape (paper Section 5.1): near-ideal speedups for the
small-range Regex benchmarks (Ranges05/1, ExactMatch, Bro217), strong
speedups for SPM/RandomForest/Hamming after flow merging, poor
speedups for Fermi and the dense-component benchmarks, larger gains on
the 10 MB-class input, and geomeans ordered
1-rank-1MB < 1-rank-10MB < 4-rank-10MB.
"""

from __future__ import annotations

import pytest
from conftest import SELECTED, publish

from repro.sim.report import format_figure8
from repro.sim.runner import geometric_mean

PANELS = [
    ("1MB", 1),
    ("1MB", 4),
    ("10MB", 1),
    ("10MB", 4),
]


@pytest.mark.parametrize("size_class,ranks", PANELS)
def test_fig8_speedup_panel(benchmark, suite_cache, size_class, ranks):
    runs = benchmark.pedantic(
        suite_cache.runs,
        args=(ranks, size_class),
        rounds=1,
        iterations=1,
    )
    publish(
        f"fig8_{size_class}_{ranks}rank",
        format_figure8(runs, label=f"{size_class}-class input, {ranks} rank(s)"),
    )
    for run in runs:
        assert run.reports_match, run.name
        # Golden execution guarantees PAP never loses (Section 5.1).
        assert run.speedup >= 0.99, run.name
        # Speedup is bounded by the segment count; the small slack
        # covers host-side drain cycles the baseline pays on top of its
        # symbol cycles.
        assert run.speedup <= run.ideal_speedup * 1.02 + 0.5, run.name


def test_fig8_shape_summary(benchmark, suite_cache):
    def summarize():
        one_small = suite_cache.runs(1, "1MB")
        one_big = suite_cache.runs(1, "10MB")
        four_big = suite_cache.runs(4, "10MB")
        return (
            geometric_mean([r.speedup for r in one_small]),
            geometric_mean([r.speedup for r in one_big]),
            geometric_mean([r.speedup for r in four_big]),
        )

    small_1r, big_1r, big_4r = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )
    publish(
        "fig8_summary",
        "== Figure 8 geomeans ==\n"
        f"1 rank,  1MB-class : {small_1r:.1f}x  (paper: 6.6x)\n"
        f"1 rank, 10MB-class : {big_1r:.1f}x  (paper: 7.6x)\n"
        f"4 ranks, 10MB-class: {big_4r:.1f}x  (paper: 25.5x)\n",
    )
    if len(SELECTED) == len(
        __import__("repro.workloads.suite", fromlist=["BENCHMARK_NAMES"]).BENCHMARK_NAMES
    ):
        # The paper's headline ordering must hold.
        assert big_4r > big_1r
        assert big_1r >= small_1r * 0.9

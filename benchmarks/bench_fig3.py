"""Figure 3: range of symbols across benchmarks.

Reproduces the min/avg/max symbol-range statistics over all 256 input
symbols for every benchmark, the evidence behind range-guided input
partitioning: ranges are a small fraction of total states for most
benchmarks and a huge fraction for Fermi/Hamming/Levenshtein-style
automata.  The timed portion is the 256-symbol range profile.
"""

from __future__ import annotations

from conftest import SELECTED, publish

from repro.automata.analysis import AutomatonAnalysis
from repro.core.ranges import range_profile
from repro.sim.report import format_figure3


def _profile(suite_cache, names):
    rows = []
    for name in names:
        bench = suite_cache.instance(name)
        analysis = AutomatonAnalysis(bench.automaton)
        rows.append(
            (name, bench.automaton.num_states, range_profile(analysis))
        )
    return rows


def test_fig3_symbol_ranges(benchmark, suite_cache):
    rows = benchmark.pedantic(
        _profile, args=(suite_cache, SELECTED), rounds=1, iterations=1
    )
    publish("fig3", format_figure3(rows))

    by_name = {name: (states, profile) for name, states, profile in rows}
    # The paper's qualitative split: small relative ranges for the Regex
    # suite, giant ones for the edit-distance and trajectory automata.
    if "ExactMatch" in by_name:
        states, profile = by_name["ExactMatch"]
        assert profile.minimum <= states * 0.01
    for dense in ("Hamming", "Levenshtein", "Fermi"):
        if dense in by_name:
            states, profile = by_name[dense]
            assert profile.maximum > states * 0.2, dense

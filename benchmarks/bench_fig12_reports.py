"""Figure 12: increase in output report events due to false paths.

Raw buffered events (including events generated along false
enumeration paths) versus events surviving host-side truth filtering,
per benchmark (1 rank, 1MB-class).  The paper plots the increase on a
log scale; amplification varies from none (benchmarks whose flows are
mostly true or die instantly) to substantial for enumeration-heavy
automata.
"""

from __future__ import annotations

from conftest import publish

from repro.sim.report import format_figure12


def test_fig12_report_amplification(benchmark, suite_cache):
    runs = benchmark.pedantic(
        suite_cache.runs, args=(1, "1MB"), rounds=1, iterations=1
    )
    publish("fig12", format_figure12(runs))
    for run in runs:
        assert run.pap.raw_events >= run.pap.true_events, run.name
        # False-path filtering must still recover the exact report set.
        assert run.reports_match, run.name

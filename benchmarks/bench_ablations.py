"""Ablation study: each PAP optimization disabled in isolation.

The paper motivates every flow-reduction technique with a benchmark it
rescues (Section 5.2): connected components for SPM, common parents
for Levenshtein/Hamming, the ASG for hub-heavy rulesets, dynamic
convergence/deactivation for RandomForest/Fermi/SPM, and the FIV for
whatever survives.  This bench quantifies each contribution on
representative benchmarks — correctness (report equality) is verified
in every configuration, so the ablations also demonstrate that the
optimizations are pure accelerations.
"""

from __future__ import annotations

from conftest import publish, trace_budget

from repro.sim.sweep import ablation_sweep

ABLATION_BENCHMARKS = ("SPM", "Hamming", "ExactMatch", "Dotstar03")


def test_optimization_ablations(benchmark, suite_cache):
    def sweep_all():
        results = {}
        for name in ABLATION_BENCHMARKS:
            actual, modeled = trace_budget(name, "1MB")
            # Ablated configurations can multiply live flows by orders
            # of magnitude (that is the point); a compact trace keeps
            # the no-merging variants simulable.
            results[name] = ablation_sweep(
                suite_cache.instance(name),
                ranks=1,
                trace_bytes=min(actual, 8_192),
                modeled_bytes=modeled,
            )
        return results

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    variants = list(next(iter(results.values())).keys())
    lines = ["== Optimization ablations (speedup, 1 rank) =="]
    lines.append(
        f"{'Benchmark':<14}" + "".join(f"{v:>22}" for v in variants)
    )
    for name, sweep in results.items():
        lines.append(
            f"{name:<14}"
            + "".join(f"{sweep[v].speedup:>22.2f}" for v in variants)
        )
    publish("ablations", "\n".join(lines))

    for name, sweep in results.items():
        for variant, run in sweep.items():
            assert run.reports_match, f"{name}/{variant}"
        full = sweep["full"].speedup
        # Removing the connected-component merge may not even be
        # runnable at full flow counts in hardware (SVC capacity); in
        # the model it must never *help* materially.
        for variant, run in sweep.items():
            assert run.speedup <= full * 1.25 + 0.5, f"{name}/{variant}"

    if "SPM" in results:
        spm = results["SPM"]
        # CC merging is what makes SPM profitable at all.
        assert (
            spm["full"].speedup
            >= spm["no-connected_components"].speedup
        )

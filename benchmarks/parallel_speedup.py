"""Wall-clock speedup of the host-parallel process backend.

The cycle-domain model already claims near-linear segment speedups;
this experiment measures what the *host* actually gains from running
segments in worker processes (:mod:`repro.exec`).  Setup follows the
EXPERIMENTS "Host-parallel execution" section: a 4-segment Ranges1
workload (one rank, two devices), 256 KiB trace, ``use_fiv=False`` so
all four segments dispatch concurrently, serial vs. a 4-worker process
pool.  Run directly::

    python benchmarks/parallel_speedup.py

Wall speedup scales with the host's core count: on >= 4 physical cores
the expected result is >1.5x (segment execution is ~99% of serial run
time here and parallelizes fully); on fewer cores the run degrades
gracefully toward serial speed plus the dispatch overhead, which this
script also reports.  Cycle-domain results are asserted bit-identical
between the backends either way.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.ap.geometry import BoardGeometry
from repro.core.config import DEFAULT_CONFIG
from repro.core.pap import ParallelAutomataProcessor
from repro.exec import ProcessPoolBackend
from repro.perf.measure import measure_wall
from repro.workloads.suite import build_benchmark

BENCHMARK = "Ranges1"
TRACE_BYTES = 262_144
WORKERS = 4


def main() -> None:
    bench = build_benchmark(BENCHMARK, scale=0.05, seed=0)
    data = bench.trace(TRACE_BYTES, 1)
    # One rank, two devices -> four half-core groups -> four segments
    # for a one-half-core benchmark; no FIV chain so all four segments
    # are dispatch-independent.
    config = replace(
        DEFAULT_CONFIG,
        geometry=BoardGeometry(ranks=1, devices_per_rank=2),
        use_fiv=False,
    )
    pap = ParallelAutomataProcessor(
        bench.automaton, config=config, half_cores=bench.half_cores
    )

    serial_run, serial_wall = measure_wall(
        lambda: pap.run(data), warmup=1, repeats=3
    )
    with ProcessPoolBackend(workers=WORKERS) as pool:
        # The warmup pass also spawns and warms the worker pool.
        pool_run, pool_wall = measure_wall(
            lambda: pap.run(data, backend=pool), warmup=1, repeats=3
        )

    assert pool_run.reports == serial_run.reports
    assert pool_run.enumeration_cycles == serial_run.enumeration_cycles
    assert pool_run.truth_times == serial_run.truth_times

    speedup = serial_wall.median_s / pool_wall.median_s
    print(f"host cores        : {os.cpu_count()}")
    print(
        f"workload          : {BENCHMARK} x {TRACE_BYTES // 1024} KiB, "
        f"{serial_run.num_segments} segments, FIV off"
    )
    print(
        f"serial backend    : {serial_wall.median_s * 1e3:7.1f}ms "
        f"(±{serial_wall.mad_s * 1e3:.1f}ms MAD)"
    )
    print(
        f"process backend   : {pool_wall.median_s * 1e3:7.1f}ms "
        f"(±{pool_wall.mad_s * 1e3:.1f}ms MAD, {WORKERS} workers)"
    )
    print(f"wall speedup      : {speedup:.2f}x")
    print("cycle domain      : bit-identical (asserted)")


if __name__ == "__main__":
    main()

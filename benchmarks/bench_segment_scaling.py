"""Input-size scaling: the paper's 1 MB -> 10 MB trend, swept.

Section 5.1 attributes the 10 MB input's larger speedups to longer
segments: more room for deactivation and convergence to kill flows and
for composition costs to amortize.  This bench sweeps trace length for
two contrasting benchmarks:

* Hamming — deactivation-driven: efficiency is already high at small
  segments and stays flat-to-rising;
* Dotstar03 — saturation-driven convergence: efficiency climbs with
  segment length, the mechanism behind this reproduction's known
  deviation on Dotstar-family benchmarks at scaled traces.
"""

from __future__ import annotations

from conftest import PAPER_1MB, publish

from repro.sim.runner import run_benchmark

SCALING_BENCHMARKS = ("Hamming", "Dotstar03", "ExactMatch")
TRACE_SIZES = (16_384, 32_768, 65_536, 131_072)


def test_speedup_vs_segment_length(benchmark, suite_cache):
    def sweep():
        results = {}
        for name in SCALING_BENCHMARKS:
            instance = suite_cache.instance(name)
            per_size = []
            for size in TRACE_SIZES:
                run = run_benchmark(
                    instance,
                    ranks=1,
                    trace_bytes=size,
                    modeled_bytes=PAPER_1MB,
                    trace_seed=1,
                )
                per_size.append((size, run))
            results[name] = per_size
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["== Speedup vs. trace length (1 rank) =="]
    header = f"{'Benchmark':<14}" + "".join(
        f"{size // 1024:>7}KiB" for size in TRACE_SIZES
    )
    lines.append(header)
    for name, per_size in results.items():
        lines.append(
            f"{name:<14}"
            + "".join(f"{run.speedup:>10.2f}" for _, run in per_size)
        )
    lines.append("")
    lines.append("avg active flows:")
    for name, per_size in results.items():
        lines.append(
            f"{name:<14}"
            + "".join(
                f"{run.pap.average_active_flows:>10.2f}"
                for _, run in per_size
            )
        )
    publish("segment_scaling", "\n".join(lines))

    for name, per_size in results.items():
        for _, run in per_size:
            assert run.reports_match, name
        smallest = per_size[0][1].speedup
        largest = per_size[-1][1].speedup
        # The paper's trend: longer inputs never hurt materially.
        assert largest >= smallest * 0.85, name

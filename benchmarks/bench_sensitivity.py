"""Section 5.3 sensitivity studies.

* Context-switch cost: speedup at 1x / 2x / 4x the 3-cycle switch
  latency.  The paper reports average speedup losses of ~0.5% (2x) and
  ~1.2% (4x) on 1 MB inputs, because switch cost is tiny relative to
  the TDM slice and active flow counts decay quickly.
* Dynamic-energy proxy: extra state transitions per input symbol under
  PAP relative to the baseline (the paper reports 2.4x on average;
  exact values depend on how long false paths survive).
"""

from __future__ import annotations

from conftest import publish, trace_budget

from repro.sim.runner import geometric_mean
from repro.sim.sweep import context_switch_sweep

SENSITIVITY_BENCHMARKS = (
    "ExactMatch",
    "Dotstar03",
    "Hamming",
    "SPM",
    "EntityResolution",
)


def test_context_switch_sensitivity(benchmark, suite_cache):
    def sweep_all():
        results = {}
        for name in SENSITIVITY_BENCHMARKS:
            actual, modeled = trace_budget(name, "1MB")
            results[name] = context_switch_sweep(
                suite_cache.instance(name),
                ranks=1,
                trace_bytes=actual,
                modeled_bytes=modeled,
            )
        return results

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    lines = ["== Context-switch sensitivity (1 rank, 1MB-class) =="]
    lines.append(
        f"{'Benchmark':<18}{'1x':>8}{'2x':>8}{'4x':>8}{'loss@4x%':>10}"
    )
    losses_2x, losses_4x = [], []
    for name, sweep in results.items():
        base = sweep[1].speedup
        two = sweep[2].speedup
        four = sweep[4].speedup
        loss = 100.0 * (1 - four / base) if base else 0.0
        losses_2x.append(max(0.0, 1 - two / base) if base else 0.0)
        losses_4x.append(max(0.0, 1 - four / base) if base else 0.0)
        lines.append(f"{name:<18}{base:>8.2f}{two:>8.2f}{four:>8.2f}{loss:>10.2f}")
    publish("sensitivity_switch", "\n".join(lines))

    for name, sweep in results.items():
        assert sweep[2].speedup <= sweep[1].speedup + 1e-9, name
        assert sweep[4].speedup <= sweep[2].speedup + 1e-9, name
    # Paper: average loss ~1.2% at 4x, 5% worst case — ours stays small.
    assert sum(losses_4x) / len(losses_4x) < 0.12


def test_energy_proxy_extra_transitions(benchmark, suite_cache):
    def collect():
        return suite_cache.runs(1, "1MB")

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["== Energy proxy: PAP transitions / baseline transitions =="]
    ratios = []
    for run in runs:
        ratio = run.extra_transitions_per_symbol
        ratios.append(ratio)
        lines.append(f"{run.name:<18}{ratio:>8.2f}x")
    lines.append(
        f"{'geomean':<18}{geometric_mean(ratios):>8.2f}x   (paper: 2.4x)"
    )
    publish("sensitivity_energy", "\n".join(lines))
    for run, ratio in zip(runs, ratios):
        assert ratio >= 0.99, run.name  # enumeration never does less work

"""Section 2.1's DFA-blowup claim, quantified.

"Converting these NFAs to equivalent DFAs also cannot help improve
performance since it leads to exponential growth in the number of
states."  This bench determinizes growing slices of a Dotstar-style
ruleset and reports NFA vs. DFA state counts — the justification for
NFA-native hardware (and for this whole line of work).
"""

from __future__ import annotations

from conftest import publish

from repro.automata.charclass import CharClass
from repro.automata.dfa import subset_construction
from repro.automata.minimize import minimize
from repro.automata.nfa import Nfa
from repro.errors import CapacityError


def dotstar_nfa(num_rules: int, gap: int) -> Nfa:
    """.*a.{gap}b patterns: each rule forces the DFA to remember a
    sliding window of `gap` bits."""
    nfa = Nfa(name=f"dotstar-{num_rules}")
    start = nfa.add_state(start=True)
    nfa.add_transition(start, CharClass.full(), start)
    for rule in range(num_rules):
        trigger = chr(ord("a") + rule)
        previous = start
        chain = (
            [CharClass.single(trigger)]
            + [CharClass.full()] * gap
            + [CharClass.single("z")]
        )
        for index, label in enumerate(chain):
            state = nfa.add_state(accept=index == len(chain) - 1)
            nfa.add_transition(previous, label, state)
            previous = state
    return nfa


def test_dfa_state_blowup(benchmark):
    def measure():
        rows = []
        for gap in (2, 4, 6, 8, 10):
            nfa = dotstar_nfa(1, gap)
            nfa_states = nfa.num_states
            try:
                dfa = subset_construction(nfa, max_states=200_000)
                dfa_states = dfa.num_states
                minimal_states = minimize(dfa).num_states
            except CapacityError:
                dfa_states = -1
                minimal_states = -1
            rows.append((gap, nfa_states, dfa_states, minimal_states))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = ["== DFA blowup for .*a.{n}z (Section 2.1) =="]
    lines.append(
        f"{'gap n':>6}{'NFA states':>12}{'DFA states':>12}"
        f"{'minimal DFA':>13}{'ratio':>9}"
    )
    for gap, nfa_states, dfa_states, minimal_states in rows:
        ratio = (
            f"{minimal_states / nfa_states:8.1f}"
            if minimal_states > 0
            else "  >cap"
        )
        lines.append(
            f"{gap:>6}{nfa_states:>12}"
            f"{str(dfa_states if dfa_states > 0 else 'overflow'):>12}"
            f"{str(minimal_states if minimal_states > 0 else 'overflow'):>13}"
            f"{ratio:>9}"
        )
    publish("dfa_blowup", "\n".join(lines))

    # The blowup is fundamental, not a construction artifact: even the
    # *minimal* DFA is exponential in the gap (it must remember which of
    # the last n symbols were 'a').
    measurable = [(g, m) for g, _, _, m in rows if m > 0]
    for (gap_a, min_a), (gap_b, min_b) in zip(measurable, measurable[1:]):
        assert min_b >= min_a * 2 ** ((gap_b - gap_a) - 1), (gap_a, gap_b)
    assert measurable[-1][1] > 2 ** measurable[-1][0]

"""Extension study: speculation vs. enumeration (paper Section 6/7).

The paper names speculation as future work for reducing active flows.
This bench compares the enumerated PAP against the speculative variant
with the cold and profile predictors on benchmarks spanning the
prediction-difficulty spectrum:

* ExactMatch / RandomForest — boundaries are almost always "cold"
  (nothing beyond the ASG alive): speculation should match or beat
  enumeration;
* Dotstar03 / Snort — saturating ``.*`` states make the cold guess
  wrong and the boundary sets diverse: mispredictions serialize and
  enumeration should win.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import publish, trace_budget

from repro.ap.geometry import BoardGeometry
from repro.core.config import PAPConfig
from repro.core.speculation import SpeculativeAutomataProcessor

SPECULATION_BENCHMARKS = (
    "ExactMatch",
    "RandomForest",
    "Dotstar03",
    "Snort",
)


def _speculate(instance, predictor, trace_bytes, modeled):
    config = PAPConfig(
        geometry=BoardGeometry(ranks=1),
        timing=PAPConfig().timing.scaled_for_input(trace_bytes, modeled),
    )
    data = instance.trace(trace_bytes, 1)
    spec = SpeculativeAutomataProcessor(
        instance.automaton,
        config=config,
        half_cores=instance.half_cores,
        predictor=predictor,
    )
    result = spec.run(data)
    return result


def test_speculation_vs_enumeration(benchmark, suite_cache):
    def sweep():
        rows = []
        for name in SPECULATION_BENCHMARKS:
            actual, modeled = trace_budget(name, "1MB")
            instance = suite_cache.instance(name)
            pap_run = suite_cache.run(name, 1, "1MB")
            data_len = pap_run.trace_bytes
            base_cycles = pap_run.baseline.total_cycles
            cold = _speculate(instance, "cold", actual, modeled)
            profile = _speculate(instance, "profile", actual, modeled)
            rows.append(
                (
                    name,
                    pap_run.speedup,
                    base_cycles / max(1, cold.total_cycles),
                    cold.prediction_accuracy,
                    base_cycles / max(1, profile.total_cycles),
                    profile.prediction_accuracy,
                    data_len,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["== Speculation vs. enumeration (1 rank, 1MB-class) =="]
    lines.append(
        f"{'Benchmark':<14}{'PAP':>8}{'SpecCold':>10}{'acc%':>7}"
        f"{'SpecProf':>10}{'acc%':>7}"
    )
    for name, pap, cold, cold_acc, prof, prof_acc, _ in rows:
        lines.append(
            f"{name:<14}{pap:>8.2f}{cold:>10.2f}{cold_acc * 100:>7.1f}"
            f"{prof:>10.2f}{prof_acc * 100:>7.1f}"
        )
    publish("speculation", "\n".join(lines))

    by_name = {row[0]: row for row in rows}
    if "ExactMatch" in by_name:
        # Cold boundaries: speculation is essentially always right.
        assert by_name["ExactMatch"][3] > 0.9
    for row in rows:
        # Speculation is exact and golden-bounded: never below ~1x.
        assert row[2] >= 0.99 and row[4] >= 0.99, row[0]


def test_speculation_reports_exact(benchmark, suite_cache):
    def verify():
        name = "Dotstar03"
        actual, modeled = trace_budget(name, "1MB")
        instance = suite_cache.instance(name)
        data = instance.trace(min(actual, 16_384), 1)
        from repro.ap.sequential import run_sequential

        baseline = run_sequential(instance.automaton, data)
        config = replace(
            PAPConfig(geometry=BoardGeometry(ranks=1)),
            timing=PAPConfig().timing.scaled_for_input(len(data), modeled),
        )
        for predictor in ("cold", "profile"):
            result = SpeculativeAutomataProcessor(
                instance.automaton,
                config=config,
                half_cores=instance.half_cores,
                predictor=predictor,
            ).run(data)
            assert result.reports == baseline.reports, predictor
        return True

    assert benchmark.pedantic(verify, rounds=1, iterations=1)

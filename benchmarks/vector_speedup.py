"""Wall-clock speedup of the bit-parallel vector executor at full size.

The 64 KiB scaled-trace substitution (DESIGN.md "Scaling notes") exists
because the set-walk executor steps ~10^3x slower than VASim; the
vector strategy attacks exactly that substrate, so this experiment
measures it at the paper's *actual* input sizes — no trace scaling.
Setup: transition-bound suite workloads (the PR-8 phase profiler shows
the transition phase at 97-100% of cycles on 18/19 workloads), a full
1 MB trace by default, serial set-walk vs. the vector backend on the
same single-rank run.  Run directly::

    python benchmarks/vector_speedup.py

Environment knobs: ``REPRO_VECTOR_BYTES`` overrides the trace size
(e.g. 10485760 for the 10 MB point) and ``REPRO_VECTOR_BENCH`` the
comma-separated workload list.  Cycle-domain results are asserted
bit-identical between the backends — the speedup is pure host wall
clock, the modeled cycles do not move.

Expected shape (see the module docstring of ``repro.automata.vector``):
sparse-active-set workloads whose cost is dominated by per-state
successor walks (Levenshtein, Hamming) gain the most — the acceptance
bar is >= 5x on at least one of them at >= 1 MB — while dense or
heavily-latched workloads sit near or below 1x because the set path's
latched fast-path already skips most of the work the vector path
vectorizes.
"""

from __future__ import annotations

import os

from repro.core.config import DEFAULT_CONFIG
from repro.core.pap import ParallelAutomataProcessor
from repro.exec import SerialBackend, VectorBackend
from repro.perf.measure import measure_wall
from repro.workloads.suite import build_benchmark

TRACE_BYTES = int(os.environ.get("REPRO_VECTOR_BYTES", str(1_048_576)))
BENCHMARKS = os.environ.get("REPRO_VECTOR_BENCH", "Levenshtein,Hamming").split(",")


def main() -> None:
    print(f"trace bytes       : {TRACE_BYTES} ({TRACE_BYTES // 1024} KiB, unscaled)")
    print("workload            serial        vector       speedup")
    for name in BENCHMARKS:
        bench = build_benchmark(name, scale=0.1, seed=0)
        data = bench.trace(TRACE_BYTES, 1)
        pap = ParallelAutomataProcessor(
            bench.automaton,
            config=DEFAULT_CONFIG,
            half_cores=bench.half_cores,
        )
        serial_run, serial_wall = measure_wall(
            lambda: pap.run(data, backend=SerialBackend()), warmup=0, repeats=1
        )
        vector_run, vector_wall = measure_wall(
            lambda: pap.run(data, backend=VectorBackend()), warmup=0, repeats=1
        )

        assert vector_run.reports == serial_run.reports
        assert vector_run.truth_times == serial_run.truth_times
        assert vector_run.total_cycles == serial_run.total_cycles

        per_sym = 1e6 / len(data)
        print(
            f"{name:<18}"
            f"{serial_wall.median_s * per_sym:7.2f} us/sym"
            f"{vector_wall.median_s * per_sym:9.2f} us/sym"
            f"{serial_wall.median_s / vector_wall.median_s:9.2f}x"
        )
    print("cycle domain      : bit-identical (asserted)")


if __name__ == "__main__":
    main()

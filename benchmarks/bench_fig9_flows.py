"""Figure 9: flow reduction across the optimization pipeline.

For each benchmark: enumeration paths in the chosen symbol's range,
flows after connected-component merging, after common-parent merging,
and the average number of *active* flows during execution (after
dynamic convergence/deactivation/FIV).  Shares the Figure 8
1-rank/1MB-class measurements.

Expected shape: huge range -> tiny planned-flow counts for SPM (the
paper: 20,101 -> 5) and the other many-component benchmarks; dynamic
checks pull average active flows near 1 for most of the suite.
"""

from __future__ import annotations

from conftest import publish

from repro.sim.report import format_figure9


def test_fig9_flow_reduction(benchmark, suite_cache):
    runs = benchmark.pedantic(
        suite_cache.runs, args=(1, "1MB"), rounds=1, iterations=1
    )
    publish("fig9", format_figure9(runs))

    by_name = {run.name: run for run in runs}
    if "SPM" in by_name:
        stats = [
            plan.stats
            for plan in by_name["SPM"].pap.plans
            if not plan.is_golden
        ]
        if stats and max(s.flows_in_range for s in stats) > 0:
            # CC merging must collapse SPM's paths by orders of magnitude.
            assert max(s.flows_after_cc for s in stats) <= max(
                s.flows_in_range for s in stats
            )
    for run in runs:
        for plan in run.pap.plans:
            if plan.is_golden:
                continue
            assert plan.stats.flows_after_parent <= plan.stats.flows_after_cc
            assert plan.stats.flows_after_cc <= max(
                1, plan.stats.flows_in_range
            )

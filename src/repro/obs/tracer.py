"""Cycle-domain + wall-clock span/event tracing.

The paper's evaluation is a story about *dynamic* behaviour — flows
dying over time, segments converging, decode costs chaining — so the
tracer records every span and instant in **two time domains** at once:

* **cycles** — simulated symbol cycles, the domain every figure of the
  paper lives in.  Cycle timestamps are supplied explicitly by the
  instrumented code (the simulator knows its own clock).
* **wall** — host ``perf_counter_ns`` time, captured automatically on
  every record.  This is the domain for profiling the *simulator
  itself* (which hot path is slow on the host).

Three record kinds cover the architecture's dynamics:

* *spans* (``begin_span``/``end_span``, or ``complete_span`` for
  retroactive cycle intervals) — segment executions, host decodes;
* *instants* — flow spawn/deactivate/converge, FIV arrival,
  golden-fallback;
* *counter samples* — TDM slice occupancy, cache fill.

:class:`Observer` is the **null object**: the base class's hooks are
all no-ops and ``enabled`` is ``False``, so production code threads an
observer unconditionally and pays (nearly) nothing when tracing is
off.  :class:`Tracer` is the recording subclass; its event list feeds
the Chrome trace-event exporter (:mod:`repro.obs.chrome`) and the text
profiler (:mod:`repro.obs.profile`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.phases import NULL_PHASES, PhaseAccumulator, PhaseRecorder

TRACK_RUN = "run"
TRACK_HOST = "host"

SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"


@dataclass
class TraceEvent:
    """One recorded span, instant, or counter sample.

    ``wall_*`` fields are host nanoseconds (always present);
    ``cycle_*`` fields are simulated symbol cycles (present when the
    instrumented site supplied them).  ``depth`` is the span-nesting
    depth within the event's track at record time.
    """

    kind: str
    name: str
    track: str
    wall_start_ns: int
    wall_end_ns: int | None = None
    cycle_start: int | None = None
    cycle_end: int | None = None
    value: float | None = None
    args: dict[str, Any] | None = None
    depth: int = 0

    @property
    def wall_duration_ns(self) -> int | None:
        if self.wall_end_ns is None:
            return None
        return self.wall_end_ns - self.wall_start_ns

    @property
    def cycle_duration(self) -> int | None:
        if self.cycle_start is None or self.cycle_end is None:
            return None
        return self.cycle_end - self.cycle_start


class Observer:
    """The disabled (null) observer: every hook is a no-op.

    Hot paths guard expensive argument construction with
    ``if observer.enabled:`` — the hooks themselves are safe to call
    unconditionally.
    """

    enabled: bool = False
    metrics: MetricsRegistry = NULL_REGISTRY
    #: Wall-domain phase accumulator (:mod:`repro.obs.phases`); the
    #: null recorder's ``add`` is a no-op and ``enabled`` is ``False``,
    #: so the scheduler's hot loop pays one attribute check when phase
    #: profiling is off.
    phases: PhaseRecorder = NULL_PHASES
    #: Correlation id threaded into dispatch spans and health records;
    #: only the flight recorder (:mod:`repro.obs.telemetry`) sets one.
    run_id: str | None = None

    def begin_span(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> int:
        """Open a span; returns a handle for :meth:`end_span`."""
        return -1

    def end_span(
        self,
        handle: int,
        *,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Close the span identified by ``handle``."""

    def complete_span(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle_start: int | None = None,
        cycle_end: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a span whose cycle interval is known after the fact
        (e.g. the host decode chain, computed once all segments ran)."""

    def instant(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a point event (flow death, FIV arrival, ...)."""

    def counter(
        self,
        name: str,
        value: float,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
    ) -> None:
        """Record one sample of a time-varying quantity."""

    def run_failed(
        self,
        error: BaseException,
        *,
        health: Any | None = None,
    ) -> None:
        """Hook fired when a run is about to re-raise ``error``.

        ``health`` is the run's :class:`~repro.exec.resilience.RunHealth`
        if one was being kept.  The flight recorder overrides this to
        write a crash bundle; the base observer ignores failures.
        """

    def ingest_worker_batch(
        self,
        batch: Any,
        *,
        span: int = -1,
        segment: int | None = None,
    ) -> None:
        """Merge a worker-shipped :class:`~repro.obs.remote.RecordBatch`
        into this observer's timeline, metrics, and phase accounting.

        ``span`` is the handle of the parent ``dispatch[i]`` span the
        batch is parented under; ``segment`` the segment index it ran.
        The null observer discards batches (workers only capture when
        the parent observer is enabled, so this is the cold path).
        """

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> Iterator[int]:
        """Context-manager sugar over ``begin_span``/``end_span``.

        The exit cycle is not knowable here; callers needing a
        cycle-domain end use the explicit pair instead.
        """
        handle = self.begin_span(name, track=track, cycle=cycle, args=args)
        try:
            yield handle
        finally:
            self.end_span(handle)


NULL_OBSERVER = Observer()


class Tracer(Observer):
    """The recording observer.

    Parameters
    ----------
    clock:
        Wall-clock source in nanoseconds.  Injectable so tests can pin
        deterministic wall timestamps; defaults to
        :func:`time.perf_counter_ns`.
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], int] | None = None) -> None:
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self.phases = PhaseAccumulator()
        self._open_stacks: dict[str, list[int]] = {}

    # -- recording hooks -------------------------------------------------

    def begin_span(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> int:
        stack = self._open_stacks.setdefault(track, [])
        event = TraceEvent(
            kind=SPAN,
            name=name,
            track=track,
            wall_start_ns=self.clock(),
            cycle_start=cycle,
            args=dict(args) if args else None,
            depth=len(stack),
        )
        handle = len(self.events)
        self.events.append(event)
        stack.append(handle)
        return handle

    def end_span(
        self,
        handle: int,
        *,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        if handle < 0 or handle >= len(self.events):
            return
        event = self.events[handle]
        if event.kind != SPAN or event.wall_end_ns is not None:
            return
        event.wall_end_ns = self.clock()
        if cycle is not None:
            event.cycle_end = cycle
        if args:
            event.args = {**(event.args or {}), **args}
        stack = self._open_stacks.get(event.track)
        if stack and handle in stack:
            # LIFO in the common case; tolerate out-of-order closes.
            stack.remove(handle)

    def complete_span(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle_start: int | None = None,
        cycle_end: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        now = self.clock()
        self.events.append(
            TraceEvent(
                kind=SPAN,
                name=name,
                track=track,
                wall_start_ns=now,
                wall_end_ns=now,
                cycle_start=cycle_start,
                cycle_end=cycle_end,
                args=dict(args) if args else None,
                depth=len(self._open_stacks.get(track, ())),
            )
        )

    def instant(
        self,
        name: str,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            TraceEvent(
                kind=INSTANT,
                name=name,
                track=track,
                wall_start_ns=self.clock(),
                cycle_start=cycle,
                args=dict(args) if args else None,
                depth=len(self._open_stacks.get(track, ())),
            )
        )

    def counter(
        self,
        name: str,
        value: float,
        *,
        track: str = TRACK_RUN,
        cycle: int | None = None,
    ) -> None:
        self.events.append(
            TraceEvent(
                kind=COUNTER,
                name=name,
                track=track,
                wall_start_ns=self.clock(),
                cycle_start=cycle,
                value=value,
            )
        )

    # -- worker-batch ingestion ------------------------------------------

    def ingest_worker_batch(
        self,
        batch: Any,
        *,
        span: int = -1,
        segment: int | None = None,
    ) -> None:
        """Merge a worker's shipped records into this tracer.

        Worker events land on per-pid tracks (``pid{pid}:{track}``)
        with wall timestamps re-based into the parent's clock domain,
        parented under the dispatch span ``span``; worker metrics fold
        into the registry prefixed ``worker.``; worker wall-phase rows
        fold into :attr:`phases`.  Implemented in
        :mod:`repro.obs.remote` (imported lazily — only process-backend
        runs pay for it).
        """
        from repro.obs.remote import merge_batch

        merge_batch(self, batch, span=span, segment=segment)

    def _ingest_event(self, event: TraceEvent) -> None:
        """Append one re-based worker event.  The flight recorder
        overrides this to also stream the record to its ledger."""
        self.events.append(event)

    # -- introspection & export ------------------------------------------

    def open_spans(self) -> tuple[int, ...]:
        """Handles of spans begun but not yet ended (debugging aid)."""
        return tuple(
            handle
            for stack in self._open_stacks.values()
            for handle in stack
        )

    def tracks(self) -> tuple[str, ...]:
        """Track names in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return tuple(seen)

    def to_chrome(self, *, domain: str = "cycles") -> dict:
        """Chrome trace-event JSON object (see :mod:`repro.obs.chrome`)."""
        from repro.obs.chrome import export_chrome_trace

        return export_chrome_trace(
            self.events, domain=domain, metrics=self.metrics.snapshot()
        )

    def write_chrome(self, path: str, *, domain: str = "cycles") -> None:
        """Serialize :meth:`to_chrome` to ``path``."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(domain=domain), handle)

    def text_profile(self) -> str:
        """Human-readable aggregate profile (see :mod:`repro.obs.profile`)."""
        from repro.obs.profile import render_profile

        return render_profile(self)


@dataclass
class CountingObserver(Observer):
    """Counts hook invocations without recording anything.

    Used by the overhead benchmark to estimate how many observer calls
    a run makes, so the cost of the *null* observer can be bounded as
    ``calls x per-call-cost``.
    """

    enabled: bool = True
    calls: int = 0
    metrics: MetricsRegistry = field(default_factory=NullMetricsRegistry)

    def begin_span(self, name, *, track=TRACK_RUN, cycle=None, args=None):
        self.calls += 1
        return -1

    def end_span(self, handle, *, cycle=None, args=None):
        self.calls += 1

    def complete_span(
        self, name, *, track=TRACK_RUN, cycle_start=None, cycle_end=None,
        args=None,
    ):
        self.calls += 1

    def instant(self, name, *, track=TRACK_RUN, cycle=None, args=None):
        self.calls += 1

    def counter(self, name, value, *, track=TRACK_RUN, cycle=None):
        self.calls += 1

"""Worker-side telemetry capture and parent-side merge.

The process backend runs each segment in a spawned worker whose
scheduler would otherwise execute under the null observer — every
worker-side span, flow event, metric, and phase cost invisible to the
parent's ledger.  This module closes that gap with a ship-don't-stream
design (workers have no handle on the parent's ledger file, and
cross-process streaming would serialize the hot loop on a pipe):

* :class:`RecordingObserver` — a plain :class:`~repro.obs.tracer.Tracer`
  a worker attaches to its cached scheduler for the duration of one
  task.  Everything it captures is plain data.
* :class:`RecordBatch` — the pickle-safe container shipped back inside
  ``SegmentTaskResult``: the events, a metrics snapshot, wall-phase
  rows, and the worker's one-slot scheduler-cache behaviour
  (compile hit/miss + compile wall).
* :func:`merge_batch` — the parent-side fold: re-base worker
  ``perf_counter_ns`` timestamps into the parent's clock domain
  (the domains are *not* comparable across processes), land events on
  stable per-pid tracks, parent them under the ``dispatch[i]`` span,
  and fold metrics into the registry prefixed ``worker.``.

Re-basing: the worker's capture window ``[wall_start_ns,
wall_end_ns]`` is right-aligned at the parent's dispatch-span end (the
moment the result — batch included — was observed by the parent).
That anchor is the only event both clocks witness, so worker records
always land *inside* their dispatch span, preserving the visual
parent/child containment in the wall-domain Chrome export.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.tracer import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: args key carrying the originating worker pid on merged records.
ARG_PID = "pid"
#: args key carrying the parent dispatch-span handle on merged records.
ARG_PARENT_SPAN = "parent_span"
#: Instant recorded once per merged batch (the per-batch manifest).
BATCH_MARKER = "worker-batch"


def worker_track(pid: int, track: str) -> str:
    """The parent-side track a worker event lands on.

    Stable per pid — ``pid{pid}:{track}`` — so a pool worker that runs
    many segments across many runs keeps one track family instead of
    interleaving with the parent's ``exec`` spans.
    """
    return f"pid{pid}:{track}"


@dataclass(frozen=True)
class RecordBatch:
    """One worker task's shipped telemetry (pickle-safe, plain data)."""

    pid: int
    wall_start_ns: int
    """Worker-clock time the capture began (task entry)."""
    wall_end_ns: int
    """Worker-clock time the capture ended (batch sealed)."""
    events: tuple[TraceEvent, ...]
    metrics: dict = field(default_factory=dict)
    """``MetricsRegistry.snapshot()`` of the worker-side registry."""
    phases: tuple[tuple[int, str, int], ...] = ()
    """Wall-phase rows ``(segment, phase, wall_ns)``."""
    compile_hit: bool = False
    """Whether the one-slot scheduler cache served this task."""
    compile_wall_ns: int = 0
    """Wall spent building the scheduler on a miss (0 on a hit)."""
    compile_hits: int = 0
    """Lifetime cache hits in this worker process (token reuse)."""
    compile_misses: int = 0
    """Lifetime cache misses in this worker process (token thrash)."""

    @property
    def wall_ns(self) -> int:
        return self.wall_end_ns - self.wall_start_ns


class RecordingObserver(Tracer):
    """The observer a worker attaches to its cached scheduler.

    An ordinary :class:`Tracer` (events, metrics, wall phases) plus
    :meth:`to_batch`, which seals the capture into a pickle-safe
    :class:`RecordBatch`.  Workers create one per task: batches stay
    small (one segment's records) and carry an unambiguous capture
    window for parent-side re-basing.
    """

    def __init__(self) -> None:
        super().__init__()
        self.wall_start_ns = self.clock()

    def to_batch(
        self,
        *,
        compile_hit: bool = False,
        compile_wall_ns: int = 0,
        compile_hits: int = 0,
        compile_misses: int = 0,
    ) -> RecordBatch:
        """Seal the capture for shipping inside ``SegmentTaskResult``."""
        return RecordBatch(
            pid=os.getpid(),
            wall_start_ns=self.wall_start_ns,
            wall_end_ns=self.clock(),
            events=tuple(self.events),
            metrics=self.metrics.snapshot(),
            phases=self.phases.items(),
            compile_hit=compile_hit,
            compile_wall_ns=compile_wall_ns,
            compile_hits=compile_hits,
            compile_misses=compile_misses,
        )


def fold_metrics(
    registry: "MetricsRegistry", snapshot: dict, *, prefix: str = "worker."
) -> None:
    """Fold a worker's metrics snapshot into a live registry.

    Counters add; gauges keep last-value semantics while preserving the
    worker's observed max; histograms merge exactly (count, total,
    min/max, power-of-two buckets), so parent-side quantiles summarize
    the union of observations.
    """
    for name, payload in snapshot.items():
        kind = payload.get("type")
        target = f"{prefix}{name}"
        if kind == "counter":
            registry.counter(target).inc(int(payload["value"]))
        elif kind == "gauge":
            maximum = payload.get("max")
            if maximum is not None:
                registry.gauge(target).set(maximum)
            registry.gauge(target).set(payload["value"])
        elif kind == "histogram":
            if not payload.get("count"):
                continue
            histogram = registry.histogram(target)
            histogram.count += int(payload["count"])
            histogram.total += payload["total"]
            histogram.min_value = min(histogram.min_value, payload["min"])
            histogram.max_value = max(histogram.max_value, payload["max"])
            for exponent, count in payload.get("buckets", {}).items():
                key = int(exponent)
                histogram.buckets[key] = (
                    histogram.buckets.get(key, 0) + int(count)
                )


def merge_batch(
    tracer: Tracer,
    batch: RecordBatch | None,
    *,
    span: int = -1,
    segment: int | None = None,
) -> None:
    """Fold one worker batch into the parent tracer (see module doc).

    ``span`` is the handle of the parent's ``dispatch[i]`` span (the
    batch's parent in the merged timeline); ``segment`` the segment
    index the task executed.  Safe to call with ``batch=None`` (workers
    only capture when asked).
    """
    if batch is None:
        return
    parent = (
        tracer.events[span] if 0 <= span < len(tracer.events) else None
    )
    anchor = (
        parent.wall_end_ns
        if parent is not None and parent.wall_end_ns is not None
        else tracer.clock()
    )
    offset = anchor - batch.wall_end_ns
    lineage = {ARG_PID: batch.pid, ARG_PARENT_SPAN: span}
    if tracer.run_id is not None:
        lineage["run"] = tracer.run_id
    for event in batch.events:
        args = dict(event.args) if event.args else {}
        args.update(lineage)
        tracer._ingest_event(
            TraceEvent(
                kind=event.kind,
                name=event.name,
                track=worker_track(batch.pid, event.track),
                wall_start_ns=event.wall_start_ns + offset,
                wall_end_ns=(
                    event.wall_end_ns + offset
                    if event.wall_end_ns is not None
                    else None
                ),
                cycle_start=event.cycle_start,
                cycle_end=event.cycle_end,
                value=event.value,
                args=args,
                depth=event.depth,
            )
        )
    tracer.instant(
        BATCH_MARKER,
        track=worker_track(batch.pid, "task"),
        args={
            **lineage,
            "segment": segment,
            "records": len(batch.events),
            "worker_wall_ms": round(batch.wall_ns / 1e6, 3),
            "compile_hit": batch.compile_hit,
            "compile_wall_ms": round(batch.compile_wall_ns / 1e6, 3),
            "compile_hits": batch.compile_hits,
            "compile_misses": batch.compile_misses,
        },
    )

    metrics = tracer.metrics
    fold_metrics(metrics, batch.metrics, prefix="worker.")
    metrics.counter("worker.batches").inc()
    metrics.counter("worker.records").inc(len(batch.events))
    metrics.counter("worker.compile_hits").inc(1 if batch.compile_hit else 0)
    metrics.counter("worker.compile_misses").inc(
        0 if batch.compile_hit else 1
    )
    if not batch.compile_hit:
        metrics.histogram("worker.compile_wall_ms").observe(
            batch.compile_wall_ns / 1e6
        )
    if tracer.phases.enabled and batch.phases:
        tracer.phases.merge(batch.phases)

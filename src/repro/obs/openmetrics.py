"""OpenMetrics/Prometheus text exposition for metrics snapshots.

Turns a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` payload into
the OpenMetrics text format, so every run's counters, gauges, and
histograms can be scraped, archived next to BENCH artifacts, and
diffed across runs with standard tooling::

    # TYPE repro_flows_deactivated counter
    repro_flows_deactivated_total 128
    # TYPE repro_segment_finish_cycles histogram
    repro_segment_finish_cycles_bucket{le="4096"} 14
    repro_segment_finish_cycles_bucket{le="+Inf"} 16
    ...
    # EOF

Histogram buckets are the registry's power-of-two buckets rendered
cumulatively (``le="2**e"``); the p50/p95/p99 quantile estimates ride
along as a separate ``<name>_quantile`` gauge family with a
``quantile`` label, because one metric may not be both a histogram and
a summary.  :func:`parse_openmetrics` reads the same format back into a
flat sample map — that is what ``repro obs diff`` compares.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

#: Default metric-name prefix; keeps repro metrics namespaced when the
#: exposition is scraped into a shared Prometheus instance.
DEFAULT_PREFIX = "repro"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)(\s+\S+)?$"
)


def metric_name(name: str, *, prefix: str = DEFAULT_PREFIX) -> str:
    """Sanitize one registry instrument name for the exposition.

    Dots and other separators become underscores; a prefix namespaces
    the result (``svc.peak_occupancy`` -> ``repro_svc_peak_occupancy``).
    """
    cleaned = _NAME_RE.sub("_", name).strip("_")
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float | int | None) -> str:
    if value is None:
        return "NaN"  # never emitted: callers skip None-valued samples
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _counter_lines(name: str, payload: Mapping) -> Iterable[str]:
    yield f"# TYPE {name} counter"
    yield f"{name}_total {_format_value(payload['value'])}"


def _gauge_lines(name: str, payload: Mapping) -> Iterable[str]:
    yield f"# TYPE {name} gauge"
    yield f"{name} {_format_value(payload['value'])}"
    maximum = payload.get("max")
    if maximum is not None:
        yield f"# TYPE {name}_max gauge"
        yield f"{name}_max {_format_value(maximum)}"


def _histogram_lines(name: str, payload: Mapping) -> Iterable[str]:
    yield f"# TYPE {name} histogram"
    buckets = payload.get("buckets") or {}
    cumulative = 0
    for exponent in sorted(int(e) for e in buckets):
        cumulative += buckets[str(exponent)]
        yield f'{name}_bucket{{le="{2 ** exponent}"}} {cumulative}'
    yield f'{name}_bucket{{le="+Inf"}} {_format_value(payload["count"])}'
    yield f"{name}_sum {_format_value(payload['total'])}"
    yield f"{name}_count {_format_value(payload['count'])}"
    quantiles = payload.get("quantiles")
    if quantiles:
        yield f"# TYPE {name}_quantile gauge"
        for label, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            value = quantiles.get(label)
            if value is not None:
                yield (
                    f'{name}_quantile{{quantile="{q}"}} '
                    f"{_format_value(value)}"
                )


def render_openmetrics(
    snapshot: Mapping[str, Mapping],
    *,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render one metrics snapshot as OpenMetrics text.

    ``snapshot`` is the plain-data payload of
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or the
    ``metrics`` member of a ledger close record / crash bundle).  The
    output is deterministic — instruments sorted by exposed name — and
    ends with the spec's ``# EOF`` terminator.
    """
    renderers = {
        "counter": _counter_lines,
        "gauge": _gauge_lines,
        "histogram": _histogram_lines,
    }
    lines: list[str] = []
    exposed = sorted(
        (metric_name(raw, prefix=prefix), raw) for raw in snapshot
    )
    for name, raw in exposed:
        payload = snapshot[raw]
        renderer = renderers.get(str(payload.get("type")))
        if renderer is None:
            continue
        lines.extend(renderer(name, payload))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, float]:
    """Parse an OpenMetrics exposition into ``{sample: value}``.

    Sample keys keep their label sets verbatim
    (``repro_x_bucket{le="8"}``), so two expositions diff sample by
    sample.  Unparseable non-comment lines raise :class:`ValueError` —
    ``repro obs summary`` uses that as its validity check.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError(f"line {lineno}: not an OpenMetrics sample")
        key = match.group("name") + (match.group("labels") or "")
        try:
            samples[key] = float(match.group("value"))
        except ValueError as error:
            raise ValueError(
                f"line {lineno}: bad sample value "
                f"{match.group('value')!r}"
            ) from error
    if "# EOF" not in text:
        raise ValueError("missing '# EOF' terminator")
    return samples

"""Live predicted-vs-actual drift detection (AP401-AP404).

PR 6's cost model (:mod:`repro.analyze.cost`) predicts a workload's
enumeration cycles, per-segment finish times, and flow counts before it
runs; its validation against BENCH_seed is *static* — checked once,
offline.  The drift monitor makes that check *live*: load a prediction
at run start, observe the actual execution, and emit structured
diagnostics the moment reality diverges past a tolerance — the same
predicted-vs-actual framing the DFA-vs-NFA crossover papers use, run
continuously.

Drift diagnostics reuse the lint :class:`~repro.lint.diagnostics.Diagnostic`
model with a dedicated AP4xx family (all ``WARNING`` — drift means the
model is stale or the run is anomalous, never that results are wrong):

* ``AP401`` ``predicted-cycles-drift`` — observed enumeration cycles
  diverge from the predicted total by more than the tolerance.
* ``AP402`` ``flow-count-drift`` — total end-of-segment flow count
  diverges from the prediction.
* ``AP403`` ``segment-finish-drift`` — any single segment's finish
  cycles diverge from its predicted finish.
* ``AP404`` ``prediction-mismatch`` — the prediction does not describe
  this run (different input size or segment count); comparisons are
  skipped because they would be meaningless.

Every check also feeds the observer: a ``drift.checks`` counter, a
``drift.events`` counter, and one ``drift`` instant per diagnostic on a
dedicated ``drift`` track, so ledgers and OpenMetrics exports carry the
drift story alongside the run's own telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.metrics import PAPRunResult
from repro.lint.diagnostics import Diagnostic, Severity
from repro.obs.tracer import NULL_OBSERVER, Observer

#: Default relative drift tolerance.  Looser than the cost model's
#: offline validation bound (``repro.analyze.report.DEFAULT_TOLERANCE``
#: = 0.05): live runs may legitimately differ from the modeled
#: configuration in small ways, and drift warnings should mark genuine
#: divergence, not modeling noise.
DEFAULT_DRIFT_TOLERANCE = 0.10

#: Ledger/trace track drift instants are recorded on.
DRIFT_TRACK = "drift"


def _relative_error(observed: float, predicted: float) -> float:
    if predicted == 0:
        return 0.0 if observed == 0 else float("inf")
    return abs(observed - predicted) / abs(predicted)


@dataclass(frozen=True)
class DriftObservation:
    """What a live run actually did, in the cost model's terms.

    Only ``enumeration_cycles`` is mandatory; ``None`` elsewhere means
    "not observed" and skips the corresponding check — artifact-level
    observations (built from BENCH cycles payloads) carry totals only,
    while :meth:`from_run` fills everything.
    """

    enumeration_cycles: int
    input_bytes: int | None = None
    num_segments: int | None = None
    flows_at_end: int | None = None
    segment_finish_cycles: tuple[int, ...] | None = None

    @classmethod
    def from_run(cls, result: PAPRunResult) -> "DriftObservation":
        """Observe a completed :class:`~repro.core.metrics.PAPRunResult`."""
        segments = result.segment_results
        return cls(
            enumeration_cycles=result.enumeration_cycles,
            input_bytes=sum(r.plan.segment.length for r in segments),
            num_segments=len(segments),
            flows_at_end=sum(r.metrics.flows_at_end for r in segments),
            segment_finish_cycles=tuple(
                r.metrics.finish_cycles for r in segments
            ),
        )


class DriftMonitor:
    """Compare live observations against one cost-model prediction.

    Parameters
    ----------
    prediction:
        A prediction payload in the ANALYZE artifact shape — the
        ``["prediction"]`` dict of one workload entry (see
        :meth:`repro.analyze.cost.WorkloadPrediction.to_dict`).
    tolerance:
        Relative divergence beyond which a drift diagnostic fires.
    observer:
        Telemetry sink; drift instants and counters go here.  The
        default null observer keeps the monitor side-effect-free.
    workload:
        Name stamped into diagnostics (the ``automaton`` field).
    """

    def __init__(
        self,
        prediction: Mapping[str, Any],
        *,
        tolerance: float = DEFAULT_DRIFT_TOLERANCE,
        observer: Observer = NULL_OBSERVER,
        workload: str = "",
    ) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.prediction = dict(prediction)
        self.tolerance = tolerance
        self.observer = observer
        self.workload = workload

    @classmethod
    def from_analysis_artifact(
        cls,
        path: str,
        workload: str,
        *,
        ranks: int = 1,
        tolerance: float = DEFAULT_DRIFT_TOLERANCE,
        observer: Observer = NULL_OBSERVER,
    ) -> "DriftMonitor":
        """Load the prediction for ``workload@r<ranks>`` from an
        ``ANALYZE_*.json`` artifact (raises
        :class:`~repro.errors.ArtifactError` when absent)."""
        from repro.analyze.report import load_analysis
        from repro.errors import ArtifactError

        payload = load_analysis(path)
        key = f"{workload}@r{ranks}"
        entry = payload["workloads"].get(key)
        if entry is None or "prediction" not in entry:
            known = ", ".join(sorted(payload["workloads"])) or "none"
            raise ArtifactError(
                f"{path}: no prediction for {key!r} (workloads: {known})"
            )
        return cls(
            entry["prediction"],
            tolerance=tolerance,
            observer=observer,
            workload=workload,
        )

    # -- checking ---------------------------------------------------------

    def check(
        self, observation: DriftObservation
    ) -> tuple[Diagnostic, ...]:
        """Compare one observation; emit and return drift diagnostics."""
        diagnostics: list[Diagnostic] = []
        mismatch = self._check_identity(observation, diagnostics)
        if not mismatch:
            self._check_cycles(observation, diagnostics)
            self._check_flows(observation, diagnostics)
            self._check_segments(observation, diagnostics)
        self.observer.metrics.counter("drift.checks").inc()
        if diagnostics:
            self.observer.metrics.counter("drift.events").inc(
                len(diagnostics)
            )
            for diagnostic in diagnostics:
                if self.observer.enabled:
                    self.observer.instant(
                        f"drift:{diagnostic.code}",
                        track=DRIFT_TRACK,
                        args=diagnostic.to_dict(),
                    )
        return tuple(diagnostics)

    def check_run(self, result: PAPRunResult) -> tuple[Diagnostic, ...]:
        """Convenience: observe ``result`` and :meth:`check` it."""
        return self.check(DriftObservation.from_run(result))

    # -- individual checks ------------------------------------------------

    def _check_identity(
        self,
        observation: DriftObservation,
        diagnostics: list[Diagnostic],
    ) -> bool:
        """AP404: does the prediction describe this run at all?"""
        mismatches: dict[str, Any] = {}
        predicted_bytes = self.prediction.get("input_bytes")
        if (
            observation.input_bytes is not None
            and predicted_bytes is not None
            and observation.input_bytes != predicted_bytes
        ):
            mismatches["input_bytes"] = {
                "predicted": predicted_bytes,
                "observed": observation.input_bytes,
            }
        predicted_segments = self.prediction.get("num_segments")
        if (
            observation.num_segments is not None
            and predicted_segments is not None
            and observation.num_segments != predicted_segments
        ):
            mismatches["num_segments"] = {
                "predicted": predicted_segments,
                "observed": observation.num_segments,
            }
        if not mismatches:
            return False
        diagnostics.append(
            Diagnostic(
                code="AP404",
                rule="prediction-mismatch",
                severity=Severity.WARNING,
                message=(
                    "prediction does not describe this run "
                    f"({', '.join(sorted(mismatches))} differ); "
                    "drift checks skipped"
                ),
                automaton=self.workload,
                data=mismatches,
            )
        )
        return True

    def _check_cycles(
        self,
        observation: DriftObservation,
        diagnostics: list[Diagnostic],
    ) -> None:
        predicted = self.prediction.get("enumeration_cycles")
        if predicted is None:
            return
        error = _relative_error(observation.enumeration_cycles, predicted)
        if error > self.tolerance:
            diagnostics.append(
                Diagnostic(
                    code="AP401",
                    rule="predicted-cycles-drift",
                    severity=Severity.WARNING,
                    message=(
                        f"enumeration cycles drifted {error:.1%} from "
                        f"prediction ({observation.enumeration_cycles} "
                        f"observed vs {predicted} predicted, "
                        f"tolerance {self.tolerance:.0%})"
                    ),
                    automaton=self.workload,
                    data={
                        "predicted": predicted,
                        "observed": observation.enumeration_cycles,
                        "relative_error": round(error, 4),
                        "tolerance": self.tolerance,
                    },
                )
            )

    def _check_flows(
        self,
        observation: DriftObservation,
        diagnostics: list[Diagnostic],
    ) -> None:
        if observation.flows_at_end is None:
            return
        segments = self.prediction.get("segments")
        if not segments:
            return
        predicted = sum(
            segment.get("flows_at_end", 0) for segment in segments
        )
        error = _relative_error(observation.flows_at_end, predicted)
        if error > self.tolerance:
            diagnostics.append(
                Diagnostic(
                    code="AP402",
                    rule="flow-count-drift",
                    severity=Severity.WARNING,
                    message=(
                        f"end-of-segment flow count drifted {error:.1%} "
                        f"from prediction ({observation.flows_at_end} "
                        f"observed vs {predicted} predicted, "
                        f"tolerance {self.tolerance:.0%})"
                    ),
                    automaton=self.workload,
                    data={
                        "predicted": predicted,
                        "observed": observation.flows_at_end,
                        "relative_error": round(error, 4),
                        "tolerance": self.tolerance,
                    },
                )
            )

    def _check_segments(
        self,
        observation: DriftObservation,
        diagnostics: list[Diagnostic],
    ) -> None:
        observed = observation.segment_finish_cycles
        segments = self.prediction.get("segments")
        if observed is None or not segments:
            return
        predicted_by_index = {
            segment.get("index"): segment.get("finish_cycles")
            for segment in segments
        }
        drifted: list[dict[str, Any]] = []
        worst = 0.0
        for index, finish in enumerate(observed):
            predicted = predicted_by_index.get(index)
            if predicted is None:
                continue
            error = _relative_error(finish, predicted)
            if error > self.tolerance:
                worst = max(worst, error)
                drifted.append(
                    {
                        "index": index,
                        "predicted": predicted,
                        "observed": finish,
                        "relative_error": round(error, 4),
                    }
                )
        if drifted:
            diagnostics.append(
                Diagnostic(
                    code="AP403",
                    rule="segment-finish-drift",
                    severity=Severity.WARNING,
                    message=(
                        f"{len(drifted)} segment(s) finished more than "
                        f"{self.tolerance:.0%} away from predicted "
                        f"(worst {worst:.1%})"
                    ),
                    automaton=self.workload,
                    states=tuple(d["index"] for d in drifted),
                    data={
                        "segments": drifted,
                        "tolerance": self.tolerance,
                    },
                )
            )

"""repro.obs — observability for PAP executions.

The instrumentation spine of the simulator: a span/event tracer that
records in both simulated-cycle and host wall-clock domains
(:mod:`repro.obs.tracer`), a counter/gauge/histogram metrics registry
(:mod:`repro.obs.metrics`), a Chrome trace-event exporter loadable in
Perfetto (:mod:`repro.obs.chrome`), and a text profiler
(:mod:`repro.obs.profile`).

The :class:`Observer` base class is a null object — hooks threaded
through :class:`~repro.core.pap.ParallelAutomataProcessor`, the
segment scheduler, host composition, the state-vector cache, and the
event buffer cost near-zero until a :class:`Tracer` is attached::

    from repro.obs import Tracer

    tracer = Tracer()
    result = ParallelAutomataProcessor(automaton, observer=tracer).run(data)
    tracer.write_chrome("trace.json")     # open in ui.perfetto.dev
    print(tracer.text_profile())
"""

from repro.obs.chrome import export_chrome_trace, validate_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.profile import render_profile
from repro.obs.tracer import (
    CountingObserver,
    NULL_OBSERVER,
    Observer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "CountingObserver",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "Observer",
    "TraceEvent",
    "Tracer",
    "export_chrome_trace",
    "render_profile",
    "validate_chrome_trace",
]

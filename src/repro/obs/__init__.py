"""repro.obs — observability for PAP executions.

The instrumentation spine of the simulator: a span/event tracer that
records in both simulated-cycle and host wall-clock domains
(:mod:`repro.obs.tracer`), a counter/gauge/histogram metrics registry
(:mod:`repro.obs.metrics`), a Chrome trace-event exporter loadable in
Perfetto (:mod:`repro.obs.chrome`), a text profiler
(:mod:`repro.obs.profile`), a phase-attribution profiler
(:mod:`repro.obs.phases`), and worker-side capture for the process
backend (:mod:`repro.obs.remote`) — shipped record batches merge into
the parent's timeline so ledgers and exports stay whole-run truthful
across backends.

The :class:`Observer` base class is a null object — hooks threaded
through :class:`~repro.core.pap.ParallelAutomataProcessor`, the
segment scheduler, host composition, the state-vector cache, and the
event buffer cost near-zero until a :class:`Tracer` is attached::

    from repro.obs import Tracer

    tracer = Tracer()
    result = ParallelAutomataProcessor(automaton, observer=tracer).run(data)
    tracer.write_chrome("trace.json")     # open in ui.perfetto.dev
    print(tracer.text_profile())
"""

from repro.obs.chrome import export_chrome_trace, validate_chrome_trace
from repro.obs.phases import (
    NULL_PHASES,
    PhaseAccumulator,
    PhaseAccountingError,
    PhaseRecorder,
    render_phase_profile,
    summarize_run_phases,
    to_folded,
    to_speedscope,
    validate_speedscope,
    verify_phase_totals,
)
from repro.obs.remote import RecordBatch, RecordingObserver, merge_batch
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics
from repro.obs.profile import render_profile
from repro.obs.telemetry import (
    FlightRecorder,
    LEDGER_SCHEMA_VERSION,
    read_ledger,
    summarize_ledger,
    summarize_workers,
)
from repro.obs.tracer import (
    CountingObserver,
    NULL_OBSERVER,
    Observer,
    TraceEvent,
    Tracer,
)

# Drift detection reuses the lint Diagnostic model; importing
# repro.obs.drift therefore executes repro.lint.__init__ (the whole
# rule registry and its repro.core dependencies).  Export it lazily so
# `import repro.obs` inside the hot scheduler path stays light.
_LAZY = {
    "DEFAULT_DRIFT_TOLERANCE": "repro.obs.drift",
    "DriftMonitor": "repro.obs.drift",
    "DriftObservation": "repro.obs.drift",
}

__all__ = [
    "Counter",
    "CountingObserver",
    "DEFAULT_DRIFT_TOLERANCE",
    "DriftMonitor",
    "DriftObservation",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_PHASES",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "Observer",
    "PhaseAccountingError",
    "PhaseAccumulator",
    "PhaseRecorder",
    "RecordBatch",
    "RecordingObserver",
    "TraceEvent",
    "Tracer",
    "export_chrome_trace",
    "merge_batch",
    "parse_openmetrics",
    "read_ledger",
    "render_openmetrics",
    "render_phase_profile",
    "render_profile",
    "summarize_ledger",
    "summarize_run_phases",
    "summarize_workers",
    "to_folded",
    "to_speedscope",
    "validate_chrome_trace",
    "validate_speedscope",
    "verify_phase_totals",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)

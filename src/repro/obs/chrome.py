"""Chrome trace-event JSON export (Perfetto-loadable).

The exporter turns a tracer's event list into the Trace Event Format
(the ``{"traceEvents": [...]}`` object understood by ``chrome://tracing``
and https://ui.perfetto.dev): one *thread* per track — ``run``, one
track per segment, ``host`` — with ``X`` (complete) events for spans,
``i`` instants for flow lifecycle / FIV / golden-fallback markers, and
``C`` counter events for slice occupancy and cache fill.

Two export domains mirror the tracer's dual clocks:

* ``cycles`` (default) — timestamps are simulated symbol cycles,
  rendered 1 cycle = 1 µs so Perfetto's microsecond ruler reads as a
  cycle count.  Events without cycle timestamps are dropped.
* ``wall`` — timestamps are host nanoseconds rebased to the first
  event; this profiles the simulator itself.

:func:`validate_chrome_trace` is the shape check used by tests and the
CI smoke job before a trace is uploaded as an artifact.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.obs.tracer import COUNTER, INSTANT, SPAN, TraceEvent

DOMAINS = ("cycles", "wall")

PROCESS_NAME = "PAP"
_PID = 1


def _timestamps(
    event: TraceEvent, domain: str, wall_base_ns: int
) -> tuple[float, float | None] | None:
    """(ts, dur) in microseconds for ``event``, or ``None`` to skip."""
    if domain == "cycles":
        if event.cycle_start is None:
            return None
        start = float(event.cycle_start)
        if event.kind != SPAN:
            return start, None
        end = event.cycle_end
        return start, (float(end) - start if end is not None else 0.0)
    start = (event.wall_start_ns - wall_base_ns) / 1_000.0
    if event.kind != SPAN:
        return start, None
    if event.wall_end_ns is None:
        return start, 0.0
    return start, (event.wall_end_ns - event.wall_start_ns) / 1_000.0


def export_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    domain: str = "cycles",
    metrics: dict[str, Any] | None = None,
) -> dict:
    """Render ``events`` as a Chrome trace-event JSON object."""
    if domain not in DOMAINS:
        raise ConfigurationError(
            f"unknown trace domain {domain!r}: expected one of {DOMAINS}"
        )
    events = list(events)
    wall_base_ns = min(
        (event.wall_start_ns for event in events), default=0
    )

    tids: dict[str, int] = {}
    trace_events: list[dict] = []
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = tids[event.track] = len(tids) + 1
        stamps = _timestamps(event, domain, wall_base_ns)
        if stamps is None:
            continue
        ts, dur = stamps
        record: dict[str, Any] = {
            "name": event.name,
            "pid": _PID,
            "tid": tid,
            "ts": ts,
        }
        if event.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = dur if dur is not None else 0.0
            if event.args:
                record["args"] = event.args
        elif event.kind == INSTANT:
            record["ph"] = "i"
            record["s"] = "t"
            if event.args:
                record["args"] = event.args
        elif event.kind == COUNTER:
            record["ph"] = "C"
            record["args"] = {event.name: event.value}
        else:  # pragma: no cover - tracer only emits the three kinds
            continue
        trace_events.append(record)

    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": PROCESS_NAME},
        }
    ]
    for track, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "domain": domain,
            "timestampUnit": (
                "symbol cycles (1 cycle rendered as 1us)"
                if domain == "cycles"
                else "host microseconds"
            ),
            "metrics": metrics or {},
        },
    }


def validate_chrome_trace(trace: Any) -> list[dict]:
    """Check ``trace`` against the Chrome trace-event shape.

    Returns the (non-metadata) event records on success; raises
    ``ValueError`` naming the first offending record otherwise.  This
    is deliberately strict about the fields Perfetto needs — ``name``,
    ``ph``, ``ts``, ``pid``, ``tid``, and ``dur`` for complete events.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    payload: list[dict] = []
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where} is not an object")
        phase = record.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ValueError(f"{where} missing phase 'ph'")
        if not isinstance(record.get("name"), str):
            raise ValueError(f"{where} missing 'name'")
        if not isinstance(record.get("pid"), int):
            raise ValueError(f"{where} missing integer 'pid'")
        if phase == "M":
            continue
        if not isinstance(record.get("tid"), int):
            raise ValueError(f"{where} missing integer 'tid'")
        if not isinstance(record.get("ts"), (int, float)):
            raise ValueError(f"{where} missing numeric 'ts'")
        if phase == "X" and not isinstance(
            record.get("dur"), (int, float)
        ):
            raise ValueError(f"{where} complete event missing 'dur'")
        if phase == "C" and not isinstance(record.get("args"), dict):
            raise ValueError(f"{where} counter event missing 'args'")
        payload.append(record)
    return payload

"""Chrome trace-event JSON export (Perfetto-loadable).

The exporter turns a tracer's event list into the Trace Event Format
(the ``{"traceEvents": [...]}`` object understood by ``chrome://tracing``
and https://ui.perfetto.dev): one *thread* per track — ``run``, one
track per segment, ``host`` — with ``X`` (complete) events for spans,
``i`` instants for flow lifecycle / FIV / golden-fallback markers, and
``C`` counter events for slice occupancy and cache fill.

Two export domains mirror the tracer's dual clocks:

* ``cycles`` (default) — timestamps are simulated symbol cycles,
  rendered 1 cycle = 1 µs so Perfetto's microsecond ruler reads as a
  cycle count.  Events without cycle timestamps are dropped.
* ``wall`` — timestamps are host nanoseconds rebased to the first
  event; this profiles the simulator itself.

:func:`validate_chrome_trace` is the shape check used by tests and the
CI smoke job before a trace is uploaded as an artifact.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.obs.tracer import COUNTER, INSTANT, SPAN, TraceEvent

DOMAINS = ("cycles", "wall")

PROCESS_NAME = "PAP"
_PID = 1

#: Nesting tolerance in exported microseconds (1 ns): timestamps reach
#: Perfetto as floats, so exact containment computed in nanoseconds can
#: drift by one ulp after the /1000 conversion.
_NEST_EPS_US = 1e-3


def _timestamps(
    event: TraceEvent, domain: str, wall_base_ns: int
) -> tuple[float, float | None] | None:
    """(ts, dur) in microseconds for ``event``, or ``None`` to skip."""
    if domain == "cycles":
        if event.cycle_start is None:
            return None
        start = float(event.cycle_start)
        if event.kind != SPAN:
            return start, None
        end = event.cycle_end
        return start, (float(end) - start if end is not None else 0.0)
    start = (event.wall_start_ns - wall_base_ns) / 1_000.0
    if event.kind != SPAN:
        return start, None
    if event.wall_end_ns is None:
        return start, 0.0
    return start, (event.wall_end_ns - event.wall_start_ns) / 1_000.0


def export_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    domain: str = "cycles",
    metrics: dict[str, Any] | None = None,
) -> dict:
    """Render ``events`` as a Chrome trace-event JSON object."""
    if domain not in DOMAINS:
        raise ConfigurationError(
            f"unknown trace domain {domain!r}: expected one of {DOMAINS}"
        )
    events = list(events)
    wall_base_ns = min(
        (event.wall_start_ns for event in events), default=0
    )

    # Tracks map to Perfetto threads, but one tid can only render
    # properly *nested* spans — and some tracks legitimately carry
    # partially overlapping spans (concurrent dispatches on ``exec``
    # under no-FIV prefetch, repeated runs reusing one seg track).
    # Spans therefore get a greedy per-track *lane*: a span that would
    # partially overlap an open span spills to the next lane, keyed
    # ``(track, lane)`` -> tid, so every tid holds a clean span stack
    # (the invariant validate_chrome_trace enforces).
    tids: dict[tuple[str, int], int] = {}
    lane_stacks: dict[tuple[str, int], list[float]] = {}

    def tid_for(track: str, lane: int) -> int:
        key = (track, lane)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
        return tid

    def lane_for(track: str, ts: float, end: float) -> int:
        lane = 0
        while True:
            stack = lane_stacks.setdefault((track, lane), [])
            while stack and ts >= stack[-1] - _NEST_EPS_US:
                stack.pop()
            if stack and end > stack[-1] + _NEST_EPS_US:
                lane += 1
                continue
            stack.append(end)
            return lane

    trace_events: list[dict] = []
    for event in events:
        stamps = _timestamps(event, domain, wall_base_ns)
        if stamps is None:
            # Domain dropped the event, but the track still appears as
            # a named (empty) thread — matching historical exports.
            tid_for(event.track, 0)
            continue
        ts, dur = stamps
        if event.kind == SPAN:
            tid = tid_for(
                event.track, lane_for(event.track, ts, ts + (dur or 0.0))
            )
        else:
            tid = tid_for(event.track, 0)
        record: dict[str, Any] = {
            "name": event.name,
            "pid": _PID,
            "tid": tid,
            "ts": ts,
        }
        if event.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = dur if dur is not None else 0.0
            if event.args:
                record["args"] = event.args
        elif event.kind == INSTANT:
            record["ph"] = "i"
            record["s"] = "t"
            if event.args:
                record["args"] = event.args
        elif event.kind == COUNTER:
            record["ph"] = "C"
            record["args"] = {event.name: event.value}
        else:  # pragma: no cover - tracer only emits the three kinds
            continue
        trace_events.append(record)

    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": PROCESS_NAME},
        }
    ]
    for (track, lane), tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track if lane == 0 else f"{track}/{lane}"},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "domain": domain,
            "timestampUnit": (
                "symbol cycles (1 cycle rendered as 1us)"
                if domain == "cycles"
                else "host microseconds"
            ),
            "metrics": metrics or {},
        },
    }


def validate_chrome_trace(trace: Any) -> list[dict]:
    """Check ``trace`` against the Chrome trace-event shape.

    Returns the (non-metadata) event records on success; raises
    ``ValueError`` naming the first offending record otherwise.  This
    is deliberately strict about the fields Perfetto needs — ``name``,
    ``ph``, ``ts``, ``pid``, ``tid``, and ``dur`` for complete events —
    and about the rendering invariant the exporter's lane assignment
    guarantees: no two open spans may share a track (complete events on
    one tid must nest properly, never partially overlap).
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    payload: list[dict] = []
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where} is not an object")
        phase = record.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ValueError(f"{where} missing phase 'ph'")
        if not isinstance(record.get("name"), str):
            raise ValueError(f"{where} missing 'name'")
        if not isinstance(record.get("pid"), int):
            raise ValueError(f"{where} missing integer 'pid'")
        if phase == "M":
            continue
        if not isinstance(record.get("tid"), int):
            raise ValueError(f"{where} missing integer 'tid'")
        if not isinstance(record.get("ts"), (int, float)):
            raise ValueError(f"{where} missing numeric 'ts'")
        if phase == "X" and not isinstance(
            record.get("dur"), (int, float)
        ):
            raise ValueError(f"{where} complete event missing 'dur'")
        if phase == "C" and not isinstance(record.get("args"), dict):
            raise ValueError(f"{where} counter event missing 'args'")
        payload.append(record)

    spans_by_tid: dict[int, list[tuple[float, float, int]]] = {}
    for index, record in enumerate(events):
        if isinstance(record, dict) and record.get("ph") == "X":
            spans_by_tid.setdefault(record["tid"], []).append(
                (record["ts"], record["dur"], index)
            )
    for tid, spans in spans_by_tid.items():
        # Longest-first on ties so a parent opening with its child at
        # the same timestamp is seen (and stacked) before the child.
        spans.sort(key=lambda item: (item[0], -item[1]))
        stack: list[float] = []
        for ts, dur, index in spans:
            end = ts + dur
            while stack and ts >= stack[-1] - _NEST_EPS_US:
                stack.pop()
            if stack and end > stack[-1] + _NEST_EPS_US:
                raise ValueError(
                    f"traceEvents[{index}]: two open spans share tid "
                    f"{tid} (span [{ts}, {end}] partially overlaps an "
                    f"open span ending at {stack[-1]})"
                )
            stack.append(end)
    return payload

"""Phase-attribution profiling: where a run's cycles and wall time go.

ROADMAP item 1 calls the symbol-at-a-time execution loop the ~10^3x
bottleneck, and PaREM-style vectorization should be *aimed by
measurement*.  This module attributes a run's cost to a small, fixed
set of phases in both time domains:

* **cycles** — derived exactly from the cycle accounting the scheduler
  already keeps (:class:`~repro.core.scheduler.SegmentMetrics`), so
  per-phase totals provably sum to the run's totals.  Per segment,
  ``transition + switch + convergence == finish_cycles`` holds *by
  construction* (the scheduler computes ``context_switch_cycles`` as
  the residual of the segment clock), and the run-level chain
  ``enumeration_cycles == fold(finish, tcpu) + report`` is re-derived
  and checked by :func:`verify_phase_totals`.
* **wall** — host ``perf_counter_ns`` accounting captured by a
  :class:`PhaseAccumulator` hanging off the active observer
  (``observer.phases``).  The scheduler's hot loop guards every
  measurement with ``phases.enabled``, so the disabled path costs one
  attribute check and stays inside the pinned <5% observer budget.

The phases:

``transition``
    Symbol processing — the NFA transition walk (every flow).
``switch``
    Context-switch machinery: SVC save/restore, deactivation compares,
    FIV application.
``convergence``
    Convergence sweeps (state-vector comparisons at period boundaries).
``compose``
    Host-side truth masking / composition (wall domain only; the cycle
    model charges composition inside ``tcpu``).
``decode``
    Host decode of final state vectors (``T_cpu``; cycle domain only).
``report``
    Draining the output event buffer on the host.

Renderers: a text table (:func:`render_phase_profile`), a
collapsed-stack export (:func:`to_folded`), and a speedscope JSON
profile (:func:`to_speedscope`, checked by
:func:`validate_speedscope`).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

PHASE_TRANSITION = "transition"
PHASE_SWITCH = "switch"
PHASE_CONVERGENCE = "convergence"
PHASE_COMPOSE = "compose"
PHASE_DECODE = "decode"
PHASE_REPORT = "report"

#: Phases with exact cycle-domain accounting, in display order.
CYCLE_PHASES = (
    PHASE_TRANSITION,
    PHASE_SWITCH,
    PHASE_CONVERGENCE,
    PHASE_DECODE,
    PHASE_REPORT,
)
#: Phases the wall-domain accumulator may carry (a superset is fine —
#: unknown phases render after the known ones).
WALL_PHASES = (
    PHASE_TRANSITION,
    PHASE_SWITCH,
    PHASE_CONVERGENCE,
    PHASE_COMPOSE,
)

#: Segment index used for run-level (not per-segment) wall phases.
RUN_SCOPE = -1

PHASES_SCHEMA_VERSION = 1


class PhaseAccountingError(Exception):
    """A phase summary failed its sums-to-totals identity check."""


class PhaseRecorder:
    """Null wall-phase recorder: :meth:`add` is a no-op.

    Hot paths guard the ``perf_counter_ns`` pair with
    ``if phases.enabled:`` so the disabled path never reads the clock.
    """

    enabled: bool = False

    def add(self, phase: str, segment: int, wall_ns: int) -> None:
        """Charge ``wall_ns`` host nanoseconds to ``(segment, phase)``."""

    def items(self) -> tuple[tuple[int, str, int], ...]:
        """Recorded ``(segment, phase, wall_ns)`` rows, sorted."""
        return ()

    def totals(self) -> dict[str, int]:
        """Per-phase wall totals (ns) across all segments."""
        return {}


NULL_PHASES = PhaseRecorder()


class PhaseAccumulator(PhaseRecorder):
    """Recording wall-phase accumulator: a ``(segment, phase)`` -> ns map.

    Deliberately minimal — one dict update per measured region, no
    event objects — so enabling phase profiling stays cheap even in the
    TDM loop.
    """

    enabled = True

    def __init__(self) -> None:
        self._acc: dict[tuple[int, str], int] = {}

    def add(self, phase: str, segment: int, wall_ns: int) -> None:
        key = (segment, phase)
        self._acc[key] = self._acc.get(key, 0) + wall_ns

    def items(self) -> tuple[tuple[int, str, int], ...]:
        return tuple(
            (segment, phase, ns)
            for (segment, phase), ns in sorted(self._acc.items())
        )

    def totals(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (_segment, phase), ns in self._acc.items():
            out[phase] = out.get(phase, 0) + ns
        return out

    def merge(self, items: Iterable[tuple[int, str, int]]) -> None:
        """Fold shipped ``(segment, phase, wall_ns)`` rows (e.g. from a
        worker's :class:`~repro.obs.remote.RecordBatch`) into this
        accumulator."""
        for segment, phase, ns in items:
            self.add(phase, int(segment), int(ns))


# -- summarizing a run -----------------------------------------------------


def summarize_run_phases(result: Any, wall: PhaseRecorder | None = None) -> dict:
    """Build the ``PAPRunResult.extra["phases"]`` payload.

    ``result`` is a :class:`~repro.core.metrics.PAPRunResult` (typed as
    ``Any`` to keep this module import-light).  Cycle attribution comes
    from the segment metrics; ``wall`` contributes host-nanosecond rows
    when phase recording was enabled.  The payload is strict-JSON-safe.
    """
    from repro.host.reporting import report_processing_cycles

    wall_rows: dict[tuple[int, str], int] = {}
    if wall is not None and wall.enabled:
        for segment, phase, ns in wall.items():
            wall_rows[(segment, phase)] = ns

    per_segment: list[dict] = []
    cycles: dict[str, int] = {phase: 0 for phase in CYCLE_PHASES}
    segment_cycles = 0
    for seg_result, tcpu in zip(result.segment_results, result.tcpu_cycles):
        metrics = seg_result.metrics
        index = seg_result.plan.segment.index
        entry: dict = {
            "segment": index,
            "kind": "golden" if seg_result.plan.is_golden else "enumerated",
            PHASE_TRANSITION: metrics.symbol_cycles,
            PHASE_SWITCH: metrics.context_switch_cycles,
            PHASE_CONVERGENCE: metrics.convergence_check_cycles,
            "finish_cycles": metrics.finish_cycles,
            "tcpu_cycles": tcpu,
        }
        seg_wall = {
            phase: ns
            for (seg, phase), ns in wall_rows.items()
            if seg == index
        }
        if seg_wall:
            entry["wall_ns"] = dict(sorted(seg_wall.items()))
        per_segment.append(entry)
        cycles[PHASE_TRANSITION] += metrics.symbol_cycles
        cycles[PHASE_SWITCH] += metrics.context_switch_cycles
        cycles[PHASE_CONVERGENCE] += metrics.convergence_check_cycles
        segment_cycles += metrics.finish_cycles

    decode = sum(result.tcpu_cycles)
    report = report_processing_cycles(result.raw_events)
    cycles[PHASE_DECODE] = decode
    cycles[PHASE_REPORT] = report

    payload: dict = {
        "schema": PHASES_SCHEMA_VERSION,
        "cycles": cycles,
        "segment_cycles": segment_cycles,
        "accounted_cycles": segment_cycles + decode + report,
        "enumeration_cycles": result.enumeration_cycles,
        "golden_cycles": result.golden_cycles,
        "total_cycles": result.total_cycles,
        "hot_phase": hot_phase(cycles),
        "per_segment": per_segment,
    }
    wall_totals = {}
    if wall is not None and wall.enabled:
        wall_totals = wall.totals()
    if wall_totals:
        payload["wall_ns"] = dict(sorted(wall_totals.items()))
    return payload


def hot_phase(cycles: dict[str, int]) -> str:
    """The phase with the largest cycle total (ties resolve in
    :data:`CYCLE_PHASES` display order)."""
    ordered = [p for p in CYCLE_PHASES if p in cycles]
    ordered += [p for p in sorted(cycles) if p not in CYCLE_PHASES]
    if not ordered:
        return PHASE_TRANSITION
    return max(ordered, key=lambda p: cycles.get(p, 0))


def verify_phase_totals(result: Any, phases: dict | None = None) -> dict:
    """Prove a run's phase attribution sums to its cycle totals.

    Checks, exactly (no tolerance):

    1. per segment: ``transition + switch + convergence == finish``;
    2. run: phase segment totals equal ``sum(finish_cycles)``;
    3. the availability chain refolds: ``A[j] = max(A[j-1], finish[j])
       + tcpu[j]`` reproduces ``truth_times``; and
    4. ``enumeration_cycles == A[-1] + report`` (report-drain cycles of
       the run's raw event count).

    Returns ``{"segments": n, "accounted_cycles": ..., "checks": m}``
    on success; raises :class:`PhaseAccountingError` naming the first
    identity that fails.
    """
    from repro.host.reporting import report_processing_cycles

    summary = phases if phases is not None else result.extra.get("phases")
    if not summary:
        raise PhaseAccountingError("run carries no phase summary")
    checks = 0
    for entry in summary["per_segment"]:
        accounted = (
            entry[PHASE_TRANSITION]
            + entry[PHASE_SWITCH]
            + entry[PHASE_CONVERGENCE]
        )
        if accounted != entry["finish_cycles"]:
            raise PhaseAccountingError(
                f"segment {entry['segment']}: phases sum to {accounted} "
                f"but finish_cycles is {entry['finish_cycles']}"
            )
        checks += 1
    cycles = summary["cycles"]
    segment_total = sum(
        entry["finish_cycles"] for entry in summary["per_segment"]
    )
    phase_total = (
        cycles[PHASE_TRANSITION]
        + cycles[PHASE_SWITCH]
        + cycles[PHASE_CONVERGENCE]
    )
    if phase_total != segment_total:
        raise PhaseAccountingError(
            f"segment phase totals sum to {phase_total}, "
            f"segments ran {segment_total} cycles"
        )
    checks += 1
    if segment_total != summary["segment_cycles"]:
        raise PhaseAccountingError(
            f"summary claims {summary['segment_cycles']} segment cycles, "
            f"recomputed {segment_total}"
        )
    checks += 1
    availability = 0
    for entry in summary["per_segment"]:
        availability = (
            max(availability, entry["finish_cycles"]) + entry["tcpu_cycles"]
        )
    truth_tail = result.truth_times[-1] if result.truth_times else 0
    if availability != truth_tail:
        raise PhaseAccountingError(
            f"refolded availability chain ends at {availability}, "
            f"run recorded {truth_tail}"
        )
    checks += 1
    report = report_processing_cycles(result.raw_events)
    if cycles[PHASE_REPORT] != report:
        raise PhaseAccountingError(
            f"report phase carries {cycles[PHASE_REPORT]} cycles, "
            f"event drain costs {report}"
        )
    checks += 1
    if availability + report != result.enumeration_cycles:
        raise PhaseAccountingError(
            f"chain + report = {availability + report} cycles, "
            f"enumeration_cycles is {result.enumeration_cycles}"
        )
    checks += 1
    if cycles[PHASE_DECODE] != sum(result.tcpu_cycles):
        raise PhaseAccountingError(
            f"decode phase carries {cycles[PHASE_DECODE]} cycles, "
            f"tcpu chain charged {sum(result.tcpu_cycles)}"
        )
    checks += 1
    return {
        "segments": len(summary["per_segment"]),
        "accounted_cycles": summary["accounted_cycles"],
        "checks": checks,
    }


# -- renderers -------------------------------------------------------------


def _share(value: int, total: int) -> str:
    if total <= 0:
        return "-"
    return f"{100.0 * value / total:5.1f}%"


def render_phase_profile(summary: dict, *, per_segment: bool = True) -> str:
    """Human-readable phase table for one run's phase summary."""
    cycles = summary["cycles"]
    accounted = summary["accounted_cycles"]
    wall_totals: dict[str, int] = summary.get("wall_ns", {})
    wall_total = sum(wall_totals.values())
    lines = ["== phase profile =="]
    lines.append(
        f"{'phase':<14} {'cycles':>14} {'share':>7} "
        f"{'wall_ms':>10} {'share':>7}"
    )
    phases = [p for p in CYCLE_PHASES]
    phases += [p for p in sorted(wall_totals) if p not in phases]
    for phase in phases:
        cyc = cycles.get(phase)
        wall = wall_totals.get(phase)
        lines.append(
            f"{phase:<14} "
            f"{cyc if cyc is not None else '-':>14} "
            f"{_share(cyc, accounted) if cyc is not None else '-':>7} "
            f"{f'{wall / 1e6:.3f}' if wall is not None else '-':>10} "
            f"{_share(wall, wall_total) if wall is not None else '-':>7}"
        )
    lines.append(
        f"{'accounted':<14} {accounted:>14} {'100.0%':>7} "
        f"{f'{wall_total / 1e6:.3f}' if wall_total else '-':>10} "
        f"{'100.0%' if wall_total else '-':>7}"
    )
    lines.append(
        f"enumeration={summary['enumeration_cycles']} "
        f"golden={summary['golden_cycles']} "
        f"total={summary['total_cycles']} "
        f"hot={summary['hot_phase']}"
    )
    if per_segment and summary["per_segment"]:
        lines.append("")
        lines.append(
            f"{'seg':>4} {'kind':<10} {'transition':>12} {'switch':>12} "
            f"{'convergence':>12} {'finish':>12} {'tcpu':>10}"
        )
        for entry in summary["per_segment"]:
            lines.append(
                f"{entry['segment']:>4} {entry['kind']:<10} "
                f"{entry[PHASE_TRANSITION]:>12} {entry[PHASE_SWITCH]:>12} "
                f"{entry[PHASE_CONVERGENCE]:>12} "
                f"{entry['finish_cycles']:>12} {entry['tcpu_cycles']:>10}"
            )
    return "\n".join(lines)


def to_folded(summary: dict, *, root: str = "pap") -> str:
    """Collapsed-stack ("folded") export of the cycle-domain phases.

    One line per stack, ``root;frame;frame count`` — the format
    flamegraph tooling and speedscope both ingest.
    """
    lines: list[str] = []
    for entry in summary["per_segment"]:
        seg = f"segment[{entry['segment']}]"
        for phase in (PHASE_TRANSITION, PHASE_SWITCH, PHASE_CONVERGENCE):
            if entry[phase] > 0:
                lines.append(f"{root};{seg};{phase} {entry[phase]}")
        if entry["tcpu_cycles"] > 0:
            lines.append(f"{root};{seg};{PHASE_DECODE} {entry['tcpu_cycles']}")
    report = summary["cycles"].get(PHASE_REPORT, 0)
    if report > 0:
        lines.append(f"{root};{PHASE_REPORT} {report}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(summary: dict, *, name: str = "pap run") -> dict:
    """Speedscope "evented" profile of the cycle-domain attribution.

    Segments are laid out sequentially (this is an *attribution*
    profile — per-segment costs concatenated — not the run's concurrent
    timeline, which lives in the Chrome export).  The value unit is
    symbol cycles, which speedscope displays unitless (``"none"``).
    """
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    events: list[dict] = []
    at = 0

    def emit(label: str, weight: int) -> None:
        nonlocal at
        if weight <= 0:
            return
        idx = frame(label)
        events.append({"type": "O", "frame": idx, "at": at})
        at += weight
        events.append({"type": "C", "frame": idx, "at": at})

    for entry in summary["per_segment"]:
        seg_label = f"segment[{entry['segment']}]"
        seg_weight = entry["finish_cycles"] + entry["tcpu_cycles"]
        if seg_weight <= 0:
            continue
        idx = frame(seg_label)
        events.append({"type": "O", "frame": idx, "at": at})
        for phase in (PHASE_TRANSITION, PHASE_SWITCH, PHASE_CONVERGENCE):
            emit(phase, entry[phase])
        emit(PHASE_DECODE, entry["tcpu_cycles"])
        events.append({"type": "C", "frame": idx, "at": at})
    emit(PHASE_REPORT, summary["cycles"].get(PHASE_REPORT, 0))

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": at,
                "events": events,
            }
        ],
        "exporter": "repro.obs.phases",
    }


def validate_speedscope(payload: dict) -> None:
    """Structural validation of a speedscope JSON object.

    Checks the shape CI and tests rely on: the schema URL, the shared
    frame table, and — for every evented profile — that open/close
    events balance like a proper stack, reference real frames, and
    carry monotonically non-decreasing ``at`` values bounded by
    ``endValue``.  Raises ``ValueError`` on the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("speedscope profile must be a JSON object")
    schema = payload.get("$schema", "")
    if "speedscope" not in str(schema):
        raise ValueError(f"not a speedscope profile: $schema={schema!r}")
    shared = payload.get("shared")
    if not isinstance(shared, dict) or not isinstance(
        shared.get("frames"), list
    ):
        raise ValueError("speedscope 'shared.frames' must be a list")
    frames = shared["frames"]
    for i, entry in enumerate(frames):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("name"), str
        ):
            raise ValueError(f"frame {i} must be an object with a 'name'")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("speedscope 'profiles' must be a non-empty list")
    for p, profile in enumerate(profiles):
        if not isinstance(profile, dict):
            raise ValueError(f"profile {p} must be an object")
        if profile.get("type") != "evented":
            continue
        end_value = profile.get("endValue")
        if not isinstance(end_value, (int, float)) or math.isnan(
            float(end_value)
        ):
            raise ValueError(f"profile {p}: endValue must be a number")
        last_at = profile.get("startValue", 0)
        stack: list[int] = []
        events = profile.get("events")
        if not isinstance(events, list):
            raise ValueError(f"profile {p}: 'events' must be a list")
        for e, event in enumerate(events):
            kind = event.get("type")
            idx = event.get("frame")
            at = event.get("at")
            if kind not in ("O", "C"):
                raise ValueError(
                    f"profile {p} event {e}: type must be 'O' or 'C'"
                )
            if not isinstance(idx, int) or not 0 <= idx < len(frames):
                raise ValueError(
                    f"profile {p} event {e}: frame {idx!r} out of range"
                )
            if not isinstance(at, (int, float)) or at < last_at:
                raise ValueError(
                    f"profile {p} event {e}: 'at' must be "
                    f"non-decreasing (got {at!r} after {last_at!r})"
                )
            last_at = at
            if kind == "O":
                stack.append(idx)
            else:
                if not stack or stack[-1] != idx:
                    raise ValueError(
                        f"profile {p} event {e}: close of frame {idx} "
                        "does not match the innermost open frame"
                    )
                stack.pop()
        if stack:
            raise ValueError(
                f"profile {p}: {len(stack)} frame(s) left open"
            )
        if last_at > end_value:
            raise ValueError(
                f"profile {p}: events run to {last_at}, past "
                f"endValue {end_value}"
            )

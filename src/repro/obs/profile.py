"""Human-readable run profiles from recorded traces.

Where the Chrome export preserves every event for timeline inspection,
the profile answers the quick questions — where did the cycles go, how
many flows died and how, what did the cache do — as an aligned text
report:

* spans aggregated by (track, name): count, total/mean cycles, wall ms;
* instants tallied by name (flow lifecycle and marker volumes);
* final/peak value per counter series;
* the metrics-registry snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.tracer import COUNTER, INSTANT, SPAN

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer


def _format_cycles(value: float | None) -> str:
    return f"{value:,.0f}" if value is not None else "-"


def render_profile(tracer: "Tracer") -> str:
    """Render ``tracer``'s events and metrics as an aligned report."""
    spans: dict[tuple[str, str], list] = {}
    instants: dict[str, int] = {}
    counters: dict[tuple[str, str], list[float]] = {}

    for event in tracer.events:
        if event.kind == SPAN:
            spans.setdefault((event.track, event.name), []).append(event)
        elif event.kind == INSTANT:
            instants[event.name] = instants.get(event.name, 0) + 1
        elif event.kind == COUNTER and event.value is not None:
            counters.setdefault((event.track, event.name), []).append(
                event.value
            )

    lines: list[str] = ["== PAP run profile =="]

    if spans:
        lines.append("")
        lines.append(
            f"{'span':<28}{'track':<14}{'count':>6}"
            f"{'cycles':>14}{'avg cyc':>12}{'wall ms':>10}"
        )
        for (track, name), group in sorted(spans.items()):
            cycle_total = 0
            cycle_known = False
            wall_total_ns = 0
            for event in group:
                duration = event.cycle_duration
                if duration is not None:
                    cycle_total += duration
                    cycle_known = True
                wall = event.wall_duration_ns
                if wall is not None:
                    wall_total_ns += wall
            mean = cycle_total / len(group) if cycle_known else None
            lines.append(
                f"{name:<28}{track:<14}{len(group):>6}"
                f"{_format_cycles(cycle_total if cycle_known else None):>14}"
                f"{_format_cycles(mean):>12}"
                f"{wall_total_ns / 1e6:>10.3f}"
            )

    if instants:
        lines.append("")
        lines.append(f"{'instant':<42}{'count':>6}")
        for name, count in sorted(instants.items()):
            lines.append(f"{name:<42}{count:>6}")

    if counters:
        lines.append("")
        lines.append(
            f"{'counter':<28}{'track':<14}{'samples':>8}"
            f"{'last':>12}{'peak':>12}"
        )
        for (track, name), values in sorted(counters.items()):
            lines.append(
                f"{name:<28}{track:<14}{len(values):>8}"
                f"{values[-1]:>12g}{max(values):>12g}"
            )

    snapshot = tracer.metrics.snapshot()
    if snapshot:
        lines.append("")
        lines.append(f"{'metric':<42}{'value':>14}")
        for name, payload in snapshot.items():
            if payload["type"] == "counter":
                rendered = f"{payload['value']:,}"
            elif payload["type"] == "gauge":
                rendered = f"{payload['value']:g}"
            else:
                rendered = (
                    f"n={payload['count']} mean={payload['mean']:.1f}"
                )
            lines.append(f"{name:<42}{rendered:>14}")

    return "\n".join(lines)

"""Counter / gauge / histogram metrics registry.

The registry is the aggregate side of :mod:`repro.obs`: where the
tracer records *when* things happened, the registry records *how many*
and *how large*.  Instruments are created on demand and keyed by name,
so call sites never need to pre-declare what they measure::

    registry.counter("flows.deactivated").inc()
    registry.gauge("svc.peak_occupancy").set(peak)
    registry.histogram("segment.finish_cycles").observe(cycles)

A parallel null hierarchy (:data:`NULL_REGISTRY` handing out
:data:`NULL_COUNTER` etc.) backs the disabled observer: every method is
a no-op on shared singletons, so instrumented hot paths cost one
attribute lookup and one call when observability is off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; remembers the maximum it ever held.

    ``max_value`` stays at its ``-inf`` sentinel until the first
    :meth:`set`; serialization layers must map the sentinel to ``None``
    (``-Infinity`` is not strict JSON) — :meth:`observed_max` does that.
    """

    name: str
    value: float = 0.0
    max_value: float = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def observed_max(self) -> float | None:
        """The maximum ever set, or ``None`` before the first set."""
        return None if self.max_value == -math.inf else self.max_value


@dataclass
class Histogram:
    """Streaming summary plus power-of-two buckets.

    Buckets hold counts of observations with ``value <= 2**i`` (the
    first bucket that fits); an exact observation list would not survive
    million-symbol runs.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        exponent = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        The position inside the winning bucket is linearly interpolated
        between its bounds (``(2**(e-1), 2**e]``, with bucket 0 covering
        everything at or below 1) and clamped to the exact observed
        min/max, so single-bucket histograms report exact values.
        Returns ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        for exponent in sorted(self.buckets):
            weight = self.buckets[exponent]
            if cumulative + weight >= target:
                low = 0.0 if exponent == 0 else float(2 ** (exponent - 1))
                high = float(2**exponent)
                position = (target - cumulative) / weight
                estimate = low + position * (high - low)
                return min(max(estimate, self.min_value), self.max_value)
            cumulative += weight
        return self.max_value

    def quantiles(self) -> dict[str, float] | None:
        """The p50/p95/p99 summary, or ``None`` on an empty histogram."""
        if not self.count:
            return None
        out: dict[str, float] = {}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = self.quantile(q)
            assert value is not None
            out[label] = value
        return out


class MetricsRegistry:
    """Name-keyed instrument store with on-demand creation."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every instrument (strict-JSON-serializable).

        Keys are globally sorted — not per-type — so serialized
        snapshots diff cleanly across runs regardless of instrument
        creation order.  Sentinel infinities never leak: a never-set
        gauge reports ``max: None`` and an empty histogram reports
        ``min``/``max``/``quantiles`` as ``None``, so the payload always
        survives ``json.dumps(..., allow_nan=False)``.
        """
        out: dict[str, dict] = {}
        for name, counter in self._counters.items():
            out[name] = {"type": "counter", "value": counter.value}
        for name, gauge in self._gauges.items():
            out[name] = {
                "type": "gauge",
                "value": gauge.value,
                "max": gauge.observed_max,
            }
        for name, histogram in self._histograms.items():
            out[name] = {
                "type": "histogram",
                "count": histogram.count,
                "total": histogram.total,
                "mean": histogram.mean,
                "min": histogram.min_value if histogram.count else None,
                "max": histogram.max_value if histogram.count else None,
                "buckets": {
                    str(exponent): histogram.buckets[exponent]
                    for exponent in sorted(histogram.buckets)
                },
                "quantiles": histogram.quantiles(),
            }
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        return None


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class NullMetricsRegistry(MetricsRegistry):
    """Hands out shared no-op instruments; records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:  # noqa: ARG002
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:  # noqa: ARG002
        return NULL_GAUGE

    def histogram(self, name: str) -> Histogram:  # noqa: ARG002
        return NULL_HISTOGRAM


NULL_REGISTRY = NullMetricsRegistry()

"""repro — a reproduction of "Parallel Automata Processor"
(Subramaniyan & Das, ISCA 2017).

The package implements, from scratch:

* an automata substrate (character classes, classic NFAs, homogeneous
  ANML-style automata, a functional executor) — :mod:`repro.automata`;
* a regex front-end compiling rulesets to homogeneous automata —
  :mod:`repro.regex`;
* a model of Micron's D480 Automata Processor (geometry, STE columns,
  routing, state-vector cache, flows, timing) — :mod:`repro.ap`;
* the paper's contribution: enumerative parallel NFA execution with
  range-guided partitioning, flow merging, convergence/deactivation
  checks, and overlapped host composition — :mod:`repro.core`;
* the 19 evaluation workloads and trace generators —
  :mod:`repro.workloads`;
* the experiment harness regenerating every table and figure —
  :mod:`repro.sim`;
* a static-analysis pass ("apcheck") over automata, parallelization
  risk, and AP capacity — :mod:`repro.lint`;
* observability (dual-domain tracing, metrics, Chrome trace export) —
  :mod:`repro.obs`;
* benchmark artifacts, baselines, and regression gating —
  :mod:`repro.perf`.

Quickstart::

    from repro import compile_ruleset, ParallelAutomataProcessor, run_sequential

    automaton, _ = compile_ruleset(["virus[0-9]+", "worm.{3}x"])
    data = open("trace.bin", "rb").read()

    baseline = run_sequential(automaton, data)
    pap = ParallelAutomataProcessor(automaton)
    result = pap.run(data)

    assert result.reports == baseline.reports
    print("speedup:", baseline.total_cycles / result.total_cycles)
"""

from repro.automata import (
    Automaton,
    AutomatonAnalysis,
    CharClass,
    Nfa,
    Report,
    StartKind,
    run_automaton,
)
from repro.ap import (
    FOUR_RANKS,
    ONE_RANK,
    BaselineResult,
    Board,
    BoardGeometry,
    TimingModel,
    run_sequential,
)
from repro.core import (
    DEFAULT_CONFIG,
    PAPConfig,
    PAPRunResult,
    ParallelAutomataProcessor,
)
from repro.lint import LintConfig, LintReport, Severity, run_lint
from repro.regex import compile_pattern, compile_ruleset

__version__ = "1.0.0"

__all__ = [
    "Automaton",
    "AutomatonAnalysis",
    "BaselineResult",
    "Board",
    "BoardGeometry",
    "CharClass",
    "DEFAULT_CONFIG",
    "FOUR_RANKS",
    "LintConfig",
    "LintReport",
    "Nfa",
    "ONE_RANK",
    "Severity",
    "PAPConfig",
    "PAPRunResult",
    "ParallelAutomataProcessor",
    "Report",
    "StartKind",
    "TimingModel",
    "compile_pattern",
    "compile_ruleset",
    "run_automaton",
    "run_lint",
    "run_sequential",
    "__version__",
]

"""Host CPU model: report draining, false-path decoding, flow table."""

from repro.host.decode import (
    DECODE_BASE_CYCLES,
    DECODE_CYCLES_PER_FLOW,
    FlowTable,
    false_path_decode_cycles,
)
from repro.host.reporting import EVENTS_PER_CYCLE, report_processing_cycles

__all__ = [
    "EVENTS_PER_CYCLE",
    "DECODE_BASE_CYCLES",
    "DECODE_CYCLES_PER_FLOW",
    "FlowTable",
    "false_path_decode_cycles",
    "report_processing_cycles",
]

"""Host-side output report processing cost model.

The host drains the AP's output event buffer, decodes each entry (report
code + byte offset, plus the flow id under PAP), filters false-positive
events from false enumeration paths, and surfaces matches to the user
(Sections 2.1 and 3.4).  The paper charges this in *both* the baseline
and PAP and finds it around 1% of execution time because reporting is
infrequent.

Event entries are 8 bytes (report code + byte offset + flow id) and the
host drains them in DDR bursts: at DDR3 rates against the 7.5 ns symbol
clock, several entries arrive per symbol cycle, and per-entry decoding
is a handful of >=3 GHz host instructions (well under one symbol
cycle).  The model charges one symbol cycle per burst of
``EVENTS_PER_CYCLE`` events, which reproduces the paper's observation
that output reporting costs ~1% of execution even for chatty workloads.
"""

from __future__ import annotations

import math

EVENTS_PER_CYCLE = 8


def report_processing_cycles(
    num_events: int, *, events_per_cycle: int = EVENTS_PER_CYCLE
) -> int:
    """Symbol cycles the host spends draining ``num_events`` events."""
    if num_events < 0:
        raise ValueError("event count cannot be negative")
    if events_per_cycle < 1:
        raise ValueError("events per cycle must be at least 1")
    return math.ceil(num_events / events_per_cycle)

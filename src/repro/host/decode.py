"""Host-side false-path decoding and the flow table.

When an input segment finishes, the host (Section 3.4):

1. reads the segment's final state vector from the AP (1,668 symbol
   cycles over DDR);
2. interprets it against the flow table to decide which flows carried
   *true* enumeration paths ("another few tens of symbol cycles", plus
   work proportional to the live flows);
3. builds the 512-bit Flow Invalidation Vector (FIV) for the next
   segment (15 cycles to transfer back).

:class:`FlowTable` is the host's map from flow id to the enumeration
units it carries; :func:`false_path_decode_cycles` is the ``T_cpu``
charged per composition step (the Figure 11 quantity, excluding the FIV
transfer itself).  Calibrated on a Xeon E3-1240V5-class host as in the
paper: most benchmarks land near 2,000 cycles, flow-heavy ones several
times that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ap.timing import DEFAULT_TIMING, TimingModel

DECODE_BASE_CYCLES = 50
DECODE_CYCLES_PER_FLOW = 4


def false_path_decode_cycles(
    active_flows: int,
    *,
    timing: TimingModel = DEFAULT_TIMING,
    base_cycles: int | None = None,
    cycles_per_flow: int | None = None,
) -> int:
    """``T_cpu``: state-vector readout plus per-flow truth decoding.

    The decode constants default to the timing model's (which the
    experiment harness scales alongside trace size); explicit overrides
    win.
    """
    if active_flows < 0:
        raise ValueError("flow count cannot be negative")
    if base_cycles is None:
        base_cycles = timing.decode_base_cycles
    if cycles_per_flow is None:
        cycles_per_flow = timing.decode_cycles_per_flow
    return (
        timing.state_vector_transfer_cycles
        + base_cycles
        + cycles_per_flow * active_flows
    )


@dataclass
class FlowTable:
    """Host map: flow id -> enumeration unit ids carried by that flow.

    The table is written during preprocessing (when enumeration paths
    are merged into flows) and consulted at composition time to turn a
    true/false verdict per *unit* into a true/false verdict per flow and
    into the FIV.
    """

    units_by_flow: dict[int, list[int]] = field(default_factory=dict)

    def assign(self, flow_id: int, unit_id: int) -> None:
        self.units_by_flow.setdefault(flow_id, []).append(unit_id)

    def move_units(self, source_flow: int, target_flow: int) -> None:
        """Re-home a merged (converged) flow's units onto the survivor."""
        units = self.units_by_flow.pop(source_flow, [])
        self.units_by_flow.setdefault(target_flow, []).extend(units)

    def units_of(self, flow_id: int) -> tuple[int, ...]:
        return tuple(self.units_by_flow.get(flow_id, ()))

    def flows(self) -> tuple[int, ...]:
        return tuple(sorted(self.units_by_flow))

    def __len__(self) -> int:
        return len(self.units_by_flow)

    def flow_invalidation_vector(
        self, true_units: set[int], *, vector_bits: int = 512
    ) -> tuple[frozenset[int], int]:
        """Flows with no true unit, as (flow set, transfer cycles).

        The FIV is a 512-bit vector (one bit per state-vector-cache
        slot); its transfer cost is the timing model's 15 cycles and is
        returned alongside for the scheduler to charge.
        """
        false_flows = frozenset(
            flow_id
            for flow_id, units in self.units_by_flow.items()
            if not any(unit in true_units for unit in units)
        )
        del vector_bits  # architectural width; cost is charged by timing
        return false_flows, DEFAULT_TIMING.fiv_transfer_cycles

"""Experiment harness: end-to-end runs, figure formatting, sweeps."""

from repro.sim.report import (
    format_figure3,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11,
    format_figure12,
    format_sensitivity,
    format_table1,
)
from repro.sim.plots import bar_chart, grouped_bar_chart, histogram
from repro.sim.runner import BenchmarkRun, geometric_mean, run_benchmark
from repro.sim.sweep import (
    ABLATION_TOGGLES,
    ablation_sweep,
    context_switch_sweep,
    sweep_report,
    tdm_slice_sweep,
)

__all__ = [
    "ABLATION_TOGGLES",
    "BenchmarkRun",
    "ablation_sweep",
    "bar_chart",
    "context_switch_sweep",
    "grouped_bar_chart",
    "histogram",
    "format_figure10",
    "format_figure11",
    "format_figure12",
    "format_figure3",
    "format_figure8",
    "format_figure9",
    "format_sensitivity",
    "format_table1",
    "geometric_mean",
    "run_benchmark",
    "sweep_report",
    "tdm_slice_sweep",
]

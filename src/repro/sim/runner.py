"""End-to-end experiment runner: sequential baseline vs. PAP.

One :func:`run_benchmark` call reproduces one bar of Figure 8 (one
benchmark, one rank count, one input size) and carries every per-figure
metric with it: flow-reduction stats (Fig. 9), switching overhead
(Fig. 10), decode costs (Fig. 11), and event amplification (Fig. 12).
Report equality against the baseline is checked on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ap.geometry import BoardGeometry
from repro.ap.sequential import BaselineResult, run_sequential
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.metrics import PAPRunResult
from repro.core.pap import ParallelAutomataProcessor
from repro.errors import ExecutionError
from repro.exec.backend import ExecutionBackend
from repro.exec.durability import AdmissionPolicy, CheckpointStore
from repro.exec.faults import FaultPlan
from repro.exec.resilience import RetryPolicy
from repro.obs.tracer import Observer, Tracer
from repro.workloads.suite import BenchmarkInstance


@dataclass(frozen=True)
class BenchmarkRun:
    """One benchmark x board x input-size measurement."""

    name: str
    ranks: int
    trace_bytes: int
    baseline: BaselineResult
    pap: PAPRunResult
    reports_match: bool
    trace: Tracer | None = None
    """The run's tracer when one was attached (``observer=Tracer()``),
    so sweep results carry their traces alongside their metrics."""

    @property
    def speedup(self) -> float:
        if self.pap.total_cycles == 0:
            return 1.0
        return self.baseline.total_cycles / self.pap.total_cycles

    @property
    def ideal_speedup(self) -> int:
        return self.pap.num_segments

    @property
    def extra_transitions_per_symbol(self) -> float:
        """PAP state activations per symbol relative to the baseline's
        (the Section 5.3 dynamic-energy proxy)."""
        if self.baseline.transitions == 0:
            return 1.0
        return self.pap.transitions / self.baseline.transitions

    def to_dict(self) -> dict:
        """Plain-data view of the run for ``BENCH_*.json`` artifacts.

        Everything here lives in the symbol-cycle domain: given the same
        benchmark, configuration, and seeds, every value is bit-exact
        across runs and machines, so :mod:`repro.perf` compares them
        exactly — any drift is a fidelity regression, not noise.
        """
        pap = self.pap
        svc = pap.extra.get("svc", {})
        return {
            "name": self.name,
            "ranks": self.ranks,
            "trace_bytes": self.trace_bytes,
            "cycles": {
                "baseline_cycles": self.baseline.total_cycles,
                "baseline_symbol_cycles": self.baseline.symbol_cycles,
                "baseline_host_cycles": self.baseline.host_cycles,
                "baseline_transitions": self.baseline.transitions,
                "pap_cycles": pap.total_cycles,
                "enumeration_cycles": pap.enumeration_cycles,
                "golden_cycles": pap.golden_cycles,
                "golden_fallback": pap.golden_fallback,
                "segments": pap.num_segments,
                "speedup": self.speedup,
                "ideal_speedup": self.ideal_speedup,
                "avg_active_flows": pap.average_active_flows,
                "switching_overhead": pap.switching_overhead,
                "convergence_check_cycles": pap.convergence_check_cycles,
                "average_tcpu": pap.average_tcpu,
                "deactivations": pap.deactivations,
                "convergence_merges": pap.convergence_merges,
                "fiv_invalidations": pap.fiv_invalidations,
                "transitions": pap.transitions,
                "extra_transitions_per_symbol": (
                    self.extra_transitions_per_symbol
                ),
                "reports": len(pap.reports),
                "raw_events": pap.raw_events,
                "true_events": pap.true_events,
                "event_amplification": pap.event_amplification,
                "reports_match": self.reports_match,
                "svc_overflow": pap.svc_overflow,
                "svc_hits": svc.get("hits", 0),
                "svc_misses": svc.get("misses", 0),
                "svc_saves": svc.get("saves", 0),
                "svc_restores": svc.get("restores", 0),
                "svc_invalidations": svc.get("invalidations", 0),
                "svc_peak_occupancy": svc.get("peak_occupancy", 0),
            },
        }

    def telemetry_dict(self) -> dict:
        """Quantile summaries of per-segment distributions.

        Built from the run's own cycle-domain metrics (no observer
        required), so it is as deterministic as :meth:`to_dict` — but it
        rides in the BENCH artifact's ``telemetry`` field, which the
        comparison engine never gates: distribution summaries are for
        reading trends, the exact per-quantity ``cycles`` keys are for
        regression detection.
        """
        from repro.obs.metrics import Histogram

        finish = Histogram("segment.finish_cycles")
        flows = Histogram("segment.flows_at_end")
        attempts = Histogram("exec.attempts_per_segment")
        for result in self.pap.segment_results:
            finish.observe(result.metrics.finish_cycles)
            flows.observe(result.metrics.flows_at_end)
        health = self.pap.extra.get("health", {})
        for count in health.get("attempts", {}).values():
            attempts.observe(count)
        out = {
            "segment_finish_cycles": finish.quantiles(),
            "segment_flows_at_end": flows.quantiles(),
            "segment_attempts": attempts.quantiles(),
        }
        phases = self.pap.extra.get("phases")
        if phases:
            # The run-level phase attribution (repro.obs.phases); like
            # everything in this field it is carried for reading, never
            # gated.  Wall rows are dropped — they are host noise and
            # the artifact's cycle payload must stay machine-invariant.
            out["phases"] = {
                "cycles": dict(phases["cycles"]),
                "accounted_cycles": phases["accounted_cycles"],
                "hot_phase": phases["hot_phase"],
            }
        return out


def run_benchmark(
    benchmark: BenchmarkInstance,
    *,
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    trace_seed: int = 1,
    config: PAPConfig = DEFAULT_CONFIG,
    verify_reports: bool = True,
    observer: Observer | None = None,
    backend: ExecutionBackend | str | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: CheckpointStore | str | None = None,
    resume: bool = False,
    admission: AdmissionPolicy | None = None,
) -> BenchmarkRun:
    """Run one benchmark end to end and package the measurement.

    ``modeled_bytes`` names the experiment being reproduced (the
    paper's 1 MB or 10 MB input) when ``trace_bytes`` is a scaled-down
    stand-in: the per-segment constant costs (state-vector readout,
    host decode, FIV transfer) are shrunk by the same factor so every
    speedup ratio matches the full-size experiment — see
    :meth:`repro.ap.timing.TimingModel.scaled_for_input`.

    ``observer`` threads an :mod:`repro.obs` instrumentation sink
    through the PAP execution; when it is a
    :class:`~repro.obs.Tracer`, the returned run carries it as
    ``run.trace``.

    ``backend`` selects the host execution backend (:mod:`repro.exec`);
    cycle-domain measurements are backend-invariant, so a
    :class:`BenchmarkRun`'s ``to_dict`` payload is bit-identical across
    backends.  Pass a backend *instance* to reuse one worker pool
    across repeated runs (the caller closes it).

    ``retry`` and ``faults`` thread the recovery policy and fault plan
    into :meth:`ParallelAutomataProcessor.run`; because recovered runs
    are bit-exact in the cycle domain, the ``to_dict`` payload stays
    identical under injected faults — which is exactly what the chaos
    CI job asserts.  The recovery record lands in
    ``run.pap.extra["health"]``.

    ``checkpoint``/``resume``/``admission`` thread the durability
    machinery (:mod:`repro.exec.durability`) into the run: segment
    results are written through to the checkpoint store as they
    complete, ``resume=True`` skips segments already proven under the
    same run fingerprint, and ``admission`` pre-checks the run against
    a memory budget.  A resumed run replays checkpointed cycle-domain
    results bit-exactly, so its ``to_dict`` payload matches a cold
    run's — that is what the kill-and-resume CI stage gates.
    """
    board = BoardGeometry(ranks=ranks)
    timing = config.timing
    if modeled_bytes is not None:
        timing = timing.scaled_for_input(trace_bytes, modeled_bytes)
    config = replace(config, geometry=board, timing=timing)
    data = benchmark.trace(trace_bytes, trace_seed)

    baseline = run_sequential(benchmark.automaton, data, timing=config.timing)
    pap = ParallelAutomataProcessor(
        benchmark.automaton,
        config=config,
        half_cores=benchmark.half_cores,
        observer=observer,
    ).run(
        data,
        backend=backend,
        retry=retry,
        faults=faults,
        checkpoint=checkpoint,
        resume=resume,
        admission=admission,
    )

    matches = pap.reports == baseline.reports
    if verify_reports and not matches:
        missing = len(baseline.reports - pap.reports)
        extra = len(pap.reports - baseline.reports)
        raise ExecutionError(
            f"{benchmark.name}: PAP reports diverged from baseline "
            f"({missing} missing, {extra} extra)"
        )
    return BenchmarkRun(
        name=benchmark.name,
        ranks=ranks,
        trace_bytes=len(data),
        baseline=baseline,
        pap=pap,
        reports_match=matches,
        trace=observer if isinstance(observer, Tracer) else None,
    )


def geometric_mean(values: list[float]) -> float:
    """Geomean as the paper aggregates speedups.

    An empty input is an error, not ``0.0``: a silent zero geomean
    would read as "infinitely slow" in any baseline comparison and
    poison the perf trajectory.
    """
    if not values:
        raise ValueError("geometric_mean of an empty sequence is undefined")
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))

"""Parameter sweeps: sensitivity studies and ablations.

Covers the paper's Section 5.3 context-switch sensitivity (2x and 4x
switch cost) and the optimization ablations implied by Figure 9 — each
optimization toggled off in isolation to measure its contribution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.obs.tracer import Tracer
from repro.sim.runner import BenchmarkRun, run_benchmark
from repro.workloads.suite import BenchmarkInstance

# Every sweep accepts ``trace=True``: each point then runs under its own
# :class:`~repro.obs.Tracer`, and the resulting ``BenchmarkRun.trace``
# carries the full cycle-domain trace for that configuration.

ABLATION_TOGGLES: tuple[str, ...] = (
    "use_connected_components",
    "use_common_parent",
    "use_asg",
    "use_convergence",
    "use_deactivation",
    "use_fiv",
)


def sweep_report(
    results: dict[object, BenchmarkRun],
    *,
    label: str,
    parameters: dict | None = None,
):
    """Serialization hook: package any sweep's results as a
    :class:`repro.perf.PerfReport` ready for ``BENCH_*.json``.

    Keys become record keys (``"full"``, ``"no-fiv"``, slice sizes...).
    Imported lazily so :mod:`repro.sim` stays importable without
    :mod:`repro.perf` in the dependency chain at module load.
    """
    from repro.perf.artifact import report_from_runs

    return report_from_runs(
        {str(key): run for key, run in results.items()},
        label=label,
        parameters=parameters,
    )


def context_switch_sweep(
    benchmark: BenchmarkInstance,
    *,
    factors: tuple[int, ...] = (1, 2, 4),
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    config: PAPConfig = DEFAULT_CONFIG,
    trace: bool = False,
) -> dict[int, BenchmarkRun]:
    """Speedup at each context-switch cost multiplier (Section 5.3)."""
    results: dict[int, BenchmarkRun] = {}
    for factor in factors:
        timed = replace(
            config,
            timing=config.timing.with_context_switch_multiplier(factor),
        )
        results[factor] = run_benchmark(
            benchmark,
            ranks=ranks,
            trace_bytes=trace_bytes,
            modeled_bytes=modeled_bytes,
            config=timed,
            observer=Tracer() if trace else None,
        )
    return results


def ablation_sweep(
    benchmark: BenchmarkInstance,
    *,
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    config: PAPConfig = DEFAULT_CONFIG,
    toggles: tuple[str, ...] = ABLATION_TOGGLES,
    trace: bool = False,
) -> dict[str, BenchmarkRun]:
    """Each optimization disabled in isolation, plus the full config.

    Keys: ``"full"`` and ``"no-<toggle>"`` per entry of ``toggles``.
    """
    results: dict[str, BenchmarkRun] = {
        "full": run_benchmark(
            benchmark,
            ranks=ranks,
            trace_bytes=trace_bytes,
            modeled_bytes=modeled_bytes,
            config=config,
            observer=Tracer() if trace else None,
        )
    }
    for toggle in toggles:
        ablated = replace(config, **{toggle: False})
        results[f"no-{toggle.removeprefix('use_')}"] = run_benchmark(
            benchmark,
            ranks=ranks,
            trace_bytes=trace_bytes,
            modeled_bytes=modeled_bytes,
            config=ablated,
            observer=Tracer() if trace else None,
        )
    return results


def tdm_slice_sweep(
    benchmark: BenchmarkInstance,
    *,
    slice_sizes: tuple[int, ...] = (64, 128, 256, 512),
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    config: PAPConfig = DEFAULT_CONFIG,
    trace: bool = False,
) -> dict[int, BenchmarkRun]:
    """Speedup vs. TDM slice size ``k`` (a design-space knob the paper
    fixes implicitly; exposed here as an extension study)."""
    results: dict[int, BenchmarkRun] = {}
    for size in slice_sizes:
        sized = replace(config, tdm_slice_symbols=size)
        results[size] = run_benchmark(
            benchmark,
            ranks=ranks,
            trace_bytes=trace_bytes,
            modeled_bytes=modeled_bytes,
            config=sized,
            observer=Tracer() if trace else None,
        )
    return results

"""Text renderers for the paper's tables and figures.

Each ``format_*`` function turns measurements into the rows the paper
reports, printed as fixed-width text tables (this reproduction's
equivalent of the camera-ready plots).  Benchmarks under
``benchmarks/`` call these after their measurement loops.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ranges import RangeProfile
from repro.sim.plots import bar_chart
from repro.sim.runner import BenchmarkRun, geometric_mean
from repro.workloads.suite import BenchmarkInstance, PaperRow


def _table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    widths = [len(h) for h in header]
    text_rows = [[_cell(value) for value in row] for row in rows]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table1(
    rows: list[tuple[BenchmarkInstance, int, int, int]]
) -> str:
    """Table 1: benchmark characteristics, generated vs. paper.

    ``rows`` holds (benchmark, generated_states, generated_components,
    generated_range) tuples.
    """
    header = (
        "Benchmark",
        "States",
        "Range",
        "CCs",
        "HalfCores",
        "Seg(1rank)",
        "Seg(4rank)",
        "Paper:States",
        "Paper:Range",
        "Paper:CCs",
    )
    body = []
    for bench, states, components, symbol_range in rows:
        paper: PaperRow = bench.paper
        body.append(
            (
                bench.name,
                states,
                symbol_range,
                components,
                paper.half_cores,
                paper.segments_one_rank,
                paper.segments_four_ranks,
                paper.states,
                paper.symbol_range,
                paper.components,
            )
        )
    return _table(header, body)


def format_figure3(
    rows: list[tuple[str, int, RangeProfile]]
) -> str:
    """Figure 3: per-benchmark symbol-range distribution vs. states."""
    header = (
        "Benchmark",
        "States",
        "RangeMin",
        "RangeAvg",
        "RangeMax",
        "Avg/States%",
    )
    body = []
    for name, states, profile in rows:
        body.append(
            (
                name,
                states,
                profile.minimum,
                profile.average,
                profile.maximum,
                100.0 * profile.average / max(1, states),
            )
        )
    return _table(header, body)


def format_figure8(runs: list[BenchmarkRun], *, label: str) -> str:
    """Figure 8: PAP speedups vs. ideal, one input-size panel."""
    header = (
        "Benchmark",
        "Ranks",
        "Speedup",
        "Ideal",
        "Efficiency%",
        "GoldenFallback",
    )
    body = [
        (
            run.name,
            run.ranks,
            run.speedup,
            run.ideal_speedup,
            100.0 * run.speedup / max(1, run.ideal_speedup),
            "yes" if run.pap.golden_fallback else "no",
        )
        for run in runs
    ]
    table = _table(header, body)
    by_ranks: dict[int, list[float]] = {}
    for run in runs:
        by_ranks.setdefault(run.ranks, []).append(run.speedup)
    summary = "  ".join(
        f"geomean({ranks} rank{'s' if ranks > 1 else ''}) = "
        f"{geometric_mean(values):.1f}x"
        for ranks, values in sorted(by_ranks.items())
    )
    chart = bar_chart(
        [(run.name, run.speedup) for run in runs],
        reference=float(max(run.ideal_speedup for run in runs)),
        unit="x",
    )
    return f"== Figure 8 [{label}] ==\n{table}\n{summary}\n\n{chart}"


def format_figure9(runs: list[BenchmarkRun]) -> str:
    """Figure 9: the flow-reduction waterfall (log scale, as in the
    paper)."""
    from repro.sim.plots import grouped_bar_chart

    header = (
        "Benchmark",
        "FlowsInRange",
        "AfterCC",
        "AfterParent",
        "AvgActive",
    )
    body = []
    for run in runs:
        stats = [
            plan.stats for plan in run.pap.plans if not plan.is_golden
        ]
        if not stats:
            body.append((run.name, 0, 0, 0, run.pap.average_active_flows))
            continue
        body.append(
            (
                run.name,
                max(s.flows_in_range for s in stats),
                max(s.flows_after_cc for s in stats),
                max(s.flows_after_parent for s in stats),
                run.pap.average_active_flows,
            )
        )
    chart = grouped_bar_chart(
        [
            (str(name), [float(a), float(b), float(c), float(d)])
            for name, a, b, c, d in body
        ],
        ["range", "cc", "parent", "active"],
        log_scale=True,
    )
    return "== Figure 9 ==\n" + _table(header, body) + "\n\n" + chart


def format_figure10(runs: list[BenchmarkRun]) -> str:
    """Figure 10: flow-switching overhead (%)."""
    header = ("Benchmark", "SwitchOverhead%")
    body = [
        (run.name, 100.0 * run.pap.switching_overhead) for run in runs
    ]
    return "== Figure 10 ==\n" + _table(header, body)


def format_figure11(runs: list[BenchmarkRun]) -> str:
    """Figure 11: false-path invalidation time (AP symbol cycles)."""
    header = ("Benchmark", "AvgTcpuCycles", "MaxTcpuCycles")
    body = []
    for run in runs:
        charged = [c for c in run.pap.tcpu_cycles if c > 0]
        body.append(
            (
                run.name,
                sum(charged) / len(charged) if charged else 0,
                max(charged) if charged else 0,
            )
        )
    return "== Figure 11 ==\n" + _table(header, body)


def format_figure12(runs: list[BenchmarkRun]) -> str:
    """Figure 12: increase in output report events due to false paths
    (log scale, as in the paper)."""
    header = ("Benchmark", "RawEvents", "TrueEvents", "Amplification")
    body = [
        (
            run.name,
            run.pap.raw_events,
            run.pap.true_events,
            run.pap.event_amplification,
        )
        for run in runs
    ]
    chart = bar_chart(
        [(run.name, run.pap.event_amplification) for run in runs],
        log_scale=True,
        unit="x",
    )
    return "== Figure 12 ==\n" + _table(header, body) + "\n\n" + chart


def format_sensitivity(
    rows: list[tuple[str, float, float, float]]
) -> str:
    """Section 5.3 sensitivity: speedups at 1x/2x/4x switch cost."""
    header = ("Benchmark", "Speedup(1x)", "Speedup(2x)", "Speedup(4x)")
    return "== Context-switch sensitivity ==\n" + _table(header, rows)

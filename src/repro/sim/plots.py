"""ASCII chart rendering.

The paper's figures are bar charts; these helpers render the same data
as fixed-width text bars so results read at a glance in a terminal or a
results file.  Log-scale support covers Figures 9 and 12, whose y-axes
are logarithmic in the paper.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

DEFAULT_WIDTH = 50
BAR = "#"


def bar_chart(
    rows: Sequence[tuple[str, float]],
    *,
    width: int = DEFAULT_WIDTH,
    log_scale: bool = False,
    unit: str = "",
    reference: float | None = None,
    reference_label: str = "ideal",
) -> str:
    """Render labeled horizontal bars.

    ``reference`` draws a ``|`` marker at a per-chart reference value
    (e.g. the ideal speedup); values beyond it clip at the marker.
    """
    if not rows:
        return "(no data)"
    values = [value for _, value in rows]
    top = reference if reference is not None else max(values)
    top = max(top, 1e-12)

    def scaled(value: float) -> int:
        if value <= 0:
            return 0
        if log_scale:
            ceiling = math.log10(top + 1)
            if ceiling <= 0:
                return 0
            return round(width * min(1.0, math.log10(value + 1) / ceiling))
        return round(width * min(1.0, value / top))

    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = BAR * scaled(value)
        marker = ""
        if reference is not None:
            pad = " " * max(0, width - len(bar))
            marker = f"{pad}|"
        lines.append(
            f"{label:<{label_width}}  {value:>10.2f}{unit}  {bar}{marker}"
        )
    if reference is not None:
        lines.append(
            f"{'':<{label_width}}  {'':>10}   "
            f"{' ' * width}^ {reference_label} = {reference:g}"
        )
    if log_scale:
        lines.append(f"{'':<{label_width}}  (log scale)")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[tuple[str, Sequence[float]]],
    series_labels: Sequence[str],
    *,
    width: int = DEFAULT_WIDTH,
    log_scale: bool = False,
) -> str:
    """Render one bar per (row, series) pair, grouped per row —
    the shape of the paper's Figure 9 waterfall."""
    if not rows:
        return "(no data)"
    flattened = [
        (f"{label} [{series_labels[index]}]", value)
        for label, values in rows
        for index, value in enumerate(values)
    ]
    chunks = []
    per_group = len(series_labels)
    for group in range(len(rows)):
        chunk = flattened[group * per_group : (group + 1) * per_group]
        chunks.append(
            bar_chart(chunk, width=width, log_scale=log_scale)
        )
    return "\n\n".join(chunks)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = DEFAULT_WIDTH,
) -> str:
    """A quick distribution view (e.g. per-segment finish times)."""
    if not values:
        return "(no data)"
    low, high = min(values), max(values)
    if high == low:
        return f"{low:g} x{len(values)}  {BAR * width}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        lo = low + index * span
        hi = lo + span
        bar = BAR * round(width * count / peak)
        lines.append(f"[{lo:>12.1f}, {hi:>12.1f})  {count:>6}  {bar}")
    return "\n".join(lines)

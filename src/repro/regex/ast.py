"""Regex abstract syntax tree.

A deliberately small, immutable node set; bounded repetition is expanded
structurally by the compiler (the AP realizes ``{m,n}`` by replicating
STEs, and counters — which we model in :mod:`repro.ap` — are not needed
for the paper's benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.charclass import CharClass


class Node:
    """Base class of regex AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Node):
    """One symbol position matching a character class."""

    klass: CharClass

    def __repr__(self) -> str:
        return f"Literal({self.klass.spec()})"


@dataclass(frozen=True)
class Concat(Node):
    """Sequential composition ``left right``."""

    left: Node
    right: Node


@dataclass(frozen=True)
class Alt(Node):
    """Alternation ``left | right``."""

    left: Node
    right: Node


@dataclass(frozen=True)
class Star(Node):
    """Kleene closure ``inner*``."""

    inner: Node


@dataclass(frozen=True)
class Plus(Node):
    """One-or-more ``inner+``."""

    inner: Node


@dataclass(frozen=True)
class Optional(Node):
    """Zero-or-one ``inner?``."""

    inner: Node


@dataclass(frozen=True)
class Repeat(Node):
    """Bounded repetition ``inner{low,high}``.

    ``high`` of ``None`` means unbounded (``{low,}``).
    """

    inner: Node
    low: int
    high: int | None


@dataclass(frozen=True)
class Empty(Node):
    """The empty string (epsilon)."""


def expand_repeats(node: Node) -> Node:
    """Rewrite :class:`Repeat` into concatenations/options/stars.

    ``r{2,4}`` becomes ``r r r? r?``; ``r{2,}`` becomes ``r r r*``.
    The expansion is how the AP compiler itself unrolls bounded
    repetitions into STE chains.
    """
    if isinstance(node, Literal) or isinstance(node, Empty):
        return node
    if isinstance(node, Concat):
        return Concat(expand_repeats(node.left), expand_repeats(node.right))
    if isinstance(node, Alt):
        return Alt(expand_repeats(node.left), expand_repeats(node.right))
    if isinstance(node, Star):
        return Star(expand_repeats(node.inner))
    if isinstance(node, Plus):
        return Plus(expand_repeats(node.inner))
    if isinstance(node, Optional):
        return Optional(expand_repeats(node.inner))
    if isinstance(node, Repeat):
        inner = expand_repeats(node.inner)
        parts: list[Node] = [inner] * node.low
        if node.high is None:
            parts.append(Star(inner))
        else:
            parts.extend(Optional(inner) for _ in range(node.high - node.low))
        if not parts:
            return Empty()
        result = parts[0]
        for part in parts[1:]:
            result = Concat(result, part)
        return result
    raise TypeError(f"unknown AST node: {node!r}")

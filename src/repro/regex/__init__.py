"""Regex front-end: parser, Glushkov compiler, and rulesets."""

from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Literal,
    Node,
    Optional,
    Plus,
    Repeat,
    Star,
    expand_repeats,
)
from repro.regex.compiler import compile_ast, compile_pattern
from repro.regex.parser import ParsedPattern, parse
from repro.regex.ruleset import RulesetStats, compile_ruleset

__all__ = [
    "Alt",
    "Concat",
    "Empty",
    "Literal",
    "Node",
    "Optional",
    "ParsedPattern",
    "Plus",
    "Repeat",
    "RulesetStats",
    "Star",
    "compile_ast",
    "compile_pattern",
    "compile_ruleset",
    "expand_repeats",
    "parse",
]

"""Glushkov compilation: regex AST -> homogeneous automaton.

The Glushkov construction is the natural compiler for the AP: every
*position* (symbol occurrence) of the regex becomes one STE labeled with
that position's character class, and the follow relation becomes the
unlabeled edge set — no epsilon states, homogeneous by construction.
This mirrors how Micron's ANML toolchain realizes regexes in hardware.

Unanchored patterns are compiled as ``.*R``: the leading ``.*`` becomes
a full-label, self-looping start-of-data state — precisely the
always-active hub the paper's Active State Group optimization targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Literal,
    Node,
    Optional,
    Plus,
    Repeat,
    Star,
    expand_repeats,
)
from repro.regex.parser import ParsedPattern, parse


@dataclass
class _Glushkov:
    """Position bookkeeping for one compilation."""

    labels: list[CharClass] = field(default_factory=list)
    follow: list[set[int]] = field(default_factory=list)

    def position(self, klass: CharClass) -> int:
        pid = len(self.labels)
        self.labels.append(klass)
        self.follow.append(set())
        return pid

    def analyze(self, node: Node) -> tuple[bool, list[int], list[int]]:
        """Returns (nullable, first, last), populating follow edges."""
        if isinstance(node, Empty):
            return True, [], []
        if isinstance(node, Literal):
            pid = self.position(node.klass)
            return False, [pid], [pid]
        if isinstance(node, Concat):
            left_null, left_first, left_last = self.analyze(node.left)
            right_null, right_first, right_last = self.analyze(node.right)
            for pid in left_last:
                self.follow[pid].update(right_first)
            first = left_first + (right_first if left_null else [])
            last = right_last + (left_last if right_null else [])
            return left_null and right_null, first, last
        if isinstance(node, Alt):
            left_null, left_first, left_last = self.analyze(node.left)
            right_null, right_first, right_last = self.analyze(node.right)
            return (
                left_null or right_null,
                left_first + right_first,
                left_last + right_last,
            )
        if isinstance(node, (Star, Plus)):
            nullable, first, last = self.analyze(node.inner)
            for pid in last:
                self.follow[pid].update(first)
            return isinstance(node, Star) or nullable, first, last
        if isinstance(node, Optional):
            _, first, last = self.analyze(node.inner)
            return True, first, last
        if isinstance(node, Repeat):
            raise AssertionError("Repeat must be expanded before analysis")
        raise TypeError(f"unknown AST node: {node!r}")


def compile_ast(
    ast: Node,
    *,
    anchored: bool,
    automaton: Automaton | None = None,
    report_code: int = 0,
    source: str = "",
) -> Automaton:
    """Compile one AST into (or onto) a homogeneous automaton.

    Passing an existing ``automaton`` appends this pattern's states to
    it, which is how rulesets share one machine.
    """
    expanded = expand_repeats(ast)
    glushkov = _Glushkov()
    nullable, first, last = glushkov.analyze(expanded)
    if nullable:
        raise RegexSyntaxError(
            "pattern matches the empty string; occurrence reporting is "
            "undefined for it",
            source,
            0,
        )

    target = automaton if automaton is not None else Automaton(name="regex")
    base = target.num_states
    hub: int | None = None
    if not anchored:
        hub = target.add_state(
            CharClass.full(), start=StartKind.START_OF_DATA, name=".*"
        )
        target.add_edge(hub, hub)

    first_set = set(first)
    last_set = set(last)
    for pid, label in enumerate(glushkov.labels):
        target.add_state(
            label,
            start=(
                StartKind.START_OF_DATA if pid in first_set else StartKind.NONE
            ),
            reporting=pid in last_set,
            report_code=report_code if pid in last_set else None,
        )
    offset = base + (1 if hub is not None else 0)
    for pid, follows in enumerate(glushkov.follow):
        target.add_edges(offset + pid, [offset + f for f in follows])
    if hub is not None:
        target.add_edges(hub, [offset + pid for pid in first_set])
    return target


def compile_pattern(
    pattern: str | ParsedPattern,
    *,
    automaton: Automaton | None = None,
    report_code: int = 0,
) -> Automaton:
    """Parse (if needed) and compile one pattern."""
    parsed = parse(pattern) if isinstance(pattern, str) else pattern
    return compile_ast(
        parsed.ast,
        anchored=parsed.anchored,
        automaton=automaton,
        report_code=report_code,
        source=parsed.source,
    )

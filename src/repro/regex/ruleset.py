"""Multi-pattern rulesets.

Real AP deployments load hundreds to thousands of patterns into one
machine (Snort, ClamAV, PowerEN...).  :func:`compile_ruleset` unions the
Glushkov automata of many patterns, assigns each pattern a distinct
report code (its rule index), and optionally applies common-prefix
merging — matching the paper's preprocessing (Section 4.1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.automata.anml import Automaton
from repro.automata.prefix_merge import merge_common_prefixes
from repro.regex.ast import (
    Alt,
    Concat,
    Literal,
    Node,
    Optional as OptionalNode,
    Plus,
    Repeat,
    Star,
)
from repro.regex.compiler import compile_ast, compile_pattern
from repro.regex.parser import ParsedPattern, parse


@dataclass(frozen=True)
class RulesetStats:
    """Summary of one compiled ruleset."""

    num_rules: int
    states_before_merge: int
    states_after_merge: int

    @property
    def compression(self) -> float:
        if self.states_before_merge == 0:
            return 0.0
        return 1.0 - self.states_after_merge / self.states_before_merge


def compile_ruleset(
    patterns: Sequence[str],
    *,
    name: str = "ruleset",
    prefix_merge: bool = True,
    case_insensitive: bool = False,
) -> tuple[Automaton, RulesetStats]:
    """Compile ``patterns`` into one automaton.

    Rule ``i`` reports with code ``i``.  ``case_insensitive`` folds
    ASCII case in every literal position (the Snort ``nocase`` idiom —
    on the AP this simply widens symbol sets, no extra states).
    Returns the automaton and the compile statistics (the compression
    ratio feeds Table 1 analysis).
    """
    automaton = Automaton(name=name)
    for code, pattern in enumerate(patterns):
        parsed = parse(pattern)
        if case_insensitive:
            parsed = ParsedPattern(
                ast=fold_case(parsed.ast),
                anchored=parsed.anchored,
                source=parsed.source,
            )
        compile_ast(
            parsed.ast,
            anchored=parsed.anchored,
            automaton=automaton,
            report_code=code,
            source=parsed.source,
        )
    before = automaton.num_states
    if prefix_merge:
        automaton = merge_common_prefixes(automaton)
        automaton.name = name
    automaton.validate()
    return automaton, RulesetStats(
        num_rules=len(patterns),
        states_before_merge=before,
        states_after_merge=automaton.num_states,
    )


def fold_case(node: Node) -> Node:
    """Widen every literal position to match both ASCII cases."""
    if isinstance(node, Literal):
        klass = node.klass
        folded = klass
        for symbol in klass:
            if ord("a") <= symbol <= ord("z"):
                folded = folded | type(klass).single(symbol - 32)
            elif ord("A") <= symbol <= ord("Z"):
                folded = folded | type(klass).single(symbol + 32)
        return Literal(folded)
    if isinstance(node, Concat):
        return Concat(fold_case(node.left), fold_case(node.right))
    if isinstance(node, Alt):
        return Alt(fold_case(node.left), fold_case(node.right))
    if isinstance(node, Star):
        return Star(fold_case(node.inner))
    if isinstance(node, Plus):
        return Plus(fold_case(node.inner))
    if isinstance(node, OptionalNode):
        return OptionalNode(fold_case(node.inner))
    if isinstance(node, Repeat):
        return Repeat(fold_case(node.inner), node.low, node.high)
    return node


# compile_pattern re-exported for callers importing from here.
__all__ = ["RulesetStats", "compile_ruleset", "compile_pattern", "fold_case"]

"""Recursive-descent regex parser.

Supported syntax (the subset used by the Regex and ANMLZoo rulesets):

* literals and escapes: ``\\n \\r \\t \\0 \\xHH \\\\ \\. \\* ...``
* predefined classes: ``\\d \\D \\w \\W \\s \\S``
* the wildcard ``.`` (all 256 symbols, as on the AP)
* character classes ``[abc]``, ranges ``[a-z0-9]``, negation ``[^...]``
* grouping ``( ... )`` (non-capturing; capture semantics are irrelevant
  to automata matching)
* alternation ``|``
* quantifiers ``* + ?`` and bounded ``{m} {m,} {m,n}``
* the anchor ``^`` as the first character; patterns without it are
  unanchored (implicit leading ``.*``), following Becchi's tooling

A parsed pattern is returned as :class:`ParsedPattern` carrying the AST
and the anchor flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.charclass import CharClass
from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Alt,
    Concat,
    Empty,
    Literal,
    Node,
    Optional,
    Plus,
    Repeat,
    Star,
)

_DIGITS = CharClass.range("0", "9")
_WORD = (
    CharClass.range("a", "z")
    | CharClass.range("A", "Z")
    | _DIGITS
    | CharClass.single("_")
)
_SPACE = CharClass(" \t\n\r\x0b\x0c")

_PREDEFINED = {
    "d": _DIGITS,
    "D": _DIGITS.complement(),
    "w": _WORD,
    "W": _WORD.complement(),
    "s": _SPACE,
    "S": _SPACE.complement(),
}

_SIMPLE_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "f": ord("\f"),
    "v": ord("\v"),
    "0": 0,
    "a": 7,
}

_SPECIAL = set("()[]{}|*+?.^$\\")


@dataclass(frozen=True)
class ParsedPattern:
    """A parsed regex: its AST and whether it was ``^``-anchored."""

    ast: Node
    anchored: bool
    source: str


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # -- utilities ---------------------------------------------------------

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return char

    def eat(self, expected: str) -> None:
        if self.peek() != expected:
            raise self.error(f"expected {expected!r}")
        self.pos += 1

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ParsedPattern:
        anchored = False
        if self.peek() == "^":
            anchored = True
            self.pos += 1
        ast = self.alternation()
        if self.pos != len(self.pattern):
            raise self.error("unbalanced ')' or trailing input")
        return ParsedPattern(ast=ast, anchored=anchored, source=self.pattern)

    def alternation(self) -> Node:
        branches = [self.concatenation()]
        while self.peek() == "|":
            self.pos += 1
            branches.append(self.concatenation())
        node = branches[0]
        for branch in branches[1:]:
            node = Alt(node, branch)
        return node

    def concatenation(self) -> Node:
        parts: list[Node] = []
        while True:
            char = self.peek()
            if char is None or char in "|)":
                break
            parts.append(self.quantified())
        if not parts:
            return Empty()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def quantified(self) -> Node:
        atom = self.atom()
        while True:
            char = self.peek()
            if char == "*":
                self.pos += 1
                atom = Star(atom)
            elif char == "+":
                self.pos += 1
                atom = Plus(atom)
            elif char == "?":
                self.pos += 1
                atom = Optional(atom)
            elif char == "{":
                atom = self.bounded(atom)
            else:
                return atom

    def bounded(self, atom: Node) -> Node:
        self.eat("{")
        low = self.number()
        high: int | None
        if self.peek() == ",":
            self.pos += 1
            if self.peek() == "}":
                high = None
            else:
                high = self.number()
        else:
            high = low
        self.eat("}")
        if high is not None and high < low:
            raise self.error(f"bad repetition bounds {{{low},{high}}}")
        return Repeat(atom, low, high)

    def number(self) -> int:
        digits = ""
        while (char := self.peek()) is not None and char.isdigit():
            digits += self.take()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    def atom(self) -> Node:
        char = self.peek()
        if char == "(":
            self.pos += 1
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2
            inner = self.alternation()
            self.eat(")")
            return inner
        if char == "[":
            return Literal(self.char_class())
        if char == ".":
            self.pos += 1
            return Literal(CharClass.full())
        if char == "\\":
            return Literal(self.escape())
        if char == "$":
            raise self.error("the '$' anchor is not supported")
        if char in "*+?{":
            raise self.error("quantifier with nothing to repeat")
        return Literal(CharClass.single(self.take()))

    def escape(self) -> CharClass:
        self.eat("\\")
        char = self.take()
        if char in _PREDEFINED:
            return _PREDEFINED[char]
        if char in _SIMPLE_ESCAPES:
            return CharClass([_SIMPLE_ESCAPES[char]])
        if char == "x":
            digits = self.take() + self.take()
            try:
                return CharClass([int(digits, 16)])
            except ValueError:
                raise self.error(f"bad hex escape \\x{digits}") from None
        if char in _SPECIAL or not char.isalnum():
            return CharClass.single(char)
        raise self.error(f"unknown escape \\{char}")

    def char_class(self) -> CharClass:
        self.eat("[")
        negated = False
        if self.peek() == "^":
            negated = True
            self.pos += 1
        klass = CharClass.empty()
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise self.error("unterminated character class")
            if char == "]" and not first:
                self.pos += 1
                break
            first = False
            low = self.class_atom()
            if (
                self.peek() == "-"
                and self.pos + 1 < len(self.pattern)
                and self.pattern[self.pos + 1] != "]"
            ):
                self.pos += 1
                high = self.class_atom()
                if len(low) != 1 or len(high) != 1:
                    raise self.error("class range endpoints must be single chars")
                klass = klass | CharClass.range(low.sample(), high.sample())
            else:
                klass = klass | low
        if negated:
            klass = klass.complement()
        if not klass:
            raise self.error("empty character class")
        return klass

    def class_atom(self) -> CharClass:
        if self.peek() == "\\":
            return self.escape()
        return CharClass.single(self.take())


def parse(pattern: str) -> ParsedPattern:
    """Parse ``pattern`` into a :class:`ParsedPattern`."""
    return _Parser(pattern).parse()

"""Spawn-safe worker entry points for :class:`ProcessPoolBackend`.

Everything in this module must be importable by a freshly spawned
interpreter (no closures, no lambdas, no state captured from the parent
process): ``multiprocessing``'s spawn start method pickles only the
function *reference* and its arguments, then re-imports this module in
the child.

Each task ships the full run payload (automaton, configuration, input)
alongside the segment plan, tagged with a per-run token.  Workers cache
the compiled scheduler keyed on that token, so within one run each
worker pays the :class:`CompiledAutomaton` build exactly once no matter
how many segments it executes.  Only the latest token is kept — pools
are reused across runs and automata, and a one-slot cache bounds worker
memory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.core.config import PAPConfig
from repro.core.scheduler import SegmentPlan, SegmentResult, SegmentScheduler
from repro.exec.faults import CRASH, HANG, STRAGGLER, raise_fault
from repro.obs.remote import RecordBatch, RecordingObserver
from repro.obs.tracer import NULL_OBSERVER

#: Test hook: when set in the environment, every worker task hard-exits
#: instead of running, simulating a crashed worker process.  Used by the
#: test suite to pin the backend's crash surfacing; never set it in
#: production.
CRASH_ENV = "REPRO_EXEC_TEST_CRASH"


@dataclass(frozen=True)
class RunPayload:
    """Everything a worker needs to reconstruct one run's scheduler."""

    automaton: Automaton
    config: PAPConfig
    path_independent: frozenset[int]
    data: bytes


@dataclass(frozen=True)
class SegmentTaskResult:
    """One executed segment plus worker-side wall accounting.

    ``batch`` is the worker's shipped telemetry
    (:class:`~repro.obs.remote.RecordBatch`) when the parent asked for
    capture; ``None`` otherwise, so un-observed runs pickle nothing
    extra across the pool.
    """

    result: SegmentResult
    wall_ns: int
    pid: int
    batch: RecordBatch | None = None


_cached_token: object = None
_cached_scheduler: SegmentScheduler | None = None
_cache_hits: int = 0
_cache_misses: int = 0


def _scheduler_for(
    token: object, payload: RunPayload
) -> tuple[SegmentScheduler, bool, int]:
    """The worker-local scheduler for ``token``, compiled on first use.

    Returns ``(scheduler, cache_hit, compile_wall_ns)`` so shipped
    batches can expose the one-slot cache behaviour — pool reuse across
    runs shows up as hits, alternating tokens as thrash.
    """
    global _cached_token, _cached_scheduler, _cache_hits, _cache_misses
    if _cached_scheduler is None or _cached_token != token:
        start = time.perf_counter_ns()
        _cached_scheduler = SegmentScheduler(
            CompiledAutomaton(payload.automaton),
            AutomatonAnalysis(payload.automaton),
            payload.config,
            payload.path_independent,
        )
        _cached_token = token
        _cache_misses += 1
        return _cached_scheduler, False, time.perf_counter_ns() - start
    _cache_hits += 1
    return _cached_scheduler, True, 0


def run_segment_task(
    token: object,
    payload: RunPayload,
    plan: SegmentPlan,
    unit_truth: dict[int, bool] | None,
    fiv_time: int | None,
    fault: tuple[str, float] | None = None,
    capture: bool = False,
) -> SegmentTaskResult:
    """Execute one segment in this worker process.

    The cycle-domain outcome is bit-identical to running the same
    :meth:`SegmentScheduler.run_segment` call in the parent: the
    scheduler is deterministic and the observer plays no part in the
    returned :class:`SegmentResult`.

    ``capture`` (set when the parent's observer is enabled) attaches a
    :class:`~repro.obs.remote.RecordingObserver` to the cached
    scheduler for this task only, and ships everything it saw back as
    ``SegmentTaskResult.batch``.  The observer is detached in a
    ``finally`` so a fault mid-segment never leaks recording into the
    next task's un-observed run.

    ``fault`` is an injected ``(kind, delay_seconds)`` drawn by the
    parent's :class:`~repro.exec.faults.FaultInjector` for *this*
    attempt: ``crash`` hard-exits the process (breaking the pool, as a
    real crash would), ``hang`` and ``straggler`` sleep their delay
    before executing (``hang`` is sized to trip the parent's dispatch
    timeout, ``straggler`` to finish late enough that hedging beats
    it), and every other kind raises its modeled transient error back
    across the pool.
    """
    if os.environ.get(CRASH_ENV):
        os._exit(3)
    if fault is not None:
        kind, delay_s = fault
        if kind == CRASH:
            os._exit(3)
        elif kind in (HANG, STRAGGLER):
            time.sleep(delay_s)
        else:
            raise_fault(kind, plan.segment.index)
    start = time.perf_counter_ns()
    scheduler, cache_hit, compile_wall_ns = _scheduler_for(token, payload)
    recorder: RecordingObserver | None = None
    if capture:
        recorder = RecordingObserver()
        scheduler.observer = recorder
    try:
        result = scheduler.run_segment(
            payload.data, plan, unit_truth=unit_truth, fiv_time=fiv_time
        )
    finally:
        if recorder is not None:
            scheduler.observer = NULL_OBSERVER
    batch = None
    if recorder is not None:
        batch = recorder.to_batch(
            compile_hit=cache_hit,
            compile_wall_ns=compile_wall_ns,
            compile_hits=_cache_hits,
            compile_misses=_cache_misses,
        )
    return SegmentTaskResult(
        result=result,
        wall_ns=time.perf_counter_ns() - start,
        pid=os.getpid(),
        batch=batch,
    )

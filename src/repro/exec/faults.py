"""Deterministic fault injection for execution backends.

Real parallel matching engines must tolerate partial failure, and the
PAP's per-chunk independence is exactly what makes re-execution of a
failed chunk cheap (PaREM and the Simultaneous-FA line make the same
observation).  This module provides the *controlled* failures used to
prove that: a :class:`FaultPlan` names which segments fail, how, and on
which attempts, and a :class:`FaultInjector` consumes the plan during
one run.  Everything is seeded and deterministic — given the same plan,
the same faults fire at the same (segment, attempt) coordinates on
every run, so recovered runs can be compared bit-exactly against
fault-free ones.

Fault kinds
-----------

``crash``
    The worker process hard-exits mid-segment (``os._exit``), breaking
    the pool.  The serial backend models it as an inline
    :class:`~repro.errors.WorkerCrashError`.
``hang``
    The worker sleeps ``hang_s`` before executing, tripping the
    per-segment dispatch timeout when one is configured.  The serial
    backend models it as an inline
    :class:`~repro.errors.SegmentTimeoutError` (an in-process call
    cannot be preempted).
``transient``
    A transient ``run_segment`` exception
    (:class:`~repro.errors.TransientSegmentError`).
``svc_exhaustion``
    State-vector-cache slot exhaustion mid-run, surfaced as a transient
    error (the modeled cache recovers on re-execution).
``fiv_write``
    The host fails to write the flow-invalidation vector for the
    segment; raised host-side *before* dispatch, so the retry re-derives
    the FIV inputs from the composed predecessor (the Section 3.4
    availability chain is re-walked, not guessed).
``straggler``
    The segment runs, but slowly: the worker sleeps ``straggler_s``
    before executing *and then completes normally*.  Unlike ``hang`` it
    is sized to finish well inside any dispatch timeout — it exists to
    exercise straggler *hedging* (speculative re-dispatch), not the
    deadline path.  The serial backend models it as an inline sleep.
``corrupt_checkpoint``
    A torn checkpoint write: the durability layer truncates that
    segment's checkpoint record mid-payload.  Drawn at checkpoint-write
    time (:meth:`FaultInjector.draw_checkpoint`), never at execution
    time — the run itself succeeds; what is under test is that the
    *next resume* drops the broken record and re-executes.

``crash`` and ``hang`` are *infrastructure* faults: they model worker
processes dying, so they stop firing once a run has degraded to
in-process execution (there are no workers left to kill).  The other
execution-time kinds fire wherever the segment executes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    SegmentTimeoutError,
    TransientSegmentError,
    WorkerCrashError,
)

CRASH = "crash"
HANG = "hang"
TRANSIENT = "transient"
SVC_EXHAUSTION = "svc_exhaustion"
FIV_WRITE = "fiv_write"
STRAGGLER = "straggler"
CORRUPT_CHECKPOINT = "corrupt_checkpoint"

#: Every spellable fault kind, in documentation order.
FAULT_KINDS = (
    CRASH,
    HANG,
    TRANSIENT,
    SVC_EXHAUSTION,
    FIV_WRITE,
    STRAGGLER,
    CORRUPT_CHECKPOINT,
)

#: Infrastructure-level kinds: they model worker processes failing and
#: are suppressed after a serial downgrade (no workers remain).
WORKER_KINDS = frozenset({CRASH, HANG})

#: Kinds applied host-side before dispatch (never shipped to a worker).
HOST_KINDS = frozenset({FIV_WRITE})

#: Kinds drawn at checkpoint-*write* time, not execution time: they
#: corrupt durability records and are invisible to the execution path
#: (see :meth:`FaultInjector.draw_checkpoint`).
CHECKPOINT_KINDS = frozenset({CORRUPT_CHECKPOINT})


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: ``segment`` fails with ``kind`` on its first
    ``times`` attempts, then succeeds."""

    segment: int
    kind: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if self.segment < 0:
            raise ConfigurationError("fault segment index must be >= 0")
        if self.times < 1:
            raise ConfigurationError("fault times must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run.

    Two layers compose:

    * explicit :class:`FaultSpec` entries pin faults to exact
      (segment, attempt) coordinates;
    * a seeded layer draws one-shot faults: each segment independently
      fails its *first* attempt with probability ``rate``, the kind
      drawn from ``kinds``.  The draw depends only on ``(seed,
      segment)`` — never on wall clock or interpreter hash state — so a
      plan fires identically on every run and machine.

    Seeded faults are deliberately first-attempt-only: any non-zero
    retry budget recovers them, which is what the chaos CI job relies
    on to assert that recovery does not move cycle fidelity.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    rate: float = 0.0
    kinds: tuple[str, ...] = (TRANSIENT,)
    hang_s: float = 30.0
    """Seconds an injected ``hang`` sleeps in the worker before
    executing; pair it with a smaller per-segment timeout."""
    straggler_s: float = 0.5
    """Seconds an injected ``straggler`` delays before executing
    normally; size it well under any dispatch timeout so the hedging
    path — not the deadline path — is what recovers it."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("fault rate must be within [0, 1]")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
        if not self.kinds:
            raise ConfigurationError("seeded fault plan needs >= 1 kind")
        if self.hang_s <= 0:
            raise ConfigurationError("hang_s must be positive")
        if self.straggler_s <= 0:
            raise ConfigurationError("straggler_s must be positive")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI spec grammar.

        Comma-separated tokens, each either ``key=value`` (``seed``,
        ``rate``, ``kinds`` — ``+``-separated — ``hang``, and
        ``straggler``) or an explicit fault ``SEGMENT:KIND[*TIMES]``::

            seed=7,rate=0.25,kinds=crash+transient
            2:transient,3:crash*2
            seed=7,rate=0.1,1:fiv_write
            straggler=0.4,2:straggler
        """
        specs: list[FaultSpec] = []
        seed: int | None = None
        rate = 0.0
        kinds: tuple[str, ...] = (TRANSIENT,)
        hang_s = 30.0
        straggler_s = 0.5
        try:
            for token in filter(None, (t.strip() for t in text.split(","))):
                if "=" in token:
                    key, _, value = token.partition("=")
                    if key == "seed":
                        seed = int(value)
                    elif key == "rate":
                        rate = float(value)
                    elif key == "kinds":
                        kinds = tuple(filter(None, value.split("+")))
                    elif key == "hang":
                        hang_s = float(value)
                    elif key == "straggler":
                        straggler_s = float(value)
                    else:
                        raise ConfigurationError(
                            f"unknown fault-plan key {key!r} "
                            "(expected seed, rate, kinds, hang, "
                            "or straggler)"
                        )
                    continue
                if ":" not in token:
                    raise ConfigurationError(
                        f"bad fault token {token!r} "
                        "(expected SEGMENT:KIND[*TIMES] or key=value)"
                    )
                seg_text, _, kind_text = token.partition(":")
                times = 1
                if "*" in kind_text:
                    kind_text, _, times_text = kind_text.partition("*")
                    times = int(times_text)
                specs.append(
                    FaultSpec(segment=int(seg_text), kind=kind_text, times=times)
                )
        except ValueError as error:
            raise ConfigurationError(
                f"bad fault plan {text!r}: {error}"
            ) from error
        if seed is None and rate > 0.0:
            raise ConfigurationError(
                "a fault rate needs a seed (pass seed=<int>)"
            )
        return cls(
            specs=tuple(specs),
            seed=seed,
            rate=rate,
            kinds=kinds,
            hang_s=hang_s,
            straggler_s=straggler_s,
        )

    def fault_at(self, segment: int, attempt: int) -> str | None:
        """The execution fault firing at ``(segment, attempt)``, if any.

        Checkpoint-write kinds never fire here — they have their own
        draw path (:meth:`FaultInjector.draw_checkpoint`), so a
        ``corrupt_checkpoint`` spec or seeded draw is transparent to
        the execution attempt sequence.
        """
        for spec in self.specs:
            if spec.kind in CHECKPOINT_KINDS:
                continue
            if spec.segment == segment and attempt <= spec.times:
                return spec.kind
        if self.seed is not None and self.rate > 0.0 and attempt == 1:
            rng = random.Random(f"{self.seed}:{segment}")
            if rng.random() < self.rate:
                kind = self.kinds[rng.randrange(len(self.kinds))]
                if kind not in CHECKPOINT_KINDS:
                    return kind
        return None

    def checkpoint_fault_at(self, segment: int, write: int) -> str | None:
        """The checkpoint fault firing at ``(segment, write)``, if any."""
        for spec in self.specs:
            if (
                spec.kind in CHECKPOINT_KINDS
                and spec.segment == segment
                and write <= spec.times
            ):
                return spec.kind
        if self.seed is not None and self.rate > 0.0 and write == 1:
            checkpoint_kinds = [k for k in self.kinds if k in CHECKPOINT_KINDS]
            if checkpoint_kinds:
                rng = random.Random(f"{self.seed}:ckpt:{segment}")
                if rng.random() < self.rate:
                    return checkpoint_kinds[
                        rng.randrange(len(checkpoint_kinds))
                    ]
        return None

    def to_dict(self) -> dict:
        """Plain-data view for run records and artifact parameters."""
        return {
            "specs": [
                {"segment": s.segment, "kind": s.kind, "times": s.times}
                for s in self.specs
            ],
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "hang_s": self.hang_s,
            "straggler_s": self.straggler_s,
        }


class FaultInjector:
    """Stateful consumer of one :class:`FaultPlan` during one run.

    The injector owns the per-segment attempt counters, so call
    :meth:`draw` exactly once per execution attempt.  Every fault it
    hands out is recorded in :attr:`injected` for the run's
    :class:`~repro.exec.resilience.RunHealth`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: list[dict] = []
        self._attempts: dict[int, int] = {}
        self._checkpoint_writes: dict[int, int] = {}

    def draw(self, segment: int, *, infrastructure: bool = True) -> str | None:
        """The fault (if any) for this segment's next attempt.

        ``infrastructure=False`` marks in-process execution after a
        serial downgrade: worker-level kinds (crash, hang) no longer
        apply there, but segment-level kinds still fire.
        """
        attempt = self._attempts.get(segment, 0) + 1
        self._attempts[segment] = attempt
        kind = self.plan.fault_at(segment, attempt)
        if kind is None:
            return None
        if kind in WORKER_KINDS and not infrastructure:
            return None
        self.injected.append(
            {"segment": segment, "attempt": attempt, "kind": kind}
        )
        return kind

    def draw_checkpoint(self, segment: int) -> bool:
        """One draw for this segment's checkpoint write (True = corrupt).

        Separate from :meth:`draw` on purpose: checkpoint faults are
        write-side, so drawing them must not consume (or shift) the
        execution attempt sequence — a run with only
        ``corrupt_checkpoint`` planned executes exactly like a clean
        one and differs only in what lands on disk.
        """
        write = self._checkpoint_writes.get(segment, 0) + 1
        self._checkpoint_writes[segment] = write
        kind = self.plan.checkpoint_fault_at(segment, write)
        if kind is None:
            return False
        self.injected.append(
            {"segment": segment, "attempt": write, "kind": kind}
        )
        return True


def raise_fault(kind: str, segment: int) -> None:
    """Raise the error an injected ``kind`` fault models.

    Used by the serial backend for every kind (a single process can
    only *model* crashes and hangs) and by workers for the segment-level
    kinds; real crash/hang behaviour in workers lives in
    :mod:`repro.exec.worker`.
    """
    if kind == CRASH:
        raise WorkerCrashError(
            f"injected worker crash while executing segment {segment}"
        )
    if kind == HANG:
        raise SegmentTimeoutError(
            f"injected hang: segment {segment} exceeded its dispatch timeout"
        )
    if kind == SVC_EXHAUSTION:
        raise TransientSegmentError(
            f"injected SVC slot exhaustion mid-run in segment {segment}",
            kind=SVC_EXHAUSTION,
            segment=segment,
        )
    if kind == FIV_WRITE:
        raise TransientSegmentError(
            f"injected FIV write failure for segment {segment}",
            kind=FIV_WRITE,
            segment=segment,
        )
    if kind == STRAGGLER:
        # Backends model stragglers as a delay, not an error; reaching
        # here means a call site forgot to — surface it as retryable so
        # the run still completes.
        raise TransientSegmentError(
            f"unmodeled straggler fault in segment {segment}",
            kind=STRAGGLER,
            segment=segment,
        )
    raise TransientSegmentError(
        f"injected transient fault in segment {segment}",
        kind=TRANSIENT,
        segment=segment,
    )

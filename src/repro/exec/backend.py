"""Pluggable execution backends: where segments actually run.

:class:`ParallelAutomataProcessor.run` models the paper's cycle domain
faithfully, but *how the host drives the simulation* is a separate
concern: the seed implementation ran every segment serially inside one
Python process, so wall-clock numbers understated what simultaneous
segment execution buys.  This module extracts that choice behind
:class:`ExecutionBackend`:

``SerialBackend``
    The extracted original behaviour — one in-process
    :class:`SegmentScheduler`, segments executed in index order.

``ProcessPoolBackend``
    Host-parallel execution: each ``run_segment`` call is dispatched to
    a worker process via :class:`concurrent.futures.ProcessPoolExecutor`
    (spawn-safe — see :mod:`repro.exec.worker`).  Dispatch is
    dependency-aware:

    * with ``use_fiv=False`` every enumerated segment is independent of
      its predecessors' *execution* (truth only matters at composition
      time), so all segments run concurrently;
    * with ``use_fiv=True`` a segment's flow-invalidation inputs
      (``unit_truth``, ``fiv_time``) come from its predecessor's
      completed, composed result, so the pool pipelines the Section 3.4
      availability chain — each segment is dispatched the moment its
      inputs resolve.

**Bit-exactness contract**: for any automaton, input, and configuration,
every backend produces identical cycle-domain ``SegmentResult`` metrics,
identical composition outcomes, and identical report sets.  Backends
change *host wall-clock* only; the property-based equivalence tests in
``tests/exec/`` pin this.

Host-side composition (truth decisions, ``T_cpu`` decode accounting)
always runs in the parent process — it is the host's job in the paper,
and it is what produces each segment's ``previous_matched`` dependency.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.core.composition import (
    ComposedSegment,
    compose_segment,
    unit_truth_map,
)
from repro.core.config import PAPConfig
from repro.core.scheduler import SegmentPlan, SegmentResult, SegmentScheduler
from repro.errors import ConfigurationError, ExecutionError, ReproError
from repro.exec.worker import RunPayload, run_segment_task
from repro.host.decode import false_path_decode_cycles
from repro.obs.tracer import NULL_OBSERVER, TRACK_HOST, Observer

#: Track name for backend dispatch spans in :mod:`repro.obs` traces.
TRACK_EXEC = "exec"

#: The spellable backend names accepted by :func:`resolve_backend` (and
#: the CLI's ``--backend`` flag).
BACKEND_NAMES = ("serial", "process")


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend needs to execute one planned input."""

    automaton: Automaton
    compiled: CompiledAutomaton
    analysis: AutomatonAnalysis
    config: PAPConfig
    path_independent: frozenset[int]
    observer: Observer = NULL_OBSERVER


@dataclass(frozen=True)
class SegmentOutcome:
    """One segment's execution result plus its host-side composition."""

    result: SegmentResult
    composed: ComposedSegment
    decode_cycles: int
    """``T_cpu`` for this segment (Figure 11), charged on the
    availability chain by the orchestrator when actually consumed."""


class ExecutionBackend:
    """Strategy interface: run all segments of one planned input.

    Subclasses implement :meth:`execute`; the shared helpers below keep
    the host-side dependency chain (unit truth, FIV timing, composition)
    identical across backends, which is what makes the bit-exactness
    contract cheap to uphold.
    """

    name = "abstract"

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        """Run every segment and compose each result, in index order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- shared host-side steps -------------------------------------------

    @staticmethod
    def _segment_inputs(
        ctx: ExecutionContext,
        plan: SegmentPlan,
        previous_matched: frozenset[int],
        fiv_chain: int,
    ) -> tuple[dict[int, bool], int | None]:
        """A segment's FIV inputs, resolved from its predecessor."""
        if plan.is_golden:
            return {}, None
        truth = unit_truth_map(plan.flows, previous_matched)
        fiv_time = (
            fiv_chain + ctx.config.timing.fiv_transfer_cycles
            if ctx.config.use_fiv
            else None
        )
        return truth, fiv_time

    @staticmethod
    def _compose(
        ctx: ExecutionContext,
        result: SegmentResult,
        truth: dict[int, bool],
    ) -> SegmentOutcome:
        """Host composition of one finished segment (always in-process)."""
        obs = ctx.observer
        span = obs.begin_span(
            f"compose[{result.plan.segment.index}]", track=TRACK_HOST
        )
        composed = compose_segment(result, truth, ctx.analysis)
        obs.end_span(
            span,
            args={
                "true_events": composed.true_events,
                "raw_events": composed.raw_events,
            },
        )
        decode = false_path_decode_cycles(
            max(1, result.metrics.flows_at_end), timing=ctx.config.timing
        )
        return SegmentOutcome(
            result=result, composed=composed, decode_cycles=decode
        )


class SerialBackend(ExecutionBackend):
    """The original in-process behaviour, extracted verbatim from
    ``ParallelAutomataProcessor.run``: one scheduler, segments executed
    in index order, composition interleaved segment to segment."""

    name = "serial"

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        obs = ctx.observer
        if obs.enabled and plans:
            obs.metrics.gauge("exec.workers").set(1)
        scheduler = SegmentScheduler(
            ctx.compiled,
            ctx.analysis,
            ctx.config,
            ctx.path_independent,
            observer=obs,
        )
        outcomes: list[SegmentOutcome] = []
        previous_matched: frozenset[int] = frozenset()
        fiv_chain = 0
        for plan in plans:
            truth, fiv_time = self._segment_inputs(
                ctx, plan, previous_matched, fiv_chain
            )
            obs.metrics.counter("exec.dispatches").inc()
            if plan.is_golden:
                result = scheduler.run_segment(data, plan)
            else:
                result = scheduler.run_segment(
                    data, plan, unit_truth=truth, fiv_time=fiv_time
                )
            outcome = self._compose(ctx, result, truth)
            fiv_chain = (
                max(fiv_chain, result.metrics.finish_cycles)
                + outcome.decode_cycles
            )
            previous_matched = outcome.composed.final_matched
            outcomes.append(outcome)
        return outcomes


class ProcessPoolBackend(ExecutionBackend):
    """Host-parallel segment execution on a process pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the host CPU count.
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"spawn"`` — the
        only method safe on every platform, and the one the payload
        serialization is designed for.  ``"fork"`` works on POSIX and
        skips child interpreter start-up.

    The pool is created lazily on first use and *reused across runs* (a
    warmup pass through :func:`repro.perf.measure.measure_wall` therefore
    also warms the pool), so callers owning a backend instance should
    :meth:`close` it — or use it as a context manager — when done.
    """

    name = "process"

    def __init__(
        self, workers: int | None = None, *, mp_context: str = "spawn"
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("process backend needs >= 1 worker")
        self.workers = workers if workers is not None else os.cpu_count() or 1
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._run_counter = 0

    # -- pool lifecycle ---------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._mp_context),
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- dispatch ---------------------------------------------------------

    def _submit(
        self,
        ctx: ExecutionContext,
        token: object,
        payload: RunPayload,
        plan: SegmentPlan,
        truth: dict[int, bool] | None,
        fiv_time: int | None,
    ) -> tuple[Future, int]:
        obs = ctx.observer
        obs.metrics.counter("exec.dispatches").inc()
        span = obs.begin_span(
            f"dispatch[{plan.segment.index}]",
            track=TRACK_EXEC,
            args={
                "kind": "golden" if plan.is_golden else "enumerated",
                "flows": len(plan.flows),
            },
        )
        try:
            future = self._pool().submit(
                run_segment_task, token, payload, plan, truth, fiv_time
            )
        except BrokenProcessPool as error:
            self.close()
            raise ExecutionError(
                "process backend could not dispatch segment "
                f"{plan.segment.index}: worker pool is broken ({error})"
            ) from error
        return future, span

    def _collect(
        self,
        ctx: ExecutionContext,
        future: Future,
        span: int,
        plan: SegmentPlan,
    ) -> SegmentResult:
        obs = ctx.observer
        index = plan.segment.index
        try:
            task_result = future.result()
        except BrokenProcessPool as error:
            self.close()
            raise ExecutionError(
                f"process backend worker died while executing segment "
                f"{index} (pool broken: {error}); the run cannot be "
                "composed — rerun with backend='serial' to bisect"
            ) from error
        except ReproError:
            raise
        except Exception as error:  # noqa: BLE001 — worker errors vary
            self.close()
            raise ExecutionError(
                f"segment {index} failed in worker process: {error!r}"
            ) from error
        obs.end_span(
            span,
            args={
                "pid": task_result.pid,
                "worker_wall_ms": task_result.wall_ns / 1e6,
            },
        )
        return task_result.result

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        if not plans:
            return []
        obs = ctx.observer
        if obs.enabled:
            obs.metrics.gauge("exec.workers").set(self.workers)
        self._run_counter += 1
        token = (id(self), self._run_counter)
        payload = RunPayload(
            automaton=ctx.automaton,
            config=ctx.config,
            path_independent=ctx.path_independent,
            data=data,
        )
        outcomes: list[SegmentOutcome] = []
        previous_matched: frozenset[int] = frozenset()
        if ctx.config.use_fiv:
            # Section 3.4 availability chain: segment j+1's FIV inputs
            # need segment j's composed result, so dispatch pipelines
            # along the chain — each segment enters the pool the moment
            # its inputs resolve.
            fiv_chain = 0
            for plan in plans:
                truth, fiv_time = self._segment_inputs(
                    ctx, plan, previous_matched, fiv_chain
                )
                future, span = self._submit(
                    ctx, token, payload, plan, truth, fiv_time
                )
                result = self._collect(ctx, future, span, plan)
                outcome = self._compose(ctx, result, truth)
                fiv_chain = (
                    max(fiv_chain, result.metrics.finish_cycles)
                    + outcome.decode_cycles
                )
                previous_matched = outcome.composed.final_matched
                outcomes.append(outcome)
            return outcomes
        # Without the FIV no segment's *execution* depends on another —
        # enumeration truth only matters at composition time — so every
        # segment runs concurrently and composition chains afterwards.
        pending = [
            self._submit(ctx, token, payload, plan, None, None)
            for plan in plans
        ]
        results = [
            self._collect(ctx, future, span, plan)
            for (future, span), plan in zip(pending, plans)
        ]
        for plan, result in zip(plans, results):
            truth = (
                {}
                if plan.is_golden
                else unit_truth_map(plan.flows, previous_matched)
            )
            outcome = self._compose(ctx, result, truth)
            previous_matched = outcome.composed.final_matched
            outcomes.append(outcome)
        return outcomes


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    *,
    workers: int | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (instance, name, or ``None``) into an instance.

    ``None`` and ``"serial"`` yield a fresh :class:`SerialBackend`;
    ``"process"`` yields a :class:`ProcessPoolBackend` with ``workers``.
    An existing instance passes through untouched (``workers`` must then
    be ``None`` — the instance already owns its pool size).
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None:
            raise ConfigurationError(
                "workers cannot be overridden on an existing backend "
                "instance; construct the backend with the desired count"
            )
        return backend
    if backend is None or backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessPoolBackend(workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {backend!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)})"
    )

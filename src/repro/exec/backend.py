"""Pluggable execution backends: where segments actually run.

:class:`ParallelAutomataProcessor.run` models the paper's cycle domain
faithfully, but *how the host drives the simulation* is a separate
concern: the seed implementation ran every segment serially inside one
Python process, so wall-clock numbers understated what simultaneous
segment execution buys.  This module extracts that choice behind
:class:`ExecutionBackend`:

``SerialBackend``
    The extracted original behaviour — one in-process
    :class:`SegmentScheduler`, segments executed in index order.

``ProcessPoolBackend``
    Host-parallel execution: each ``run_segment`` call is dispatched to
    a worker process via :class:`concurrent.futures.ProcessPoolExecutor`
    (spawn-safe — see :mod:`repro.exec.worker`).  Dispatch is
    dependency-aware:

    * with ``use_fiv=False`` every enumerated segment is independent of
      its predecessors' *execution* (truth only matters at composition
      time), so all segments run concurrently;
    * with ``use_fiv=True`` a segment's flow-invalidation inputs
      (``unit_truth``, ``fiv_time``) come from its predecessor's
      completed, composed result, so the pool pipelines the Section 3.4
      availability chain — each segment is dispatched the moment its
      inputs resolve.

Distributed execution made segments *fallible*, so both backends wrap
each segment in the :mod:`repro.exec.resilience` recovery driver: a
failed attempt (worker crash, dispatch timeout, transient error —
injected or real) is re-executed under the run's
:class:`~repro.exec.resilience.RetryPolicy`, and after
``downgrade_after`` consecutive process-backend failures the process
backend *degrades gracefully* to in-process execution for the
remaining segments instead of failing the run.  Re-dispatch is ordered:
a retried segment re-enters the Section 3.4 availability chain with
the same composed-predecessor inputs, so recovery is bit-exact.

**Bit-exactness contract**: for any automaton, input, and configuration,
every backend — including any recovered or degraded run — produces
identical cycle-domain ``SegmentResult`` metrics, identical composition
outcomes, and identical report sets.  Backends change *host wall-clock*
only; the property-based equivalence tests in ``tests/exec/`` pin this.

Host-side composition (truth decisions, ``T_cpu`` decode accounting)
always runs in the parent process — it is the host's job in the paper,
and it is what produces each segment's ``previous_matched`` dependency.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.core.composition import (
    ComposedSegment,
    compose_segment,
    unit_truth_map,
)
from repro.core.config import PAPConfig
from repro.core.scheduler import SegmentPlan, SegmentResult, SegmentScheduler
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    RETRYABLE_ERRORS,
    ReproError,
    SegmentTimeoutError,
    WorkerCrashError,
)
from repro.exec.durability import (
    CheckpointRun,
    CircuitBreaker,
    HedgePolicy,
)
from repro.exec.faults import (
    HANG,
    HOST_KINDS,
    STRAGGLER,
    FaultInjector,
    raise_fault,
)
from repro.exec.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RunHealth,
    TRACK_EXEC,
    run_with_retry,
)
from repro.exec.worker import RunPayload, run_segment_task
from repro.host.decode import false_path_decode_cycles
from repro.obs.phases import PHASE_COMPOSE
from repro.obs.tracer import NULL_OBSERVER, TRACK_HOST, Observer

#: The spellable backend names accepted by :func:`resolve_backend` (and
#: the CLI's ``--backend`` flag).
BACKEND_NAMES = ("serial", "process", "vector")


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend needs to execute one planned input."""

    automaton: Automaton
    compiled: CompiledAutomaton
    analysis: AutomatonAnalysis
    config: PAPConfig
    path_independent: frozenset[int]
    observer: Observer = NULL_OBSERVER
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    injector: FaultInjector | None = None
    health: RunHealth = field(default_factory=RunHealth)
    checkpoint: CheckpointRun | None = None
    """Durable segment-result store for this run (``None`` = no
    checkpointing).  Backends consult it before executing a segment and
    write through after each success (see :mod:`repro.exec.durability`)."""
    max_inflight: int | None = None
    """Admission-guard bound on concurrently in-flight segment
    dispatches (``None`` = unbounded).  Consumed by the process
    backend's independent (no-FIV) path, which otherwise prefetches
    every segment at once; serial execution is inherently one segment
    at a time."""


@dataclass(frozen=True)
class SegmentOutcome:
    """One segment's execution result plus its host-side composition."""

    result: SegmentResult
    composed: ComposedSegment
    decode_cycles: int
    """``T_cpu`` for this segment (Figure 11), charged on the
    availability chain by the orchestrator when actually consumed."""


def _draw_fault(
    ctx: ExecutionContext, index: int, *, infrastructure: bool = True
) -> str | None:
    """One fault draw for this segment's next attempt (None = clean)."""
    if ctx.injector is None:
        return None
    kind = ctx.injector.draw(index, infrastructure=infrastructure)
    if kind is not None:
        obs = ctx.observer
        obs.metrics.counter("exec.faults_injected").inc()
        if obs.enabled:
            obs.instant(
                "fault-injected",
                track=TRACK_EXEC,
                args={"segment": index, "kind": kind},
            )
    return kind


class ExecutionBackend:
    """Strategy interface: run all segments of one planned input.

    Subclasses implement :meth:`execute`; the shared helpers below keep
    the host-side dependency chain (unit truth, FIV timing, composition)
    identical across backends, which is what makes the bit-exactness
    contract cheap to uphold.
    """

    name = "abstract"

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        """Run every segment and compose each result, in index order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pools).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- shared host-side steps -------------------------------------------

    @staticmethod
    def _segment_inputs(
        ctx: ExecutionContext,
        plan: SegmentPlan,
        previous_matched: frozenset[int],
        fiv_chain: int,
    ) -> tuple[dict[int, bool], int | None]:
        """A segment's FIV inputs, resolved from its predecessor."""
        if plan.is_golden:
            return {}, None
        truth = unit_truth_map(plan.flows, previous_matched)
        fiv_time = (
            fiv_chain + ctx.config.timing.fiv_transfer_cycles
            if ctx.config.use_fiv
            else None
        )
        return truth, fiv_time

    @staticmethod
    def _compose(
        ctx: ExecutionContext,
        result: SegmentResult,
        truth: dict[int, bool],
    ) -> SegmentOutcome:
        """Host composition of one finished segment (always in-process)."""
        obs = ctx.observer
        span = obs.begin_span(
            f"compose[{result.plan.segment.index}]", track=TRACK_HOST
        )
        phases = obs.phases
        if phases.enabled:
            wall0 = perf_counter_ns()
            composed = compose_segment(result, truth, ctx.analysis)
            phases.add(
                PHASE_COMPOSE,
                result.plan.segment.index,
                perf_counter_ns() - wall0,
            )
        else:
            composed = compose_segment(result, truth, ctx.analysis)
        obs.end_span(
            span,
            args={
                "true_events": composed.true_events,
                "raw_events": composed.raw_events,
            },
        )
        decode = false_path_decode_cycles(
            max(1, result.metrics.flows_at_end), timing=ctx.config.timing
        )
        return SegmentOutcome(
            result=result, composed=composed, decode_cycles=decode
        )

    # -- durability (shared write-through checkpoint plumbing) ------------

    @staticmethod
    def _checkpoint_load(
        ctx: ExecutionContext, plan: SegmentPlan
    ) -> SegmentResult | None:
        """This segment's proven result, when the run has one on disk."""
        if ctx.checkpoint is None:
            return None
        result = ctx.checkpoint.load(plan)
        if result is None:
            return None
        obs = ctx.observer
        obs.metrics.counter("exec.checkpoint.hits").inc()
        if obs.enabled:
            obs.instant(
                "checkpoint-hit",
                track=TRACK_EXEC,
                args={"segment": plan.segment.index},
            )
        return result

    @staticmethod
    def _checkpoint_store(
        ctx: ExecutionContext, plan: SegmentPlan, result: SegmentResult
    ) -> None:
        """Write one completed segment through to the checkpoint file."""
        if ctx.checkpoint is None:
            return
        corrupt = (
            ctx.injector.draw_checkpoint(plan.segment.index)
            if ctx.injector is not None
            else False
        )
        ctx.checkpoint.record(plan, result, corrupt=corrupt)
        obs = ctx.observer
        obs.metrics.counter("exec.checkpoint.writes").inc()
        if obs.enabled:
            obs.instant(
                "checkpoint-write",
                track=TRACK_EXEC,
                args={"segment": plan.segment.index, "corrupt": corrupt},
            )


class SerialBackend(ExecutionBackend):
    """The original in-process behaviour, extracted verbatim from
    ``ParallelAutomataProcessor.run``: one scheduler, segments executed
    in index order, composition interleaved segment to segment.

    Recovery: retryable failures (which in-process means injected
    faults modeled as their matching errors — a single process can only
    *model* worker crashes and hangs) re-execute the segment under the
    run's :class:`~repro.exec.resilience.RetryPolicy`.  Re-execution is
    deterministic, so a recovered run is bit-exact.
    """

    name = "serial"
    #: Flow-stepping strategy handed to the scheduler (see
    #: :data:`repro.core.scheduler.STRATEGY_NAMES`).
    strategy = "set"

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        obs = ctx.observer
        if obs.enabled and plans:
            obs.metrics.gauge("exec.workers").set(1)
        scheduler = SegmentScheduler(
            ctx.compiled,
            ctx.analysis,
            ctx.config,
            ctx.path_independent,
            observer=obs,
            strategy=self.strategy,
        )
        outcomes: list[SegmentOutcome] = []
        previous_matched: frozenset[int] = frozenset()
        fiv_chain = 0
        for plan in plans:
            truth, fiv_time = self._segment_inputs(
                ctx, plan, previous_matched, fiv_chain
            )
            index = plan.segment.index

            def attempt(
                plan: SegmentPlan = plan,
                truth: dict[int, bool] = truth,
                fiv_time: int | None = fiv_time,
                index: int = index,
            ) -> SegmentResult:
                fault = _draw_fault(ctx, index)
                if fault == STRAGGLER:
                    # In-process model of a slow segment: delay, then
                    # execute normally (there is nothing to hedge
                    # against without a pool).
                    assert ctx.injector is not None
                    time.sleep(ctx.injector.plan.straggler_s)
                elif fault is not None:
                    raise_fault(fault, index)
                obs.metrics.counter("exec.dispatches").inc()
                if plan.is_golden:
                    return scheduler.run_segment(data, plan)
                return scheduler.run_segment(
                    data, plan, unit_truth=truth, fiv_time=fiv_time
                )

            result = self._checkpoint_load(ctx, plan)
            if result is None:
                result = run_with_retry(
                    ctx.retry, ctx.health, obs, index, attempt
                )
                self._checkpoint_store(ctx, plan, result)
            outcome = self._compose(ctx, result, truth)
            fiv_chain = (
                max(fiv_chain, result.metrics.finish_cycles)
                + outcome.decode_cycles
            )
            previous_matched = outcome.composed.final_matched
            outcomes.append(outcome)
        return outcomes


class VectorBackend(SerialBackend):
    """In-process execution on the bit-parallel vector strategy.

    Identical host topology to :class:`SerialBackend` — one scheduler,
    segments in index order — but every flow steps through
    :class:`repro.automata.vector.VectorFlowExecution`: packed-bitset
    state vectors advanced by precompiled per-symbol-class transition
    tables instead of per-state set walks.  Cycle-domain results are
    bit-exact with the serial backend (the ``tests/exec`` property
    corpus pins fingerprints and BENCH cycle metrics); only host
    wall-clock changes.  The win is largest on transition-bound
    automata with wide active sets (Levenshtein, Hamming) and can
    invert on large sparse-active automata — see the crossover notes in
    :mod:`repro.automata.vector`.
    """

    name = "vector"
    strategy = "vector"


class _RecoveryState:
    """Per-run degradation tracking for :class:`ProcessPoolBackend`.

    Counts *consecutive* failed dispatch attempts across the run; when
    they reach the policy's ``downgrade_after``, the run degrades to
    in-process execution for every remaining attempt and segment — the
    worker pool is torn down and a lazily built local scheduler takes
    over, so the run finishes instead of failing.

    Two escalation paths run alongside (see
    :mod:`repro.exec.durability`): consecutive *infrastructure*
    failures step the rebuilt pool down (n → n/2 → … → 1) before the
    downgrade fires, and they feed the backend's circuit breaker —
    which, once open, downgrades immediately with a breaker reason
    code instead of letting the pool be rebuilt again.

    Also owns the run's completed-dispatch wall samples, the input to
    the straggler-hedging threshold.
    """

    def __init__(
        self, backend: "ProcessPoolBackend", ctx: ExecutionContext, data: bytes
    ) -> None:
        self.backend = backend
        self.ctx = ctx
        self.data = data
        self.consecutive = 0
        self.downgraded = False
        self.samples: list[float] = []
        self._scheduler: SegmentScheduler | None = None

    def scheduler(self) -> SegmentScheduler:
        if self._scheduler is None:
            ctx = self.ctx
            self._scheduler = SegmentScheduler(
                ctx.compiled,
                ctx.analysis,
                ctx.config,
                ctx.path_independent,
                observer=ctx.observer,
            )
        return self._scheduler

    def run_inline(
        self,
        plan: SegmentPlan,
        truth: dict[int, bool] | None,
        fiv_time: int | None,
    ) -> SegmentResult:
        """One post-downgrade in-process attempt (serial semantics).

        Worker-level faults (crash, hang) no longer apply — there are
        no workers — but segment-level faults still fire, and the
        enclosing retry loop still recovers them.
        """
        ctx = self.ctx
        index = plan.segment.index
        fault = _draw_fault(ctx, index, infrastructure=False)
        if fault == STRAGGLER:
            assert ctx.injector is not None
            time.sleep(ctx.injector.plan.straggler_s)
        elif fault is not None:
            raise_fault(fault, index)
        ctx.observer.metrics.counter("exec.dispatches").inc()
        if plan.is_golden:
            return self.scheduler().run_segment(self.data, plan)
        return self.scheduler().run_segment(
            self.data, plan, unit_truth=truth, fiv_time=fiv_time
        )

    def note_failure(self, plan: SegmentPlan, error: BaseException) -> None:
        self.consecutive += 1
        ctx = self.ctx
        infrastructure = isinstance(
            error, (WorkerCrashError, SegmentTimeoutError)
        )
        if infrastructure and not self.downgraded:
            self._step_down_workers(plan, error)
            breaker = self.backend.breaker
            if breaker is not None:
                opened = breaker.record_failure(error)
                self.backend._note_breaker(ctx, opened_at=plan, opened=opened)
                if opened and not self.downgraded:
                    # Fast-fail the rest of the run instead of another
                    # pool rebuild; later runs fast-fail up front until
                    # the cooldown half-opens the breaker.
                    self._downgrade(
                        plan, error, reason=f"breaker open: {breaker.reason}"
                    )
                    return
        limit = ctx.retry.downgrade_after
        if self.downgraded or limit is None or self.consecutive < limit:
            return
        self._downgrade(
            plan,
            error,
            reason=(
                f"{self.consecutive} consecutive process-backend failures "
                f"(last: {type(error).__name__})"
            ),
        )

    def _step_down_workers(
        self, plan: SegmentPlan, error: BaseException
    ) -> None:
        """Halve the rebuilt pool under repeated infrastructure failure.

        The first failure may be a one-off (one lost worker), so the
        rebuild keeps its size; from the second *consecutive* one on,
        re-dispatching at the same width is just re-arming the same
        failure — each further failure halves the next rebuild
        (n → n/2 → … → 1), and ``downgrade_after`` / the breaker take
        over from there.  Every step is recorded in RunHealth.
        """
        backend = self.backend
        if self.consecutive < 2 or backend._dispatch_workers <= 1:
            return
        stepped = max(1, backend._dispatch_workers // 2)
        backend._dispatch_workers = stepped
        ctx = self.ctx
        ctx.health.worker_steps.append(
            {
                "segment": plan.segment.index,
                "workers": stepped,
                "consecutive": self.consecutive,
                "error": type(error).__name__,
            }
        )
        obs = ctx.observer
        obs.metrics.counter("exec.worker_stepdowns").inc()
        if obs.enabled:
            obs.metrics.gauge("exec.workers").set(stepped)
            obs.instant(
                "worker-stepdown",
                track=TRACK_EXEC,
                args={
                    "segment": plan.segment.index,
                    "workers": stepped,
                    "consecutive_failures": self.consecutive,
                    "error": type(error).__name__,
                },
            )

    def _downgrade(
        self, plan: SegmentPlan, error: BaseException, *, reason: str
    ) -> None:
        self.downgraded = True
        ctx = self.ctx
        health = ctx.health
        health.downgraded = True
        health.downgraded_at_segment = plan.segment.index
        health.downgrade_reason = reason
        obs = ctx.observer
        obs.metrics.counter("exec.downgrades").inc()
        if obs.enabled:
            obs.instant(
                "backend-downgrade",
                track=TRACK_EXEC,
                args={
                    "segment": plan.segment.index,
                    "consecutive_failures": self.consecutive,
                    "error": type(error).__name__,
                    "reason": reason,
                },
            )
            obs.metrics.gauge("exec.workers").set(1)
        # Workers are no longer needed; reclaim them without waiting on
        # whatever broke them.
        self.backend._teardown(wait=False)

    def note_success(self) -> None:
        self.consecutive = 0
        breaker = self.backend.breaker
        if breaker is not None:
            was = breaker.state
            breaker.record_success()
            if was != breaker.state:
                self.backend._note_breaker(
                    self.ctx, opened_at=None, opened=False
                )


class ProcessPoolBackend(ExecutionBackend):
    """Host-parallel segment execution on a process pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the host CPU count.
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"spawn"`` — the
        only method safe on every platform, and the one the payload
        serialization is designed for.  ``"fork"`` works on POSIX and
        skips child interpreter start-up.

    The pool is created lazily on first use and *reused across runs* (a
    warmup pass through :func:`repro.perf.measure.measure_wall` therefore
    also warms the pool), so callers owning a backend instance should
    :meth:`close` it — or use it as a context manager — when done.

    Recovery: a broken pool (worker crash) or a tripped per-segment
    dispatch timeout tears the executor down *without waiting* (a hung
    worker cannot be joined) and the next dispatch — a retry of the
    failed segment or a later run on the same backend instance —
    lazily rebuilds a fresh pool, *stepped down* (n → n/2 → … → 1)
    under repeated consecutive infrastructure failures.  After
    ``downgrade_after`` consecutive failures the run degrades to
    in-process execution for the remaining segments (see
    :class:`_RecoveryState`).

    Durability (see :mod:`repro.exec.durability`): ``hedge`` enables
    straggler hedging — a dispatch outstanding past a MAD-based
    multiple of this run's completed dispatch walls is speculatively
    re-dispatched and the first result wins.  ``breaker`` attaches a
    circuit breaker over infrastructure failures — open, it fast-fails
    runs to in-process execution (with a RunHealth reason code)
    instead of rebuilding the pool per failure, until its cooldown
    admits a probe.  Both are bit-exactness-preserving: a hedge
    duplicate computes the identical pure function, and downgraded
    execution is the serial backend's.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        *,
        mp_context: str = "spawn",
        hedge: HedgePolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("process backend needs >= 1 worker")
        self.workers = workers if workers is not None else os.cpu_count() or 1
        self.hedge = hedge
        self.breaker = breaker
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._run_counter = 0
        self._dispatch_workers = self.workers

    # -- pool lifecycle ---------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._dispatch_workers,
                mp_context=multiprocessing.get_context(self._mp_context),
            )
        return self._executor

    def _teardown(self, *, wait: bool) -> None:
        """Discard the executor; the next :meth:`_pool` call rebuilds it.

        ``wait=False`` is mandatory on breakage/timeout paths: a broken
        or hung pool may never join, and a blocking shutdown would turn
        one lost worker into a lost run.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        self._teardown(wait=True)

    # -- breaker bookkeeping ----------------------------------------------

    def _note_breaker(
        self,
        ctx: ExecutionContext,
        *,
        opened_at: SegmentPlan | None,
        opened: bool,
    ) -> None:
        """Mirror the breaker's state into health, metrics, and ledger."""
        breaker = self.breaker
        assert breaker is not None
        health = ctx.health
        health.breaker_state = breaker.state
        health.breaker_reason = breaker.reason
        obs = ctx.observer
        obs.metrics.gauge("breaker.state").set(breaker.state_code)
        if opened:
            obs.metrics.counter("breaker.opens").inc()
        if obs.enabled:
            args: dict[str, object] = {"state": breaker.state}
            if opened_at is not None:
                args["segment"] = opened_at.segment.index
            if breaker.reason is not None:
                args["reason"] = breaker.reason
            obs.instant(
                "breaker-open" if opened else "breaker-state",
                track=TRACK_EXEC,
                args=args,
            )

    # -- dispatch ---------------------------------------------------------

    def _submit(
        self,
        ctx: ExecutionContext,
        token: object,
        payload: RunPayload,
        plan: SegmentPlan,
        truth: dict[int, bool] | None,
        fiv_time: int | None,
        fault: str | None = None,
    ) -> tuple[Future, int]:
        index = plan.segment.index
        if fault is not None and fault in HOST_KINDS:
            # Host-side faults (FIV-write failure) happen before any
            # dispatch: the FIV never reaches the segment.
            raise_fault(fault, index)
        obs = ctx.observer
        obs.metrics.counter("exec.dispatches").inc()
        span_args = {
            "kind": "golden" if plan.is_golden else "enumerated",
            "flows": len(plan.flows),
        }
        if obs.run_id is not None:
            # Correlate worker events with the run's ledger: every
            # dispatch span names the flight recorder's run id.
            span_args["run"] = obs.run_id
        span = obs.begin_span(
            f"dispatch[{index}]",
            track=TRACK_EXEC,
            args=span_args,
        )
        worker_fault = None
        if fault is not None and ctx.injector is not None:
            # hang and straggler both ship a sleep; only its magnitude
            # (relative to timeout/hedge thresholds) differs.
            plan_faults = ctx.injector.plan
            delay = (
                plan_faults.hang_s
                if fault == HANG
                else plan_faults.straggler_s
            )
            worker_fault = (fault, delay)
        try:
            future = self._pool().submit(
                run_segment_task,
                token,
                payload,
                plan,
                truth,
                fiv_time,
                worker_fault,
                # Capture worker-side telemetry only when someone is
                # listening; un-observed runs ship no extra pickles.
                obs.enabled,
            )
        except BrokenProcessPool as error:
            self._teardown(wait=False)
            raise WorkerCrashError(
                f"process backend could not dispatch segment {index}: "
                f"worker pool is broken ({error})"
            ) from error
        return future, span

    def _collect(
        self,
        ctx: ExecutionContext,
        future: Future,
        span: int,
        plan: SegmentPlan,
        *,
        redispatch: Callable[[], tuple[Future, int]] | None = None,
        state: "_RecoveryState | None" = None,
    ) -> SegmentResult:
        """Wait out one dispatch, hedging it if it straggles.

        With a :class:`HedgePolicy` attached and a ``redispatch``
        closure available, a dispatch still outstanding past the
        MAD-based threshold over this run's completed dispatch walls is
        speculatively re-submitted; whichever copy finishes first wins
        and the loser is cancelled.  Both copies compute the same pure
        function of the same inputs, so first-winner selection cannot
        change the cycle domain.  The per-segment dispatch timeout, when
        set, still bounds the *total* wait including the hedge.
        """
        obs = ctx.observer
        index = plan.segment.index
        timeout = ctx.retry.segment_timeout_s
        policy = self.hedge if redispatch is not None else None
        start = time.monotonic()
        threshold = (
            policy.threshold_s(state.samples)
            if policy is not None and state is not None
            else None
        )
        outstanding: dict[Future, int] = {future: span}
        hedged = False
        task_result = None
        winner_span = span
        hedge_won = False
        try:
            while task_result is None:
                elapsed = time.monotonic() - start
                if timeout is not None and elapsed >= timeout:
                    raise FuturesTimeoutError()
                quanta = []
                if timeout is not None:
                    quanta.append(timeout - elapsed)
                if threshold is not None and not hedged:
                    quanta.append(max(threshold - elapsed, 0.0))
                    quanta.append(policy.poll_interval_s)
                quantum = min(quanta) if quanta else None
                done, _ = wait(
                    outstanding, timeout=quantum, return_when=FIRST_COMPLETED
                )
                if not done:
                    if (
                        threshold is not None
                        and not hedged
                        and time.monotonic() - start >= threshold
                    ):
                        hedged = True
                        hedge_future, hedge_span = redispatch()
                        outstanding[hedge_future] = hedge_span
                        ctx.health.hedges += 1
                        obs.metrics.counter("exec.hedges").inc()
                        if obs.enabled:
                            obs.instant(
                                "segment-hedged",
                                track=TRACK_EXEC,
                                args={
                                    "segment": index,
                                    "threshold_ms": threshold * 1e3,
                                },
                            )
                    continue
                # Prefer the primary when both land in the same wait
                # slice; either result is bit-exact.
                finished = future if future in done else next(iter(done))
                finished_span = outstanding.pop(finished)
                try:
                    task_result = finished.result()
                    winner_span = finished_span
                    hedge_won = finished is not future
                except (BrokenProcessPool, CancelledError) as error:
                    # A broken pool takes every outstanding copy with
                    # it; a lone cancellation only loses one.
                    if (
                        isinstance(error, CancelledError)
                        and outstanding
                    ):
                        obs.end_span(
                            finished_span, args={"outcome": "cancelled"}
                        )
                        continue
                    self._teardown(wait=False)
                    raise WorkerCrashError(
                        f"process backend worker died while executing "
                        f"segment {index} (pool broken: {error})"
                    ) from error
                except ReproError as error:
                    # With a healthy hedge still out, its result may
                    # yet land — keep waiting instead of failing the
                    # attempt.
                    if outstanding:
                        obs.end_span(
                            finished_span,
                            args={"outcome": type(error).__name__},
                        )
                        continue
                    raise
                except Exception as error:  # noqa: BLE001 — worker errors vary
                    self.close()
                    raise ExecutionError(
                        f"segment {index} failed in worker process: {error!r}"
                    ) from error
        except FuturesTimeoutError as error:
            # The worker may be genuinely hung; it cannot be reclaimed,
            # so recycle the whole pool and let any retry start fresh.
            for pending in outstanding:
                pending.cancel()
            self._teardown(wait=False)
            raise SegmentTimeoutError(
                f"segment {index} exceeded the {timeout:g}s dispatch "
                "timeout; worker pool recycled"
            ) from error
        for loser, loser_span in outstanding.items():
            loser.cancel()
            obs.end_span(loser_span, args={"outcome": "hedge-loser"})
        if hedge_won:
            waited_ms = (time.monotonic() - start) * 1e3
            ctx.health.hedge_wins.append(
                {"segment": index, "waited_ms": waited_ms}
            )
            obs.metrics.counter("exec.hedge_wins").inc()
            if obs.enabled:
                obs.instant(
                    "hedge-win",
                    track=TRACK_EXEC,
                    args={"segment": index, "waited_ms": waited_ms},
                )
        if state is not None:
            state.samples.append(time.monotonic() - start)
        obs.end_span(
            winner_span,
            args={
                "pid": task_result.pid,
                "worker_wall_ms": task_result.wall_ns / 1e6,
            },
        )
        if task_result.batch is not None:
            # Merge the worker's shipped records under this dispatch
            # span: per-pid tracks, re-based timestamps, worker.*
            # metrics (see repro.obs.remote).
            obs.ingest_worker_batch(
                task_result.batch, span=winner_span, segment=index
            )
        return task_result.result

    def execute(
        self,
        ctx: ExecutionContext,
        data: bytes,
        plans: tuple[SegmentPlan, ...],
    ) -> list[SegmentOutcome]:
        if not plans:
            return []
        obs = ctx.observer
        if self._dispatch_workers != self.workers and self._executor is None:
            # A prior run's step-down is not this run's problem: fresh
            # runs start at the configured width (an existing healthy
            # pool, stepped or not, is still reused).
            self._dispatch_workers = self.workers
        if obs.enabled:
            obs.metrics.gauge("exec.workers").set(self._dispatch_workers)
        self._run_counter += 1
        token = (id(self), self._run_counter)
        payload = RunPayload(
            automaton=ctx.automaton,
            config=ctx.config,
            path_independent=ctx.path_independent,
            data=data,
        )
        state = _RecoveryState(self, ctx, data)
        if self.breaker is not None and not self.breaker.allow():
            # Open breaker: fast-fail straight to in-process execution —
            # no pool build, no per-segment failure churn.  RunHealth
            # carries the reason code.
            state.downgraded = True
            health = ctx.health
            health.downgraded = True
            health.downgraded_at_segment = plans[0].segment.index
            health.downgrade_reason = (
                f"breaker open: {self.breaker.reason}"
            )
            obs.metrics.counter("breaker.fastfails").inc()
            self._note_breaker(ctx, opened_at=plans[0], opened=False)
        outcomes: list[SegmentOutcome] = []
        previous_matched: frozenset[int] = frozenset()
        if ctx.config.use_fiv:
            # Section 3.4 availability chain: segment j+1's FIV inputs
            # need segment j's composed result, so dispatch pipelines
            # along the chain — each segment enters the pool the moment
            # its inputs resolve.  A retried segment re-enters the chain
            # with the same composed-predecessor inputs (ordered
            # re-dispatch), so recovery is bit-exact.
            fiv_chain = 0
            for plan in plans:
                truth, fiv_time = self._segment_inputs(
                    ctx, plan, previous_matched, fiv_chain
                )
                index = plan.segment.index

                def attempt(
                    plan: SegmentPlan = plan,
                    truth: dict[int, bool] = truth,
                    fiv_time: int | None = fiv_time,
                    index: int = index,
                ) -> SegmentResult:
                    if state.downgraded:
                        return state.run_inline(plan, truth, fiv_time)
                    fault = _draw_fault(ctx, index)
                    future, span = self._submit(
                        ctx, token, payload, plan, truth, fiv_time, fault
                    )

                    def redispatch() -> tuple[Future, int]:
                        # A hedge is a fresh attempt to the injector:
                        # seeded first-attempt faults do not re-fire on
                        # the speculative copy.
                        hedge_fault = _draw_fault(ctx, index)
                        return self._submit(
                            ctx,
                            token,
                            payload,
                            plan,
                            truth,
                            fiv_time,
                            hedge_fault,
                        )

                    return self._collect(
                        ctx,
                        future,
                        span,
                        plan,
                        redispatch=redispatch,
                        state=state,
                    )

                result = self._checkpoint_load(ctx, plan)
                if result is None:
                    result = run_with_retry(
                        ctx.retry,
                        ctx.health,
                        obs,
                        index,
                        attempt,
                        on_failure=lambda error, plan=plan: state.note_failure(
                            plan, error
                        ),
                    )
                    state.note_success()
                    self._checkpoint_store(ctx, plan, result)
                outcome = self._compose(ctx, result, truth)
                fiv_chain = (
                    max(fiv_chain, result.metrics.finish_cycles)
                    + outcome.decode_cycles
                )
                previous_matched = outcome.composed.final_matched
                outcomes.append(outcome)
            return outcomes
        # Without the FIV no segment's *execution* depends on another —
        # enumeration truth only matters at composition time — so every
        # segment's first attempt is dispatched up front and composition
        # chains afterwards.  Failures re-enter the retry loop one
        # segment at a time and re-dispatch on a rebuilt pool.  Already
        # checkpointed segments are never dispatched, and an admission
        # bound (``ctx.max_inflight``) turns the all-at-once prefetch
        # into waves: at most that many dispatches are outstanding.
        limit = ctx.max_inflight if (ctx.max_inflight or 0) > 0 else None
        prefetched: dict[int, tuple[Future, int] | BaseException] = {}
        to_submit = [
            plan
            for plan in plans
            if ctx.checkpoint is None or not ctx.checkpoint.has(plan)
        ]

        def pump() -> None:
            """Top the outstanding-dispatch window back up."""
            while (
                to_submit
                and not state.downgraded
                and (limit is None or len(prefetched) < limit)
            ):
                plan = to_submit.pop(0)
                index = plan.segment.index
                try:
                    fault = _draw_fault(ctx, index)
                    prefetched[index] = self._submit(
                        ctx, token, payload, plan, None, None, fault
                    )
                except RETRYABLE_ERRORS as error:
                    # Surfaces as this segment's attempt-1 failure when
                    # its turn to collect comes.
                    prefetched[index] = error

        pump()
        results: list[SegmentResult] = []
        for plan in plans:
            index = plan.segment.index
            cached = self._checkpoint_load(ctx, plan)
            if cached is not None:
                results.append(cached)
                continue

            def attempt(
                plan: SegmentPlan = plan, index: int = index
            ) -> SegmentResult:
                entry = prefetched.pop(index, None)
                if plan in to_submit:
                    # Its wave never came up (bounded window): this
                    # attempt dispatches it directly instead.
                    to_submit.remove(plan)
                if isinstance(entry, BaseException):
                    raise entry
                if entry is None:
                    if state.downgraded:
                        return state.run_inline(plan, None, None)
                    fault = _draw_fault(ctx, index)
                    entry = self._submit(
                        ctx, token, payload, plan, None, None, fault
                    )
                future, span = entry

                def redispatch() -> tuple[Future, int]:
                    hedge_fault = _draw_fault(ctx, index)
                    return self._submit(
                        ctx, token, payload, plan, None, None, hedge_fault
                    )

                return self._collect(
                    ctx,
                    future,
                    span,
                    plan,
                    redispatch=redispatch,
                    state=state,
                )

            result = run_with_retry(
                ctx.retry,
                ctx.health,
                obs,
                index,
                attempt,
                on_failure=lambda error, plan=plan: state.note_failure(
                    plan, error
                ),
            )
            state.note_success()
            self._checkpoint_store(ctx, plan, result)
            results.append(result)
            pump()
        for plan, result in zip(plans, results):
            truth = (
                {}
                if plan.is_golden
                else unit_truth_map(plan.flows, previous_matched)
            )
            outcome = self._compose(ctx, result, truth)
            previous_matched = outcome.composed.final_matched
            outcomes.append(outcome)
        return outcomes


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    *,
    workers: int | None = None,
    hedge: HedgePolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (instance, name, or ``None``) into an instance.

    ``None`` and ``"serial"`` yield a fresh :class:`SerialBackend`;
    ``"process"`` yields a :class:`ProcessPoolBackend` with ``workers``
    (plus the optional ``hedge`` policy and circuit ``breaker``);
    ``"vector"`` yields a :class:`VectorBackend` (in-process, so
    ``workers`` is ignored exactly as for ``"serial"``).  An existing
    instance passes through untouched (``workers``, ``hedge``, and
    ``breaker`` must then be ``None`` — the instance already owns its
    pool and policies).  ``hedge``/``breaker`` on an in-process backend
    name is a configuration error: there are no dispatches to hedge and
    no pool to protect.
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None:
            raise ConfigurationError(
                "workers cannot be overridden on an existing backend "
                "instance; construct the backend with the desired count"
            )
        if hedge is not None or breaker is not None:
            raise ConfigurationError(
                "hedge/breaker cannot be overridden on an existing "
                "backend instance; construct the backend with them"
            )
        return backend
    if backend == "process":
        return ProcessPoolBackend(workers=workers, hedge=hedge, breaker=breaker)
    if hedge is not None or breaker is not None:
        raise ConfigurationError(
            "straggler hedging and circuit breakers need the process "
            "backend (in-process execution has no dispatches to hedge)"
        )
    if backend is None or backend == "serial":
        return SerialBackend()
    if backend == "vector":
        return VectorBackend()
    raise ConfigurationError(
        f"unknown execution backend {backend!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)})"
    )

"""Execution backends: serial and host-parallel segment execution.

See :mod:`repro.exec.backend` for the backend contract (dispatch and
dependency rules, bit-exactness), :mod:`repro.exec.worker` for the
spawn-safe worker protocol, :mod:`repro.exec.faults` for deterministic
fault injection, and :mod:`repro.exec.resilience` for the retry/backoff
policy and run-health accounting.
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionContext,
    ProcessPoolBackend,
    SegmentOutcome,
    SerialBackend,
    TRACK_EXEC,
    VectorBackend,
    resolve_backend,
)
from repro.exec.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.exec.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RunHealth,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_RETRY_POLICY",
    "ExecutionBackend",
    "ExecutionContext",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunHealth",
    "SegmentOutcome",
    "SerialBackend",
    "TRACK_EXEC",
    "VectorBackend",
    "resolve_backend",
]

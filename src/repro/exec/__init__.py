"""Execution backends: serial and host-parallel segment execution.

See :mod:`repro.exec.backend` for the backend contract (dispatch and
dependency rules, bit-exactness), :mod:`repro.exec.worker` for the
spawn-safe worker protocol, :mod:`repro.exec.faults` for deterministic
fault injection, :mod:`repro.exec.resilience` for the retry/backoff
policy and run-health accounting, and :mod:`repro.exec.durability` for
the checkpoint/resume store, straggler hedging, circuit breaker, and
admission guard.
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionContext,
    ProcessPoolBackend,
    SegmentOutcome,
    SerialBackend,
    TRACK_EXEC,
    VectorBackend,
    resolve_backend,
)
from repro.exec.durability import (
    AdmissionDecision,
    AdmissionPolicy,
    CheckpointRun,
    CheckpointStore,
    CircuitBreaker,
    HedgePolicy,
    cycle_fingerprint,
    run_fingerprint,
)
from repro.exec.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.exec.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RunHealth,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "BACKEND_NAMES",
    "CheckpointRun",
    "CheckpointStore",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "ExecutionBackend",
    "ExecutionContext",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HedgePolicy",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunHealth",
    "SegmentOutcome",
    "SerialBackend",
    "TRACK_EXEC",
    "VectorBackend",
    "cycle_fingerprint",
    "resolve_backend",
    "run_fingerprint",
]

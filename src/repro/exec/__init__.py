"""Execution backends: serial and host-parallel segment execution.

See :mod:`repro.exec.backend` for the backend contract (dispatch and
dependency rules, bit-exactness) and :mod:`repro.exec.worker` for the
spawn-safe worker protocol.
"""

from repro.exec.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExecutionContext,
    ProcessPoolBackend,
    SegmentOutcome,
    SerialBackend,
    TRACK_EXEC,
    resolve_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ExecutionContext",
    "ProcessPoolBackend",
    "SegmentOutcome",
    "SerialBackend",
    "TRACK_EXEC",
    "resolve_backend",
]

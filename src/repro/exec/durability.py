"""Durability layer: checkpoint/resume, hedging, breakers, admission.

A host-parallel run is only as durable as its weakest process: a worker
can die (PR 5 recovers that), but a *parent* crash used to discard every
completed segment, a straggler could only be waited out or killed by the
per-segment deadline, and a persistently broken pool was rebuilt over
and over at full size.  This module supplies the missing machinery, all
of it resting on the repo's bit-exactness contract — a segment's
cycle-domain result is a pure function of (automaton fingerprint,
configuration, input bytes, segment plan, FIV inputs), which is exactly
the property the SFA/PaREM line exploits and exactly what makes
segment-level checkpointing and speculative re-execution sound:

:class:`CheckpointStore` / :class:`CheckpointRun`
    A content-addressed segment-result store: one append-only JSONL
    file per *run fingerprint* (automaton × config × input digest ×
    segment count), each record fsync'd and checksummed.  Backends
    write through as segments complete; ``pap.run(resume=True)`` skips
    every segment whose proven result is already on disk — including
    after a ``kill -9`` of the parent, because records are durable the
    moment :meth:`CheckpointRun.record` returns.  Torn or corrupted
    records (a crash mid-write, a bad disk) fail their checksum and are
    silently dropped: the segment simply re-executes.

:class:`HedgePolicy`
    Straggler detection for the process backend: once enough segments
    have completed, a segment whose dispatch wall exceeds
    ``median + mad_multiplier * MAD`` of the completed walls is
    speculatively re-dispatched and the first result wins.  Bit-exact
    by construction — both dispatches compute the same pure function.

:class:`CircuitBreaker`
    A closed → open → half-open breaker over *infrastructure* failures
    (worker crashes, dispatch timeouts).  While open, process runs
    fast-fail to in-process execution with a RunHealth reason code
    instead of rebuilding the pool per failure; after ``cooldown_s`` a
    single probe run is allowed through (half-open) and a success
    closes the breaker again.

:class:`AdmissionPolicy`
    A pre-execution resource guard: predicts the run's peak host memory
    from the plan's exact flow counts and either refuses the run or
    bounds how many segments may be in flight at once (the process
    backend's no-FIV path then dispatches in waves).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.ap.events import OutputEvent
from repro.automata.anml import Automaton
from repro.automata.serialization import automaton_to_dict
from repro.core.config import PAPConfig
from repro.core.scheduler import SegmentMetrics, SegmentPlan, SegmentResult
from repro.errors import CheckpointError, ConfigurationError

#: Checkpoint file schema version; bumped on any record-shape change so
#: a resume never misreads an older layout.
CHECKPOINT_SCHEMA = 1

#: Test/CI hook: when set to ``N``, the parent process SIGKILLs itself
#: after the Nth durable checkpoint record — *after* the fsync, so the
#: record survives — simulating a parent crash mid-run.  The CI
#: kill-parent-and-resume stage and the SIGKILL-resume tests use it;
#: never set it in production.
KILL_ENV = "REPRO_CHECKPOINT_TEST_KILL_AFTER"

#: Circuit breaker states, plus their numeric codes for the
#: ``breaker.state`` gauge (0 = closed, 1 = half-open, 2 = open).
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"
BREAKER_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


def _canonical(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- fingerprints -----------------------------------------------------------


def run_fingerprint(
    automaton: Automaton,
    config: PAPConfig,
    data: bytes,
    *,
    num_segments: int,
) -> str:
    """Content address of one run's checkpoint file.

    Keyed on everything the cycle-domain outcome depends on — the
    canonical automaton serialization, the full configuration (geometry,
    timing, toggles), the input digest, and the partition parameters —
    and deliberately *not* on the backend: the bit-exactness contract
    makes a serial run's checkpoint valid for a process or vector
    resume and vice versa.
    """
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "automaton": automaton_to_dict(automaton),
        "config": dataclasses.asdict(config),
        "input_sha256": hashlib.sha256(data).hexdigest(),
        "input_bytes": len(data),
        "num_segments": num_segments,
    }
    return _digest(_canonical(payload))


def plan_digest(plan: SegmentPlan) -> str:
    """Digest of one segment plan's identity.

    Stored with each checkpoint record and re-derived on resume from
    the (deterministic) re-planning pass: a record whose plan digest no
    longer matches is stale — the planner moved — and is ignored rather
    than trusted.
    """
    segment = plan.segment
    payload = {
        "index": segment.index,
        "start": segment.start,
        "end": segment.end,
        "boundary": segment.boundary_symbol,
        "golden": plan.is_golden,
        "flows": [
            [flow.flow_id, sorted(unit.unit_id for unit in flow.units)]
            for flow in plan.flows
        ],
        "asg": sorted(plan.asg_initial),
    }
    return _digest(_canonical(payload))[:16]


def cycle_fingerprint(result: Any) -> str:
    """Digest of a run's complete cycle-domain outcome.

    Mirrors the property-test fingerprint in ``tests/exec``: reports,
    cycle totals, the availability chain, per-segment metrics, and the
    composition outcomes.  Two runs with equal fingerprints are
    bit-exact in every gated quantity; ``repro chaos`` compares every
    recovered run against the fault-free fingerprint with this.
    """
    payload = {
        "reports": sorted(
            (r.offset, r.element, r.code) for r in result.reports
        ),
        "enumeration_cycles": result.enumeration_cycles,
        "golden_cycles": result.golden_cycles,
        "truth_times": list(result.truth_times),
        "tcpu_cycles": list(result.tcpu_cycles),
        "svc_overflow": result.svc_overflow,
        "segment_metrics": [
            dataclasses.asdict(r.metrics) for r in result.segment_results
        ],
        "final_matched": [sorted(c.final_matched) for c in result.composed],
        "true_events": [c.true_events for c in result.composed],
    }
    return _digest(_canonical(payload))


# -- segment result (de)serialization ---------------------------------------


def segment_result_to_dict(result: SegmentResult) -> dict:
    """JSON-ready view of everything composition needs from a segment."""
    return {
        "events": [
            [e.offset, e.report_code, e.element, e.flow_id]
            for e in result.events
        ],
        "unit_history": {
            str(unit_id): [[flow_id, offset] for flow_id, offset in pairs]
            for unit_id, pairs in sorted(result.unit_history.items())
        },
        "final_currents": {
            str(flow_id): sorted(states)
            for flow_id, states in sorted(result.final_currents.items())
        },
        "asg_final": sorted(result.asg_final),
        "metrics": dataclasses.asdict(result.metrics),
    }


def segment_result_from_dict(
    payload: dict, plan: SegmentPlan
) -> SegmentResult:
    """Rebuild a :class:`SegmentResult` against its re-derived plan."""
    return SegmentResult(
        plan=plan,
        events=[
            OutputEvent(
                offset=offset,
                report_code=report_code,
                element=element,
                flow_id=flow_id,
            )
            for offset, report_code, element, flow_id in payload["events"]
        ],
        unit_history={
            int(unit_id): [(flow_id, offset) for flow_id, offset in pairs]
            for unit_id, pairs in payload["unit_history"].items()
        },
        final_currents={
            int(flow_id): frozenset(states)
            for flow_id, states in payload["final_currents"].items()
        },
        asg_final=frozenset(payload["asg_final"]),
        metrics=SegmentMetrics(**payload["metrics"]),
    )


# -- the checkpoint store ---------------------------------------------------


class CheckpointStore:
    """A directory of per-run checkpoint files, keyed by fingerprint."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise CheckpointError(
                f"checkpoint path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint[:40]}.ckpt.jsonl"

    def open_run(
        self,
        fingerprint: str,
        *,
        meta: dict | None = None,
        resume: bool = False,
    ) -> "CheckpointRun":
        """Open (and on resume, load) the file for one run fingerprint.

        ``resume=False`` starts cold: any existing file for the
        fingerprint is discarded, matching the semantics of a fresh
        run.  ``resume=True`` loads every intact record first; loading
        *never* raises on bad data — a torn final record (parent killed
        mid-write), a corrupted line, or a stale plan digest just means
        that segment re-executes.
        """
        path = self.path_for(fingerprint)
        cached: dict[int, dict] = {}
        dropped = 0
        if resume and path.exists():
            cached, dropped = _read_records(path, fingerprint)
        elif path.exists():
            path.unlink()
        return CheckpointRun(
            path=path,
            fingerprint=fingerprint,
            cached=cached,
            dropped_records=dropped,
            meta=meta or {},
        )


def _read_records(path: Path, fingerprint: str) -> tuple[dict[int, dict], int]:
    """Load every intact segment record; count the ones dropped.

    The file is append-only, so any record that parses and passes its
    checksum is trustworthy regardless of what surrounds it; anything
    else — a torn final line from a killed writer, an injected
    corruption, a foreign fingerprint — is dropped, never raised.
    """
    records: dict[int, dict] = {}
    dropped = 0
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return {}, 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            dropped += 1
            continue
        if not isinstance(record, dict):
            dropped += 1
            continue
        kind = record.get("kind")
        if kind == "meta":
            if (
                record.get("fingerprint") != fingerprint
                or record.get("schema") != CHECKPOINT_SCHEMA
            ):
                # Wrong run or layout: nothing in this file is ours.
                return {}, dropped + 1
            continue
        if kind != "segment":
            dropped += 1
            continue
        payload = record.get("payload")
        if (
            not isinstance(record.get("index"), int)
            or not isinstance(payload, dict)
            or record.get("sum") != _digest(_canonical(payload))[:16]
        ):
            dropped += 1
            continue
        records[record["index"]] = record
    return records, dropped


class CheckpointRun:
    """One run's append-only checkpoint file.

    Writers call :meth:`record` as segments complete; each record is
    flushed and fsync'd before the call returns, so a parent killed at
    any instant loses at most the record being written — and that torn
    tail fails its checksum on the next resume and is re-executed.
    """

    def __init__(
        self,
        *,
        path: Path,
        fingerprint: str,
        cached: dict[int, dict],
        dropped_records: int = 0,
        meta: dict | None = None,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.dropped_records = dropped_records
        self.hits = 0
        self.writes = 0
        self._cached = cached
        self._meta = meta or {}
        self._handle = None
        self._recorded = 0
        kill_after = os.environ.get(KILL_ENV, "")
        self._kill_after = int(kill_after) if kill_after.isdigit() else 0

    @property
    def available(self) -> int:
        """Intact records loaded at open time (resumable segments)."""
        return len(self._cached)

    def has(self, plan: SegmentPlan) -> bool:
        """Whether a matching record exists, without counting a hit."""
        entry = self._cached.get(plan.segment.index)
        return entry is not None and entry.get("plan") == plan_digest(plan)

    def load(self, plan: SegmentPlan) -> SegmentResult | None:
        """The proven result for ``plan``, or ``None`` to re-execute."""
        entry = self._cached.get(plan.segment.index)
        if entry is None or entry.get("plan") != plan_digest(plan):
            return None
        try:
            result = segment_result_from_dict(entry["payload"], plan)
        except (KeyError, TypeError, ValueError):
            # Checksummed but unreadable (schema drift): re-execute.
            del self._cached[plan.segment.index]
            return None
        self.hits += 1
        return result

    def record(
        self, plan: SegmentPlan, result: SegmentResult, *, corrupt: bool = False
    ) -> None:
        """Append one segment's result durably (fsync before return).

        ``corrupt=True`` is the ``corrupt_checkpoint`` fault: the line
        is deliberately truncated mid-payload, modeling a torn write.
        The *reader* is what is under test — the broken record must be
        dropped on resume, never crash it.
        """
        index = plan.segment.index
        payload = segment_result_to_dict(result)
        record = {
            "kind": "segment",
            "index": index,
            "plan": plan_digest(plan),
            "payload": payload,
            "sum": _digest(_canonical(payload))[:16],
        }
        line = _canonical(record)
        if corrupt:
            line = line[: max(16, len(line) // 2)]
        handle = self._open()
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self.writes += 1
        if not corrupt:
            self._cached[index] = record
        self._recorded += 1
        if self._kill_after and self._recorded >= self._kill_after:
            # Simulated parent crash (see KILL_ENV): the fsync above
            # already made this record durable.
            os.kill(os.getpid(), signal.SIGKILL)

    def _open(self):
        if self._handle is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(  # noqa: SIM115 — held across records
                self.path, "a", encoding="utf-8"
            )
            if fresh:
                header = _canonical(
                    {
                        "kind": "meta",
                        "schema": CHECKPOINT_SCHEMA,
                        "fingerprint": self.fingerprint,
                        "meta": self._meta,
                    }
                )
                self._handle.write(header + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointRun":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def to_dict(self) -> dict:
        """JSON-ready view for ``PAPRunResult.extra["checkpoint"]``."""
        return {
            "path": str(self.path),
            "fingerprint": self.fingerprint,
            "hits": self.hits,
            "writes": self.writes,
            "available": self.available,
            "dropped_records": self.dropped_records,
        }


# -- straggler hedging ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class HedgePolicy:
    """When to speculatively re-dispatch a slow segment.

    The threshold is robust-statistics based, mirroring the repo's
    wall-clock methodology (:func:`repro.perf.measure.measure_wall`):
    with at least ``min_samples`` completed dispatch walls, a segment
    still outstanding after ``median + mad_multiplier * MAD`` seconds
    is hedged.  The MAD is floored at 5% of the median (all-equal
    samples otherwise collapse the threshold to the median itself) and
    the whole threshold at ``min_threshold_s`` (hedging microsecond
    segments buys nothing and costs a dispatch).
    """

    mad_multiplier: float = 4.0
    min_samples: int = 3
    min_threshold_s: float = 0.05
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.mad_multiplier <= 0:
            raise ConfigurationError("hedge mad_multiplier must be positive")
        if self.min_samples < 1:
            raise ConfigurationError("hedge min_samples must be >= 1")
        if self.min_threshold_s < 0:
            raise ConfigurationError("hedge min_threshold_s must be >= 0")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("hedge poll_interval_s must be positive")

    def threshold_s(self, samples: Sequence[float]) -> float | None:
        """Hedge-after threshold, or ``None`` with too few samples."""
        if len(samples) < self.min_samples:
            return None
        median = statistics.median(samples)
        mad = statistics.median(abs(s - median) for s in samples)
        spread = max(mad, 0.05 * median)
        return max(self.min_threshold_s, median + self.mad_multiplier * spread)


# -- circuit breaker --------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open breaker over infrastructure failures.

    Counts *consecutive* worker crashes and dispatch timeouts across
    runs (the breaker belongs to the backend instance, like its pool).
    At ``fail_threshold`` the breaker opens: subsequent runs fast-fail
    to in-process execution instead of rebuilding the pool per failure.
    After ``cooldown_s`` the next :meth:`allow` call half-opens the
    breaker — one probe run goes through on the pool; its first
    infrastructure failure re-opens, a success closes.
    """

    def __init__(
        self,
        fail_threshold: int = 5,
        cooldown_s: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fail_threshold < 1:
            raise ConfigurationError("breaker fail_threshold must be >= 1")
        if cooldown_s < 0:
            raise ConfigurationError("breaker cooldown_s must be >= 0")
        self.fail_threshold = fail_threshold
        self.cooldown_s = cooldown_s
        self.state = BREAKER_CLOSED
        self.reason: str | None = None
        self.opens = 0
        self._clock = clock
        self._consecutive = 0
        self._opened_at: float | None = None

    @property
    def state_code(self) -> int:
        return BREAKER_STATE_CODES[self.state]

    def allow(self) -> bool:
        """Whether the pool may be used right now.

        An open breaker past its cooldown transitions to half-open and
        admits one probe; otherwise open means fast-fail.
        """
        if self.state != BREAKER_OPEN:
            return True
        assert self._opened_at is not None
        if self._clock() - self._opened_at >= self.cooldown_s:
            self.state = BREAKER_HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        self._consecutive = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.reason = None

    def record_failure(self, error: BaseException) -> bool:
        """Count one infrastructure failure; True when this opens it."""
        self._consecutive += 1
        tripping = (
            self.state == BREAKER_HALF_OPEN
            or self._consecutive >= self.fail_threshold
        )
        if not tripping:
            return False
        was_open = self.state == BREAKER_OPEN
        self.state = BREAKER_OPEN
        self._opened_at = self._clock()
        self.reason = (
            f"{self._consecutive} consecutive infrastructure failure(s) "
            f"(last: {type(error).__name__})"
        )
        if not was_open:
            self.opens += 1
            return True
        return False

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "reason": self.reason,
            "opens": self.opens,
            "fail_threshold": self.fail_threshold,
            "cooldown_s": self.cooldown_s,
        }


# -- admission guard --------------------------------------------------------

#: Modeled resident bytes per flow: three state-vector-sized bitsets
#: (current, latched, SVC slot) on a 59,936-bit board vector, plus
#: Python object bookkeeping.  Deliberately a round, documented figure:
#: admission is a guard rail, not an allocator.
BYTES_PER_FLOW = 3 * (59_936 // 8) + 512


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """The admission guard's verdict for one planned run."""

    action: str
    """``admit``, ``chunk`` (bound in-flight segments), or ``refuse``."""
    predicted_peak_bytes: int
    max_segment_bytes: int
    budget_bytes: int | None
    wave_size: int | None
    reason: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Refuse or chunk runs predicted to exceed a memory budget.

    The prediction uses the plan's *exact* per-segment flow counts (the
    same quantities ``repro.analyze``'s cost model predicts ahead of
    planning): each in-flight segment holds its flows' state vectors
    plus its input slice, and the no-FIV process path holds every
    segment in flight at once.  ``mode="chunk"`` converts an over-budget
    prediction into a bound on concurrently in-flight segments (the
    input is never split further — cross-boundary matches make input
    chunking semantically unsound); ``mode="refuse"`` raises instead.
    """

    memory_budget_bytes: int | None = None
    mode: str = "chunk"
    bytes_per_flow: int = BYTES_PER_FLOW

    def __post_init__(self) -> None:
        if self.mode not in ("chunk", "refuse"):
            raise ConfigurationError(
                f"admission mode must be 'chunk' or 'refuse', got {self.mode!r}"
            )
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ConfigurationError("memory budget must be positive")
        if self.bytes_per_flow < 1:
            raise ConfigurationError("bytes_per_flow must be positive")

    def segment_bytes(self, plan: SegmentPlan) -> int:
        """Predicted resident bytes for one in-flight segment."""
        flows = len(plan.flows) + 2  # + ASG flow + golden/report slack
        return flows * self.bytes_per_flow + plan.segment.length

    def check(
        self, plans: Sequence[SegmentPlan], *, input_bytes: int
    ) -> AdmissionDecision:
        budget = self.memory_budget_bytes
        per_segment = [self.segment_bytes(plan) for plan in plans]
        max_segment = max(per_segment, default=0)
        peak = input_bytes + sum(per_segment)
        if budget is None or peak <= budget:
            return AdmissionDecision(
                action="admit",
                predicted_peak_bytes=peak,
                max_segment_bytes=max_segment,
                budget_bytes=budget,
                wave_size=None,
                reason="predicted peak within budget",
            )
        if input_bytes + max_segment > budget:
            # Even one segment at a time cannot fit: chunking cannot
            # help (the input is never split further), so always refuse.
            return AdmissionDecision(
                action="refuse",
                predicted_peak_bytes=peak,
                max_segment_bytes=max_segment,
                budget_bytes=budget,
                wave_size=None,
                reason=(
                    f"largest segment needs ~{input_bytes + max_segment} "
                    f"bytes, over the {budget} byte budget"
                ),
            )
        if self.mode == "refuse":
            return AdmissionDecision(
                action="refuse",
                predicted_peak_bytes=peak,
                max_segment_bytes=max_segment,
                budget_bytes=budget,
                wave_size=None,
                reason=(
                    f"predicted peak ~{peak} bytes exceeds the "
                    f"{budget} byte budget"
                ),
            )
        wave = max(1, (budget - input_bytes) // max_segment)
        return AdmissionDecision(
            action="chunk",
            predicted_peak_bytes=peak,
            max_segment_bytes=max_segment,
            budget_bytes=budget,
            wave_size=wave,
            reason=(
                f"predicted peak ~{peak} bytes exceeds the {budget} byte "
                f"budget; bounding in-flight segments to {wave}"
            ),
        )

"""Segment retry/backoff policy and run-health accounting.

The recovery contract rests on the AP's deterministic cycle model: a
segment's cycle-domain outcome depends only on (automaton, config,
input, plan, FIV inputs), so re-executing a failed segment is *bit
exact* — recovery can be verified against a fault-free run, not just
hoped for.  :func:`run_with_retry` is the shared driver both backends
wrap around one segment's execution attempts; :class:`RetryPolicy`
bounds it (attempt budget, capped exponential backoff, wall deadline,
per-segment dispatch timeout); :class:`RunHealth` records what
actually happened so ``PAPRunResult.extra["health"]`` and the
``exec.*`` metrics can surface it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    RETRYABLE_ERRORS,
    SegmentTimeoutError,
    WorkerCrashError,
)
from repro.obs.tracer import Observer

#: Track name for backend dispatch/recovery records in repro.obs traces.
TRACK_EXEC = "exec"

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery policy for segment execution.

    Attributes
    ----------
    max_retries:
        Re-executions allowed per segment after its first attempt
        (``0`` — the default — preserves fail-fast behaviour).
    backoff_base_s / backoff_factor / backoff_max_s:
        Capped exponential backoff: the sleep before retry ``n`` is
        ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))``.
        Deterministic (no jitter): retried runs must stay reproducible.
    deadline_s:
        Wall-clock budget for one segment across all its attempts;
        exceeded mid-recovery, the run fails even with retries left.
    segment_timeout_s:
        Per-dispatch timeout on the process backend.  A segment that
        does not return in time counts as a timeout failure (the worker
        pool is recycled, since a hung worker cannot be reclaimed).
    downgrade_after:
        Consecutive process-backend failures after which the run
        gracefully degrades to in-process (serial) execution for the
        remaining segments.  ``None`` disables degradation.
    """

    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    deadline_s: float | None = None
    segment_timeout_s: float | None = None
    downgrade_after: int | None = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.segment_timeout_s is not None and self.segment_timeout_s <= 0:
            raise ConfigurationError("segment timeout must be positive")
        if self.downgrade_after is not None and self.downgrade_after < 1:
            raise ConfigurationError("downgrade_after must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay_s(self, attempt: int) -> float:
        """Backoff slept after failed attempt number ``attempt``."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )


#: Fail-fast: no retries, no timeout, no degradation — the pre-existing
#: backend behaviour, and what ``pap.run`` uses when none is given.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class RunHealth:
    """What the recovery machinery actually did during one run."""

    run_id: str | None = None
    """Correlation id shared with the run's flight-recorder ledger
    (``None`` when no flight recorder is attached)."""
    attempts: dict[int, int] = field(default_factory=dict)
    """Execution attempts per segment index (1 everywhere on a clean run)."""
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    injected: list[dict] = field(default_factory=list)
    """Faults the injector fired: ``{"segment", "attempt", "kind"}``."""
    downgraded: bool = False
    downgrade_reason: str | None = None
    downgraded_at_segment: int | None = None
    hedges: int = 0
    """Speculative re-dispatches issued for straggling segments."""
    hedge_wins: list[dict] = field(default_factory=list)
    """Hedges whose speculative dispatch finished first:
    ``{"segment", "waited_ms"}``."""
    worker_steps: list[dict] = field(default_factory=list)
    """Pool step-downs under consecutive infrastructure failures:
    ``{"segment", "workers", "consecutive", "error"}``."""
    breaker_state: str | None = None
    """Backend circuit-breaker state after this run touched it
    (``None`` when the backend has no breaker or it never fired)."""
    breaker_reason: str | None = None
    checkpoint_path: str | None = None
    """Checkpoint file backing this run (``None`` without one).  The
    flight recorder's crash bundle carries the whole health dict, so a
    crashed run's bundle names where its resumable state lives."""
    checkpoint_hits: int = 0
    checkpoint_writes: int = 0
    admission: dict | None = None
    """The admission guard's decision for this run, when one ran."""

    def record_attempt(self, segment: int) -> None:
        self.attempts[segment] = self.attempts.get(segment, 0) + 1

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts.values())

    @property
    def clean(self) -> bool:
        """True when no recovery machinery fired at all."""
        return not (
            self.retries
            or self.timeouts
            or self.crashes
            or self.injected
            or self.downgraded
            or self.hedges
            or self.worker_steps
        )

    def to_dict(self) -> dict:
        """JSON-ready view for ``PAPRunResult.extra["health"]``."""
        return {
            "run_id": self.run_id,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "downgraded": self.downgraded,
            "downgrade_reason": self.downgrade_reason,
            "downgraded_at_segment": self.downgraded_at_segment,
            "hedges": self.hedges,
            "hedge_wins": list(self.hedge_wins),
            "worker_steps": list(self.worker_steps),
            "breaker_state": self.breaker_state,
            "breaker_reason": self.breaker_reason,
            "checkpoint_path": self.checkpoint_path,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_writes": self.checkpoint_writes,
            "admission": self.admission,
            "faults_injected": len(self.injected),
            "injected_faults": list(self.injected),
            "attempts": {
                str(segment): count
                for segment, count in sorted(self.attempts.items())
            },
            "total_attempts": self.total_attempts,
        }


def run_with_retry(
    policy: RetryPolicy,
    health: RunHealth,
    observer: Observer,
    segment_index: int,
    attempt_fn: Callable[[], T],
    *,
    on_failure: Callable[[BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Drive one segment's execution attempts under ``policy``.

    ``attempt_fn`` performs one full attempt (fault draw, dispatch,
    collect) and either returns the :class:`SegmentResult` or raises.
    Only :data:`~repro.errors.RETRYABLE_ERRORS` are retried — anything
    else (lint failures, configuration errors, deterministic worker
    bugs) propagates immediately.  When the attempt budget or the
    deadline is exhausted, the last error is wrapped in an
    :class:`~repro.errors.ExecutionError` naming the segment and the
    attempt count.

    ``on_failure`` fires on every retryable failure *before* the
    exhaustion check — the process backend uses it to count consecutive
    failures toward graceful degradation, so it must run even for the
    failure that exhausts the budget.
    """
    start = clock()
    attempt = 0
    while True:
        attempt += 1
        health.record_attempt(segment_index)
        try:
            result = attempt_fn()
            # Distribution of attempts-to-success per segment; feeds the
            # p50/p95/p99 retry summaries in the OpenMetrics export.
            observer.metrics.histogram(
                "exec.attempts_per_segment"
            ).observe(attempt)
            return result
        except RETRYABLE_ERRORS as error:
            if isinstance(error, SegmentTimeoutError):
                health.timeouts += 1
                observer.metrics.counter("exec.timeouts").inc()
            elif isinstance(error, WorkerCrashError):
                health.crashes += 1
                observer.metrics.counter("exec.crashes").inc()
            if on_failure is not None:
                on_failure(error)
            elapsed = clock() - start
            over_deadline = (
                policy.deadline_s is not None and elapsed >= policy.deadline_s
            )
            if attempt >= policy.max_attempts or over_deadline:
                reason = (
                    "deadline exceeded"
                    if over_deadline and attempt < policy.max_attempts
                    else "retries exhausted"
                )
                raise ExecutionError(
                    f"segment {segment_index} failed after {attempt} "
                    f"attempt(s) ({reason}): {error}"
                ) from error
            health.retries += 1
            observer.metrics.counter("exec.retries").inc()
            if observer.enabled:
                observer.instant(
                    "segment-retry",
                    track=TRACK_EXEC,
                    args={
                        "segment": segment_index,
                        "failed_attempt": attempt,
                        "error": type(error).__name__,
                    },
                )
            delay = policy.delay_s(attempt)
            if delay > 0:
                sleep(delay)

"""Common-prefix merging (Becchi & Crowley), paper Section 4.1.

Rulesets compiled pattern-by-pattern contain many duplicated prefix
chains ("abc" and "abd" share "ab").  Merging them removes redundant
traversals before execution — the paper applies this compression to the
ANMLZoo benchmarks prior to evaluation, and notes it *reduces the number
of connected components* (which is why ClamAV, Fermi and RandomForest
are left uncompressed there; our workload generators follow suit).

Two states are duplicates when they match the same symbols, start the
same way, report identically and are enabled under exactly the same
conditions (identical predecessor sets, with a self loop counting as a
loop on the merged state rather than a distinguishing predecessor).
Merging duplicates makes their children's predecessor sets collapse too,
so the pass iterates to a fixpoint.
"""

from __future__ import annotations

from repro.automata.anml import Automaton

_SELF = -1


def merge_common_prefixes(
    automaton: Automaton, *, max_rounds: int = 256
) -> Automaton:
    """Return an equivalent automaton with duplicated prefixes shared.

    The result preserves the deduplicated report stream: merged states
    were enabled under identical conditions and carried identical labels
    and report codes, so every match of the representative corresponds to
    matches of all merged originals and vice versa.
    """
    current = automaton
    for _ in range(max_rounds):
        merged = _merge_round(current)
        if merged.num_states == current.num_states:
            return merged
        current = merged
    return current


def _merge_round(automaton: Automaton) -> Automaton:
    groups: dict[tuple, list[int]] = {}
    for ste in automaton.states():
        preds = frozenset(
            _SELF if p == ste.sid else p for p in automaton.predecessors(ste.sid)
        )
        signature = (
            ste.label.mask,
            ste.start,
            ste.reporting,
            ste.code if ste.reporting else None,
            preds,
        )
        groups.setdefault(signature, []).append(ste.sid)

    representative: dict[int, int] = {}
    for members in groups.values():
        head = min(members)
        for sid in members:
            representative[sid] = head

    keep = sorted(set(representative.values()))
    remap = {old: new for new, old in enumerate(keep)}
    result = Automaton(name=automaton.name)
    for old in keep:
        ste = automaton.state(old)
        result.add_state(
            ste.label,
            start=ste.start,
            reporting=ste.reporting,
            report_code=ste.report_code,
            name=ste.name,
        )
    for src, dst in automaton.edges():
        result.add_edge(remap[representative[src]], remap[representative[dst]])
    return result


def compression_ratio(before: Automaton, after: Automaton) -> float:
    """States removed by merging, as a fraction of the original count."""
    if before.num_states == 0:
        return 0.0
    return 1.0 - after.num_states / before.num_states

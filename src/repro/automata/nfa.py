"""Classic (non-homogeneous) NFAs.

The paper describes automata in the textbook quintuple form
``<Q, Sigma, delta, q0, F>`` before transforming them into the AP's
homogeneous ANML representation.  This module implements that classic
form — with character-class-labeled transitions and epsilon moves — and
is used as an independent reference semantics by the test suite and as a
front-end representation by the regex compiler.

Report semantics match the rest of the library: a report fires at offset
``t`` when an accepting state is reached after consuming the symbol at
offset ``t`` (prefix matching, not whole-string acceptance; whole-string
acceptance is :meth:`Nfa.accepts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


@dataclass
class Nfa:
    """A classic NFA over the 256-symbol alphabet.

    Transitions are stored per source state as ``(label, destination)``
    pairs; epsilon moves are kept separately and eliminated on demand.
    """

    name: str = "nfa"
    _transitions: list[list[tuple[CharClass, int]]] = field(default_factory=list)
    _epsilon: list[list[int]] = field(default_factory=list)
    start_states: set[int] = field(default_factory=set)
    accept_states: set[int] = field(default_factory=set)

    # -- construction ------------------------------------------------------

    def add_state(self, *, start: bool = False, accept: bool = False) -> int:
        sid = len(self._transitions)
        self._transitions.append([])
        self._epsilon.append([])
        if start:
            self.start_states.add(sid)
        if accept:
            self.accept_states.add(sid)
        return sid

    def add_transition(self, src: int, label: CharClass, dst: int) -> None:
        self._check(src)
        self._check(dst)
        if not label:
            raise AutomatonError("transition label must be non-empty")
        self._transitions[src].append((label, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self._check(src)
        self._check(dst)
        if dst not in self._epsilon[src]:
            self._epsilon[src].append(dst)

    # -- queries -------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._transitions)

    def __len__(self) -> int:
        return len(self._transitions)

    def transitions_from(self, src: int) -> tuple[tuple[CharClass, int], ...]:
        self._check(src)
        return tuple(self._transitions[src])

    def epsilon_from(self, src: int) -> tuple[int, ...]:
        self._check(src)
        return tuple(self._epsilon[src])

    def has_epsilon(self) -> bool:
        return any(self._epsilon)

    def used_symbols(self) -> CharClass:
        """Union of every transition label (the effective alphabet)."""
        mask = 0
        for row in self._transitions:
            for label, _ in row:
                mask |= label.mask
        return CharClass.from_mask(mask)

    # -- semantics -------------------------------------------------------------

    def epsilon_closure(self, states: set[int] | frozenset[int]) -> frozenset[int]:
        closure = set(states)
        frontier = list(states)
        while frontier:
            sid = frontier.pop()
            for dst in self._epsilon[sid]:
                if dst not in closure:
                    closure.add(dst)
                    frontier.append(dst)
        return frozenset(closure)

    def step(self, states: frozenset[int], symbol: int) -> frozenset[int]:
        """One subset-semantics step (epsilon closure applied after)."""
        nxt: set[int] = set()
        for sid in states:
            for label, dst in self._transitions[sid]:
                if symbol in label:
                    nxt.add(dst)
        return self.epsilon_closure(nxt)

    def initial(self) -> frozenset[int]:
        return self.epsilon_closure(self.start_states)

    def run(self, data: bytes, base_offset: int = 0) -> list[tuple[int, int]]:
        """Prefix-match the input; returns ``(offset, state)`` report
        pairs, one per accepting state active after each symbol."""
        reports: list[tuple[int, int]] = []
        current = self.initial()
        for index, symbol in enumerate(data):
            current = self.step(current, symbol)
            for sid in current & self.accept_states:
                reports.append((base_offset + index, sid))
        return reports

    def accepts(self, data: bytes) -> bool:
        """Whole-string acceptance (the textbook language membership)."""
        current = self.initial()
        if not data:
            return bool(current & self.accept_states)
        for symbol in data:
            current = self.step(current, symbol)
        return bool(current & self.accept_states)

    # -- transforms --------------------------------------------------------------

    def without_epsilon(self) -> "Nfa":
        """An equivalent NFA with epsilon moves eliminated.

        Standard closure construction: each state inherits the non-epsilon
        transitions of its closure, and a state is accepting/start when its
        closure touches an accepting/original-start state (start handling
        is folded into the start set directly).
        """
        result = Nfa(name=self.name)
        for _ in range(self.num_states):
            result.add_state()
        for sid in range(self.num_states):
            closure = self.epsilon_closure({sid})
            for member in closure:
                for label, dst in self._transitions[member]:
                    result.add_transition(sid, label, dst)
            if closure & self.accept_states:
                result.accept_states.add(sid)
        result.start_states = set(self.epsilon_closure(self.start_states))
        return result

    def _check(self, sid: int) -> None:
        if not 0 <= sid < len(self._transitions):
            raise AutomatonError(f"unknown NFA state {sid} in {self.name!r}")

    def __repr__(self) -> str:
        edges = sum(len(r) for r in self._transitions) + sum(
            len(r) for r in self._epsilon
        )
        return f"Nfa(name={self.name!r}, states={self.num_states}, edges={edges})"

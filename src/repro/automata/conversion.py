"""Classic NFA -> homogeneous (ANML) automaton conversion.

The AP requires the homogeneous form where "each state has valid incoming
transitions for only one input symbol [class]" (paper Section 2.1).  The
standard construction splits every classic state by the label of its
incoming transitions:

* for each classic transition ``p --cc--> q`` an STE ``(q, cc)`` exists
  (one per distinct incoming class of ``q``);
* STE ``(p, cc1)`` has an edge to STE ``(q, cc2)`` for every classic
  transition ``p --cc2--> q`` — the STE's label already encodes the
  symbol test, so edges are unlabeled;
* STE ``(q, cc)`` is a start-of-data state when some classic start state
  has a ``cc`` transition to ``q``;
* STE ``(q, cc)`` reports when ``q`` is accepting.

The conversion preserves the report stream exactly: STE ``(q, cc)``
matches at offset ``t`` iff the classic NFA can be in ``q`` at ``t``
having just taken a ``cc`` transition, so the union over copies of ``q``
matches classic reachability.  Epsilon moves are eliminated first.
"""

from __future__ import annotations

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.automata.nfa import Nfa
from repro.errors import AutomatonError


def nfa_to_anml(nfa: Nfa, name: str | None = None) -> Automaton:
    """Convert a classic NFA to an equivalent homogeneous automaton.

    Reports carry the *classic* state id as their report code, so report
    streams from both representations can be compared directly (after
    deduplication — several STE copies of one accepting state may match
    simultaneously).
    """
    flat = nfa.without_epsilon() if nfa.has_epsilon() else nfa
    if flat.start_states & flat.accept_states:
        raise AutomatonError(
            "homogeneous form cannot report the empty match of an "
            "accepting start state; reject or rewrite the input NFA"
        )

    automaton = Automaton(name=name or flat.name)

    # Collect the distinct incoming classes of every classic state.
    incoming: dict[int, list[CharClass]] = {}
    for src in range(flat.num_states):
        for label, dst in flat.transitions_from(src):
            classes = incoming.setdefault(dst, [])
            if label not in classes:
                classes.append(label)

    ste_ids: dict[tuple[int, CharClass], int] = {}
    for classic, classes in sorted(incoming.items(), key=lambda kv: kv[0]):
        for label in classes:
            reached_from_start = any(
                start_label == label and dst == classic
                for start in flat.start_states
                for start_label, dst in flat.transitions_from(start)
            )
            sid = automaton.add_state(
                label,
                start=(
                    StartKind.START_OF_DATA
                    if reached_from_start
                    else StartKind.NONE
                ),
                reporting=classic in flat.accept_states,
                report_code=classic,
                name=f"q{classic}/{label.spec()}",
            )
            ste_ids[(classic, label)] = sid

    for src in range(flat.num_states):
        for label, dst in flat.transitions_from(src):
            dst_ste = ste_ids[(dst, label)]
            for src_label in incoming.get(src, []):
                automaton.add_edge(ste_ids[(src, src_label)], dst_ste)

    if automaton.num_states and not automaton.start_states():
        # No classic start state has an outgoing transition: the language
        # (under prefix-report semantics) is empty.
        return Automaton(name=automaton.name)
    automaton.validate()
    return automaton

"""Structural analysis of homogeneous automata.

The PAP parallelization scheme (Section 3 of the paper) is driven by four
structural properties of real-world NFAs, all computed here:

* **symbol ranges** — for each of the 256 input symbols, the set of
  reachable states labeled with that symbol (the candidate start states
  of a segment whose predecessor ended at that symbol);
* **connected components** — disconnected sub-graphs whose state spaces
  can never overlap, allowing their enumeration paths to share a flow;
* **parent structure** — range states sharing a parent always become
  active together and can share an enumeration path;
* **always-active states** — states active on every cycle regardless of
  the path taken (the Active State Group).

:class:`AutomatonAnalysis` computes each lazily and caches against the
automaton's version counter.
"""

from __future__ import annotations

import numpy as np

from repro.automata.anml import Automaton, StartKind
from repro.errors import AutomatonError


class AutomatonAnalysis:
    """Lazily computed, cached structural views of one automaton."""

    def __init__(self, automaton: Automaton) -> None:
        self.automaton = automaton
        self._version = automaton.version
        self._label_matrix: np.ndarray | None = None
        self._component_index: list[int] | None = None
        self._components: list[frozenset[int]] | None = None
        self._always_active: frozenset[int] | None = None
        self._reachable: frozenset[int] | None = None
        self._coreachable: frozenset[int] | None = None

    # -- cache hygiene ---------------------------------------------------

    def is_fresh(self) -> bool:
        """True while the automaton has not mutated since construction.

        Every query method raises :class:`AutomatonError` once this goes
        false; :mod:`repro.lint` surfaces the same condition as the
        ``AP009`` diagnostic instead of a deep failure.
        """
        return self.automaton.version == self._version

    def _check_fresh(self) -> None:
        if not self.is_fresh():
            raise AutomatonError(
                "automaton mutated after analysis was constructed; "
                "build a new AutomatonAnalysis"
            )

    # -- label matrix and symbol ranges -----------------------------------

    def label_matrix(self) -> np.ndarray:
        """Boolean matrix ``M[sid, symbol]`` = symbol in label(sid)."""
        self._check_fresh()
        if self._label_matrix is None:
            count = len(self.automaton)
            raw = bytearray(count * 32)
            for sid in range(count):
                mask = self.automaton.state(sid).label.mask
                raw[sid * 32 : (sid + 1) * 32] = mask.to_bytes(32, "little")
            bits = np.unpackbits(
                np.frombuffer(bytes(raw), dtype=np.uint8), bitorder="little"
            )
            self._label_matrix = bits.reshape(count, 256).astype(bool)
        return self._label_matrix

    def enterable_states(self) -> frozenset[int]:
        """States that can ever be in a current set: states with at least
        one predecessor, plus start states of either kind."""
        self._check_fresh()
        automaton = self.automaton
        enterable = set(automaton.start_states())
        for _, dst in automaton.edges():
            enterable.add(dst)
        return frozenset(enterable)

    def symbol_range(self, symbol: int) -> frozenset[int]:
        """The paper's *range* of ``symbol``: every enterable state whose
        label contains it (the ANML image of the transition function)."""
        self._check_fresh()
        column = self.label_matrix()[:, symbol]
        enterable = self.enterable_states()
        return frozenset(
            sid for sid in np.flatnonzero(column).tolist() if sid in enterable
        )

    def range_sizes(self) -> np.ndarray:
        """Array of 256 range sizes, one per symbol."""
        self._check_fresh()
        matrix = self.label_matrix().copy()
        enterable = self.enterable_states()
        blocked = [sid for sid in range(len(self.automaton)) if sid not in enterable]
        if blocked:
            matrix[blocked, :] = False
        return matrix.sum(axis=0)

    # -- connected components ----------------------------------------------

    def component_index(self) -> list[int]:
        """``component_index()[sid]`` is the id of sid's (undirected)
        connected component."""
        self._check_fresh()
        if self._component_index is None:
            self._compute_components()
        assert self._component_index is not None
        return self._component_index

    def connected_components(self) -> list[frozenset[int]]:
        """All connected components, ordered by smallest member id."""
        self._check_fresh()
        if self._components is None:
            self._compute_components()
        assert self._components is not None
        return self._components

    def _compute_components(self) -> None:
        count = len(self.automaton)
        parent = list(range(count))

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for src, dst in self.automaton.edges():
            root_a, root_b = find(src), find(dst)
            if root_a != root_b:
                parent[root_b] = root_a

        groups: dict[int, list[int]] = {}
        for sid in range(count):
            groups.setdefault(find(sid), []).append(sid)
        ordered = sorted(groups.values(), key=lambda members: members[0])
        self._components = [frozenset(members) for members in ordered]
        index = [0] * count
        for cid, members in enumerate(ordered):
            for sid in members:
                index[sid] = cid
        self._component_index = index

    # -- always-active states ----------------------------------------------

    def always_active_depths(self) -> dict[int, int]:
        """Bootstrap depths of always-matched states (the ASG basis).

        A state with depth ``d`` is guaranteed matched at every input
        offset ``t >= d``, independent of the input content:

        * depth 0 — all-input start states with a full-alphabet label,
          and start-of-data start states with a full label and a self
          loop (matched at offset 0, then self-sustained);
        * depth ``d(p) + 1`` — any full-label state with a predecessor
          ``p`` already in the group (``p`` matches every cycle, so the
          state is enabled every cycle and its full label always hits).

        The depth matters for exactness: a segment starting at offset
        ``o`` may only treat states with ``d <= o`` as always active.
        """
        self._check_fresh()
        automaton = self.automaton
        depths: dict[int, int] = {}
        for ste in automaton.states():
            if not ste.label.is_full():
                continue
            if ste.start is StartKind.ALL_INPUT:
                depths[ste.sid] = 0
            elif ste.start is StartKind.START_OF_DATA and automaton.has_self_loop(
                ste.sid
            ):
                depths[ste.sid] = 0
        changed = True
        while changed:
            changed = False
            for ste in automaton.states():
                if not ste.label.is_full():
                    continue
                best = depths.get(ste.sid)
                for pred in automaton.predecessors(ste.sid):
                    if pred in depths and pred != ste.sid:
                        candidate = depths[pred] + 1
                        if best is None or candidate < best:
                            best = candidate
                if best is not None and best != depths.get(ste.sid):
                    depths[ste.sid] = best
                    changed = True
        return depths

    def always_active_states(self, max_depth: int = 0) -> frozenset[int]:
        """The Active State Group (Section 3.3.2): states guaranteed
        matched at every offset ``t >= max_depth``."""
        self._check_fresh()
        return frozenset(
            sid
            for sid, depth in self.always_active_depths().items()
            if depth <= max_depth
        )

    def path_independent_states(self, max_depth: int = 0) -> frozenset[int]:
        """States whose matched status at offsets ``t >= max_depth``
        depends only on the input symbol at ``t``, never on history.

        These are the all-input start states (persistently enabled, so a
        match is purely a label test) together with the always-active
        group at ``max_depth``.  The PAP ASG flow reproduces exactly
        these states, so enumeration flows may drop them; see
        :mod:`repro.core.merging`.
        """
        self._check_fresh()
        independent = set(self.always_active_states(max_depth))
        independent.update(self.automaton.all_input_states())
        return frozenset(independent)

    # -- reachability -------------------------------------------------------

    def reachable_states(self) -> frozenset[int]:
        """States reachable from any start state along edges."""
        self._check_fresh()
        if self._reachable is None:
            automaton = self.automaton
            seen = set(automaton.start_states())
            frontier = list(seen)
            while frontier:
                sid = frontier.pop()
                for dst in automaton.successors(sid):
                    if dst not in seen:
                        seen.add(dst)
                        frontier.append(dst)
            self._reachable = frozenset(seen)
        return self._reachable

    def coreachable_states(self) -> frozenset[int]:
        """States from which some reporting state is reachable along
        edges (reporting states included).  Empty when the automaton has
        no reporting states."""
        self._check_fresh()
        if self._coreachable is None:
            automaton = self.automaton
            seen = set(automaton.reporting_states())
            frontier = list(seen)
            while frontier:
                sid = frontier.pop()
                for src in automaton.predecessors(sid):
                    if src not in seen:
                        seen.add(src)
                        frontier.append(src)
            self._coreachable = frozenset(seen)
        return self._coreachable

    def dead_states(self) -> frozenset[int]:
        """Reachable states that can never contribute to a report.

        A state is dead when it is reachable from a start state but no
        reporting state is reachable from it.  For automata with no
        reporting states at all (pure filters are legal) the notion is
        vacuous and the result is empty.
        """
        self._check_fresh()
        if not self.automaton.reporting_states():
            return frozenset()
        return self.reachable_states() - self.coreachable_states()

    # -- parents ------------------------------------------------------------

    def parents_of(self, sid: int) -> tuple[int, ...]:
        """Predecessors of ``sid`` (the paper's parent states)."""
        self._check_fresh()
        return self.automaton.predecessors(sid)

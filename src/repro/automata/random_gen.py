"""Seeded random automata for property-based testing.

Two flavours:

* :func:`random_automaton` — unconstrained graphs (arbitrary edges,
  start kinds, labels) that stress the executor and the PAP composition
  machinery on shapes no real ruleset would produce;
* :func:`random_ruleset_automaton` — realistic pattern-matching shapes
  (unions of chains, optional shared ``.*`` hubs, branching), matching
  the structure the paper's optimizations exploit.

Every generator takes an explicit :class:`random.Random` or seed so
failures reproduce.
"""

from __future__ import annotations

import random

from repro.automata.anml import Automaton, StartKind
from repro.automata.builder import attach_pattern, star_self_loop
from repro.automata.charclass import CharClass


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_label(
    rng: random.Random, *, alphabet: bytes = b"abcd", full_probability: float = 0.1
) -> CharClass:
    """A random non-empty label over a small alphabet (small alphabets
    make random inputs actually exercise matches)."""
    if rng.random() < full_probability:
        return CharClass.full()
    size = rng.randint(1, max(1, len(alphabet) - 1))
    return CharClass(rng.sample(list(alphabet), size))


def random_automaton(
    seed: int | random.Random,
    *,
    num_states: int = 12,
    edge_probability: float = 0.15,
    alphabet: bytes = b"abcd",
    report_probability: float = 0.3,
) -> Automaton:
    """An arbitrary homogeneous automaton (adversarial shape).

    Guarantees at least one start state; start kinds, self loops and
    reporting flags are all randomized.
    """
    rng = _rng(seed)
    automaton = Automaton(name=f"random-{num_states}")
    for index in range(num_states):
        roll = rng.random()
        if roll < 0.15:
            start = StartKind.ALL_INPUT
        elif roll < 0.35:
            start = StartKind.START_OF_DATA
        else:
            start = StartKind.NONE
        automaton.add_state(
            random_label(rng, alphabet=alphabet),
            start=start,
            reporting=rng.random() < report_probability,
            report_code=index,
        )
    if not automaton.start_states():
        # Rebuild state 0 cannot be done in-place (append-only), so add a
        # dedicated start state instead.
        sid = automaton.add_state(
            random_label(rng, alphabet=alphabet),
            start=StartKind.START_OF_DATA,
        )
        automaton.add_edge(sid, rng.randrange(num_states))
    for src in range(automaton.num_states):
        for dst in range(automaton.num_states):
            if rng.random() < edge_probability:
                automaton.add_edge(src, dst)
    return automaton


def random_ruleset_automaton(
    seed: int | random.Random,
    *,
    num_patterns: int = 8,
    min_length: int = 2,
    max_length: int = 6,
    alphabet: bytes = b"abcdef",
    anchored_probability: float = 0.3,
    shared_hub: bool = True,
) -> Automaton:
    """A union of random patterns, shaped like a real ruleset.

    Unanchored patterns hang off a shared always-active ``.*`` hub when
    ``shared_hub`` is set (the AP idiom), or get their own all-input
    head otherwise.
    """
    rng = _rng(seed)
    automaton = Automaton(name=f"ruleset-{num_patterns}")
    hub = star_self_loop(automaton) if shared_hub else None
    for pattern_index in range(num_patterns):
        length = rng.randint(min_length, max_length)
        labels = [random_label(rng, alphabet=alphabet) for _ in range(length)]
        anchored = rng.random() < anchored_probability
        if anchored or hub is None:
            first = automaton.add_state(
                labels[0],
                start=(
                    StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
                ),
            )
            previous = first
            for label in labels[1:-1]:
                sid = automaton.add_state(label)
                automaton.add_edge(previous, sid)
                previous = sid
            tail_label = labels[-1] if length > 1 else labels[0]
            if length > 1:
                tail = automaton.add_state(
                    tail_label, reporting=True, report_code=pattern_index
                )
                automaton.add_edge(previous, tail)
            else:
                # Single-state pattern: make the head itself report by
                # appending a reporting twin fed from the head.
                tail = automaton.add_state(
                    tail_label, reporting=True, report_code=pattern_index
                )
                automaton.add_edge(first, tail)
        else:
            attach_pattern(automaton, hub, labels, report_code=pattern_index)
    return automaton


def random_input(
    seed: int | random.Random, *, length: int = 64, alphabet: bytes = b"abcdef"
) -> bytes:
    """A random input string over the same small alphabet."""
    rng = _rng(seed)
    return bytes(rng.choice(alphabet) for _ in range(length))

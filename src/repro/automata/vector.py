"""Bit-parallel vectorized flow execution.

This is the PaREM-style rival to the active-set walk in
:mod:`repro.automata.execution`: a flow's current set is one packed
bitset (little-endian, state ``s`` at bit ``s``) and one step is a
handful of word-parallel AND/OR operations over precompiled per-
symbol-class transition tables instead of a per-state dict/set walk.
The tables are compiled once per automaton with NumPy (lazily, on the
first vector flow) and shared by every flow:

* **Symbol classes** — two symbols are equivalent when every state
  label contains either both or neither, so the 256-symbol alphabet
  collapses to a handful of classes (5 for Levenshtein/Hamming, ~37
  for the Snort family; computed by deduplicating the label-membership
  matrix columns with ``np.unique``).  Per class ``c``,
  ``match_masks[c]`` is the bitset of states whose label contains the
  class.
* **Successor rows** — ``rows[s]`` is the bitset of successors of
  ``s``.  Because intersection distributes over union, one step is::

      cur' = (union of rows[s] for s in cur) & match_masks[class(b)]
             | (persistent & match_masks[class(b)])

  with the one-shot set OR'd in on the first step only and the
  excluded set masked off last — exactly the semantics of
  :meth:`~repro.automata.execution.FlowExecution.step`.

The successor union is evaluated 64 states at a time: the current
bitset is split into 64-bit limbs, and each non-zero limb indexes a
lazily-built class table mapping the limb's *value* to the
(class-masked) union of its states' successor rows.  Limb values recur
heavily — active states cluster and trajectories cycle — so after a
short warm-up almost every step is a few dictionary hits and wide
integer ORs, both of which run as single C loops over machine words.
The limb tables are keyed by class only, so every flow of a scheduler
run (ASG, enumeration, golden) shares one warm cache.

Accounting is bit-exact with the set path: per step, ``transitions``
grows by ``popcount(cur')`` and a report fires for every reporting
state in ``cur'``, emitted in ascending sid order — the same multiset,
order, ``transitions`` and ``state_vector()`` values
:class:`FlowExecution` produces, which is what keeps SVC, convergence
and deactivation accounting identical across executors.

Like the set path, the executor exploits the ``latchable`` states
(full-label self-loops: once matched, matched forever).  The latched
part of the bitset is monotone, so its successor union is maintained
*incrementally* — one wide OR per newly latched state, ever — and the
per-symbol limb scan touches only the volatile remainder.  Saturated
automata (SPM, Dotstar) would otherwise pay for their whole stable
active set on every symbol, exactly the failure mode latching removes
from the set walk.

The crossover mirrors the SFA-versus-NFA tradeoff: bit-parallel
stepping pays per *limb touched* and wins when many states are active
at once (Levenshtein, Hamming — the transition-bound workloads); the
active-set walk pays per *active state* and stays ahead on large
automata whose live set is a handful of states (Snort, ClamAV).
"""

from __future__ import annotations

from struct import Struct
from typing import Iterable

import numpy as np

from repro.automata.execution import CompiledAutomaton, Report

__all__ = ["VectorTables", "VectorFlowExecution", "LIMB_CACHE_BUDGET"]

LIMB_CACHE_BUDGET = 128 << 20
"""Approximate byte budget for cached limb-value entries per automaton
across all classes.  Each entry holds one packed successor-union
bitset, charged at its actual width plus dict overhead; past the
budget, misses are still computed exactly but no longer stored, which
bounds table memory on automata whose active sets never repeat
(Fermi) without touching the common case."""


class VectorTables:
    """Shared per-automaton tables for bit-parallel execution.

    Built lazily by :meth:`CompiledAutomaton.vector_tables` and cached
    on the compiled automaton, so the (one-time) compilation cost is
    paid only by runs that select the vector strategy.  The class
    structure is derived with NumPy (label-mask membership matrix,
    column dedup via ``np.unique``); the packed bitsets are carried as
    Python integers, whose wide AND/OR are single C loops over 30-bit
    limbs — on-par with a uint64 array pass, without per-call array
    overhead in the per-symbol loop.
    """

    __slots__ = (
        "compiled",
        "num_states",
        "limbs",
        "nbytes",
        "num_classes",
        "class_of",
        "match_masks",
        "rows",
        "reporting_mask",
        "latchable_mask",
        "full_mask",
        "_unpack",
        "_limb_tables",
        "_limb_budget",
        "_report_sids",
    )

    def __init__(self, compiled: CompiledAutomaton) -> None:
        self.compiled = compiled
        n = len(compiled)
        self.num_states = n
        self.limbs = max(1, (n + 63) // 64)
        self.nbytes = self.limbs * 8

        # -- symbol classes (NumPy) ---------------------------------------
        # Distinct label masks -> per-mask 256-symbol membership rows;
        # symbols with identical membership *columns* are one class.
        uniq_index: dict[int, int] = {}
        uniq_rows: list[np.ndarray] = []
        state_uniq = [0] * n
        for sid, mask in enumerate(compiled.label_masks):
            row = uniq_index.get(mask)
            if row is None:
                row = len(uniq_rows)
                uniq_index[mask] = row
                uniq_rows.append(
                    np.unpackbits(
                        np.frombuffer(
                            mask.to_bytes(32, "little"), dtype=np.uint8
                        ),
                        bitorder="little",
                    )
                )
            state_uniq[sid] = row
        if not uniq_rows:  # zero-state automaton (validate() forbids it)
            uniq_rows.append(np.zeros(256, dtype=np.uint8))
        memb = np.stack(uniq_rows)  # (num distinct masks, 256)
        _, inverse = np.unique(memb, axis=1, return_inverse=True)
        class_list = inverse.reshape(256).astype(np.int64).tolist()
        self.class_of: list[int] = class_list
        self.num_classes = max(class_list) + 1

        # Per-class state membership: state s matches class c iff its
        # label contains the class's representative (hence every)
        # symbol.
        reps = [0] * self.num_classes
        for symbol in range(255, -1, -1):
            reps[class_list[symbol]] = symbol
        memb_bool = memb.astype(bool)
        uniq_of_state = np.asarray(state_uniq, dtype=np.int64)
        self.match_masks: list[int] = [
            self._pack_bool(memb_bool[:, reps[cls]][uniq_of_state])
            for cls in range(self.num_classes)
        ]

        # -- successor rows ----------------------------------------------
        # Built byte-wise: a wide ``1 << dst`` allocates an n-bit integer
        # per edge, which hurts on the 30k-state automata.
        nbytes = self.nbytes
        self.rows: list[int] = [0] * n
        for sid, successors in enumerate(compiled.succ):
            buf = bytearray(nbytes)
            for dst in successors:
                buf[dst >> 3] |= 1 << (dst & 7)
            self.rows[sid] = int.from_bytes(buf, "little")

        self.reporting_mask = self.encode(compiled.reporting)
        self.latchable_mask = self.encode(compiled.latchable)
        self.full_mask = (1 << n) - 1 if n else 0
        self._unpack = Struct("<%dQ" % self.limbs).unpack

        # limb tables: [class][limb position] -> {limb value: union of
        # class-masked successor rows}; shared by every flow.
        self._limb_tables: list[list[dict[int, int]]] = [
            [{} for _ in range(self.limbs)]
            for _ in range(self.num_classes)
        ]
        self._limb_budget = LIMB_CACHE_BUDGET
        # reporting-subset decode cache: masked bitset -> ascending sids
        self._report_sids: dict[int, tuple[int, ...]] = {}

    # -- encoding --------------------------------------------------------

    def encode(self, sids: Iterable[int]) -> int:
        """Pack a state-id collection into a bitset."""
        buf = bytearray(self.nbytes)
        for sid in sids:
            buf[sid >> 3] |= 1 << (sid & 7)
        return int.from_bytes(buf, "little")

    def decode(self, bits: int) -> frozenset[int]:
        """The state-id set a bitset represents."""
        out = []
        while bits:
            low = bits & -bits
            out.append(low.bit_length() - 1)
            bits ^= low
        return frozenset(out)

    def _pack_bool(self, bools: np.ndarray) -> int:
        packed = np.packbits(
            bools.astype(np.uint8, copy=False), bitorder="little"
        )
        return int.from_bytes(packed.tobytes(), "little")

    # -- stepping primitives ---------------------------------------------

    def limbs_of(self, bits: int) -> tuple[int, ...]:
        """Split a bitset into its ``limbs`` 64-bit limb values."""
        return self._unpack(bits.to_bytes(self.nbytes, "little"))

    def successor_union(self, cls: int, position: int, value: int) -> int:
        """Class-masked successor union for one 64-bit limb value.

        Cache misses fold the individual successor rows of the limb's
        set bits; hits are one dict lookup.  The cache is exact — only
        its *occupancy* is budget-bounded.
        """
        table = self._limb_tables[cls][position]
        union = table.get(value)
        if union is None:
            match = self.match_masks[cls]
            rows = self.rows
            base = position << 6
            union = 0
            remaining = value
            while remaining:
                low = remaining & -remaining
                union |= rows[base + low.bit_length() - 1]
                remaining ^= low
            union &= match
            if self._limb_budget > 0:
                # Charge the entry's true footprint: the union's digits
                # plus ~100 bytes of dict-slot and key overhead.
                self._limb_budget -= 100 + (union.bit_length() >> 3)
                table[value] = union
        return union

    def report_sids(self, reporting_bits: int) -> tuple[int, ...]:
        """Ascending sids of a reporting-subset bitset (cached)."""
        sids = self._report_sids.get(reporting_bits)
        if sids is None:
            sids = tuple(sorted(self.decode(reporting_bits)))
            self._report_sids[reporting_bits] = sids
        return sids


class VectorFlowExecution:
    """Bit-parallel drop-in for :class:`FlowExecution`.

    Same constructor, same stepping semantics, same observable surface
    (``reports`` / ``transitions`` / ``symbols_processed`` /
    ``state_vector()`` / ``current`` / ``is_dead()`` / ``clone()``),
    byte-for-byte identical accounting — only the execution strategy
    differs.  See the module docstring for the recurrence.
    """

    __slots__ = (
        "compiled",
        "tables",
        "persistent",
        "one_shot",
        "excluded",
        "reports",
        "symbols_processed",
        "transitions",
        "_started",
        "_cur",
        "_lat",
        "_not_lat",
        "_lat_rows",
        "_pers_by_class",
        "_one_mask",
        "_not_excluded",
        "_rep_mask",
    )

    def __init__(
        self,
        compiled: CompiledAutomaton,
        *,
        initial_current: Iterable[int] = (),
        persistent: frozenset[int] | None = None,
        one_shot: frozenset[int] | None = None,
        excluded: frozenset[int] = frozenset(),
    ) -> None:
        self.compiled = compiled
        tables = compiled.vector_tables()
        self.tables = tables
        self.persistent = (
            compiled.all_input if persistent is None else persistent
        )
        self.one_shot = (
            compiled.start_of_data if one_shot is None else one_shot
        )
        self.excluded = excluded
        self.reports: list[Report] = []
        self.symbols_processed = 0
        self.transitions = 0
        self._started = False
        self._cur = tables.encode(initial_current)
        self._not_excluded = (
            tables.full_mask & ~tables.encode(excluded) if excluded else 0
        )
        # Latched bookkeeping: the monotone part of the current set and
        # the (incrementally maintained) union of its successor rows.
        # Excluded latchable states never latch — they wash out of the
        # current set on the first step, like the set path's `_admit`.
        lat = self._cur & tables.latchable_mask
        if excluded:
            lat &= self._not_excluded
        self._lat = 0
        self._not_lat = -1
        self._lat_rows = 0
        if lat:
            self._grow_latched(lat)
        # Per-class masked persistent set, filled lazily by _pers_for.
        # -1 marks "not yet masked"; the unmasked set rides in a scratch
        # slot past the class indices (class lookups never reach it).
        pers_mask = tables.encode(self.persistent)
        if pers_mask:
            self._pers_by_class = [-1] * tables.num_classes
            self._pers_by_class.append(pers_mask)
        else:
            self._pers_by_class = [0] * tables.num_classes
        self._one_mask = tables.encode(self.one_shot)
        self._rep_mask = tables.reporting_mask

    def _grow_latched(self, delta: int) -> None:
        """Fold newly latched states into the monotone latched part.

        ``delta`` is a bitset of latchable, non-excluded states newly
        seen in a current set.  Each state is OR'd into the latched
        successor union exactly once, ever — afterwards its whole
        contribution to a step costs nothing.
        """
        rows = self.tables.rows
        lat_rows = self._lat_rows
        remaining = delta
        while remaining:
            low = remaining & -remaining
            lat_rows |= rows[low.bit_length() - 1]
            remaining ^= low
        self._lat_rows = lat_rows
        self._lat |= delta
        self._not_lat = ~self._lat

    def _pers_for(self, cls: int) -> int:
        cached = self._pers_by_class[cls]
        if cached >= 0:
            return cached
        masked = self._pers_by_class[-1] & self.tables.match_masks[cls]
        self._pers_by_class[cls] = masked
        return masked

    # -- stepping ---------------------------------------------------------

    def step(self, symbol: int, offset: int) -> None:
        """Consume one symbol whose global input offset is ``offset``."""
        self.run(bytes((symbol,)), offset)

    def run(self, data: bytes, base_offset: int = 0) -> None:
        """Consume every byte of ``data``; offsets start at
        ``base_offset``."""
        if not data:
            return
        tables = self.tables
        class_of = tables.class_of
        match_masks = tables.match_masks
        limbs_of = tables.limbs_of
        union = tables.successor_union
        latchable = tables.latchable_mask
        pers_by_class = self._pers_by_class
        pers_for = self._pers_for
        not_excluded = self._not_excluded
        rep_mask = self._rep_mask
        report_sids = tables.report_sids
        codes = self.compiled.report_codes
        reports = self.reports
        started = self._started
        cur = self._cur
        lat = self._lat
        transitions = self.transitions
        offset = base_offset
        for symbol in data:
            cls = class_of[symbol]
            pers = pers_by_class[cls]
            if pers < 0:
                pers = pers_for(cls)
            acc = pers
            if lat:
                acc |= self._lat_rows & match_masks[cls]
            volatile = cur & self._not_lat
            if volatile:
                for position, value in enumerate(limbs_of(volatile)):
                    if value:
                        acc |= union(cls, position, value)
            if not started:
                started = True
                if self._one_mask:
                    acc |= self._one_mask & match_masks[cls]
            if not_excluded:
                acc &= not_excluded
            cur = acc
            if latchable:
                fresh_latched = acc & latchable & self._not_lat
                if fresh_latched:
                    self._grow_latched(fresh_latched)
                    lat = self._lat
            transitions += acc.bit_count()
            hits = acc & rep_mask
            if hits:
                reports.extend(
                    Report(offset=offset, element=sid, code=codes[sid])
                    for sid in report_sids(hits)
                )
            offset += 1
        self._started = started
        self._cur = cur
        self.transitions = transitions
        self.symbols_processed += len(data)

    # -- inspection -----------------------------------------------------

    @property
    def current(self) -> set[int]:
        """The full current (just-matched) state set."""
        return set(self.tables.decode(self._cur))

    def state_vector(self) -> frozenset[int]:
        """Canonical snapshot of the dynamic state — bit-identical to
        the set path's, which is what keeps SVC save/compare traffic
        and convergence/deactivation decisions strategy-invariant."""
        return self.tables.decode(self._cur)

    def is_dead(self) -> bool:
        """True when this flow can never match again (see
        :meth:`FlowExecution.is_dead`)."""
        if self._cur or self.persistent:
            return False
        return self._started or not self.one_shot

    def clone(self) -> "VectorFlowExecution":
        """An independent copy sharing the compiled tables."""
        twin = VectorFlowExecution(
            self.compiled,
            initial_current=self.state_vector(),
            persistent=self.persistent,
            one_shot=self.one_shot,
            excluded=self.excluded,
        )
        twin.reports = list(self.reports)
        twin.symbols_processed = self.symbols_processed
        twin.transitions = self.transitions
        twin._started = self._started
        return twin

"""Homogeneous (ANML-style) automata.

The Micron AP represents NFAs in the homogeneous *ANML* form: every state
(State-Transition Element, STE) carries the character class it matches,
and edges are unlabeled.  A state *matches* in a cycle when it is enabled
(some predecessor matched the previous symbol, or it is a start state) and
the current input symbol is in its label.

:class:`Automaton` is the central data structure of this library.  It is
append-only: states and edges can be added but never removed, which lets
analyses cache derived structure keyed on a version counter.  Use
:meth:`Automaton.compact` to obtain a renumbered copy restricted to a
subset of states when pruning is needed.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


class StartKind(enum.Enum):
    """How a state participates in starting the automaton.

    ``NONE``
        An interior state: enabled only via incoming edges.
    ``START_OF_DATA``
        Enabled for the very first input symbol only (ANML
        ``start-of-data``).
    ``ALL_INPUT``
        Persistently enabled on every input symbol (ANML ``all-input``);
        this is how leading ``.*`` of patterns is realized on the AP.
    """

    NONE = "none"
    START_OF_DATA = "start-of-data"
    ALL_INPUT = "all-input"


@dataclass(frozen=True)
class Ste:
    """One state-transition element.

    Attributes
    ----------
    sid:
        Dense integer id; equals the state's index in the automaton.
    label:
        The character class this state matches.
    start:
        The state's :class:`StartKind`.
    reporting:
        True when a match of this state emits a report event.
    report_code:
        Report payload communicated to the host; defaults to ``sid``.
    name:
        Optional human-readable name for diagnostics.
    """

    sid: int
    label: CharClass
    start: StartKind = StartKind.NONE
    reporting: bool = False
    report_code: int | None = None
    name: str = ""

    @property
    def code(self) -> int:
        """The effective report code (``report_code`` or ``sid``)."""
        return self.sid if self.report_code is None else self.report_code


@dataclass
class Automaton:
    """A homogeneous automaton: labeled states with unlabeled edges.

    States are identified by dense integer ids assigned by
    :meth:`add_state`.  The structure is append-only; derived analyses
    (predecessor lists, start sets) are cached and invalidated through a
    version counter that bumps on every mutation.
    """

    name: str = "automaton"
    _states: list[Ste] = field(default_factory=list)
    _succ: list[list[int]] = field(default_factory=list)
    _version: int = 0
    _pred_cache: tuple[int, list[tuple[int, ...]]] | None = None

    # -- construction ---------------------------------------------------

    def add_state(
        self,
        label: CharClass,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_code: int | None = None,
        name: str = "",
    ) -> int:
        """Append a state and return its new id."""
        sid = len(self._states)
        self._states.append(
            Ste(
                sid=sid,
                label=label,
                start=start,
                reporting=reporting,
                report_code=report_code,
                name=name,
            )
        )
        self._succ.append([])
        self._version += 1
        return sid

    def add_edge(self, src: int, dst: int) -> None:
        """Add the edge ``src -> dst``; duplicate edges are ignored."""
        self._check_sid(src)
        self._check_sid(dst)
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._version += 1

    def add_edges(self, src: int, dsts: Iterable[int]) -> None:
        for dst in dsts:
            self.add_edge(src, dst)

    # -- basic queries ---------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation (for cache keys)."""
        return self._version

    def __len__(self) -> int:
        return len(self._states)

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_edges(self) -> int:
        return sum(len(out) for out in self._succ)

    def state(self, sid: int) -> Ste:
        self._check_sid(sid)
        return self._states[sid]

    def states(self) -> Iterator[Ste]:
        return iter(self._states)

    def successors(self, sid: int) -> tuple[int, ...]:
        self._check_sid(sid)
        return tuple(self._succ[sid])

    def predecessors(self, sid: int) -> tuple[int, ...]:
        self._check_sid(sid)
        return self._predecessor_table()[sid]

    def edges(self) -> Iterator[tuple[int, int]]:
        for src, outs in enumerate(self._succ):
            for dst in outs:
                yield src, dst

    def start_states(self) -> tuple[int, ...]:
        """Ids of all states with a non-``NONE`` start kind."""
        return tuple(s.sid for s in self._states if s.start is not StartKind.NONE)

    def start_of_data_states(self) -> tuple[int, ...]:
        return tuple(s.sid for s in self._states if s.start is StartKind.START_OF_DATA)

    def all_input_states(self) -> tuple[int, ...]:
        return tuple(s.sid for s in self._states if s.start is StartKind.ALL_INPUT)

    def reporting_states(self) -> tuple[int, ...]:
        return tuple(s.sid for s in self._states if s.reporting)

    def has_self_loop(self, sid: int) -> bool:
        self._check_sid(sid)
        return sid in self._succ[sid]

    def states_matching(self, symbol: int) -> tuple[int, ...]:
        """Ids of every state whose label contains ``symbol``."""
        return tuple(s.sid for s in self._states if symbol in s.label)

    # -- validation and transforms ----------------------------------------

    def validate(self) -> None:
        """Raise :class:`AutomatonError` on structural problems.

        Checks: at least one start state, no empty labels, no dangling
        edge endpoints (impossible via the API but guarded for
        deserialized automata), and that some reporting state exists when
        the automaton is non-trivial is *not* required (pure filters are
        legal), but reporting states are allowed outgoing edges here even
        though AP hardware forbids them — :mod:`repro.ap.placement`
        enforces the hardware rule.
        """
        if self._states and not self.start_states():
            raise AutomatonError(f"automaton {self.name!r} has no start states")
        for ste in self._states:
            if not ste.label:
                raise AutomatonError(
                    f"state {ste.sid} of {self.name!r} has an empty label"
                )
        for src, outs in enumerate(self._succ):
            for dst in outs:
                if not 0 <= dst < len(self._states):
                    raise AutomatonError(
                        f"edge {src}->{dst} of {self.name!r} is dangling"
                    )

    def compact(self, keep: Iterable[int], name: str | None = None) -> "Automaton":
        """A renumbered copy containing only ``keep`` states.

        Edges with either endpoint outside ``keep`` are dropped.  The
        relative order of kept states is preserved, so ids stay stable
        across repeated compactions with the same ``keep`` set.
        """
        keep_sorted = sorted(set(keep))
        remap = {old: new for new, old in enumerate(keep_sorted)}
        out = Automaton(name=name or self.name)
        for old in keep_sorted:
            ste = self._states[old]
            out.add_state(
                ste.label,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
                name=ste.name,
            )
        for old in keep_sorted:
            for dst in self._succ[old]:
                if dst in remap:
                    out.add_edge(remap[old], remap[dst])
        return out

    def copy(self, name: str | None = None) -> "Automaton":
        return self.compact(range(len(self._states)), name=name)

    def union(self, other: "Automaton", name: str | None = None) -> "Automaton":
        """Disjoint union: both automata side by side, ids of ``other``
        shifted past this automaton's ids."""
        out = self.copy(name=name or f"{self.name}+{other.name}")
        offset = len(self._states)
        for ste in other.states():
            out.add_state(
                ste.label,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
                name=ste.name,
            )
        for src, dst in other.edges():
            out.add_edge(src + offset, dst + offset)
        return out

    # -- internals ---------------------------------------------------------

    def _check_sid(self, sid: int) -> None:
        if not 0 <= sid < len(self._states):
            raise AutomatonError(f"unknown state id {sid} in {self.name!r}")

    def _predecessor_table(self) -> list[tuple[int, ...]]:
        if self._pred_cache is not None and self._pred_cache[0] == self._version:
            return self._pred_cache[1]
        preds: list[list[int]] = [[] for _ in self._states]
        for src, outs in enumerate(self._succ):
            for dst in outs:
                preds[dst].append(src)
        table = [tuple(p) for p in preds]
        self._pred_cache = (self._version, table)
        return table

    def __repr__(self) -> str:
        return (
            f"Automaton(name={self.name!r}, states={self.num_states}, "
            f"edges={self.num_edges})"
        )

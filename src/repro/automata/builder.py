"""Convenience constructors for common automaton shapes.

The workload generators and many tests build automata from the same small
set of shapes: literal-string chains, chains of character classes, and
patterns anchored by a leading ``.*`` (realized on the AP as an all-input
start state).  Centralizing them here keeps the generators declarative.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


def chain(
    automaton: Automaton,
    labels: Sequence[CharClass],
    *,
    start: StartKind = StartKind.START_OF_DATA,
    report_code: int | None = None,
    name_prefix: str = "",
) -> list[int]:
    """Append a linear chain of states matching ``labels`` in order.

    The first state gets ``start`` and the last state reports.  Returns
    the ids of the chain states in order.
    """
    if not labels:
        raise AutomatonError("cannot build an empty chain")
    sids: list[int] = []
    for index, label in enumerate(labels):
        is_last = index == len(labels) - 1
        sid = automaton.add_state(
            label,
            start=start if index == 0 else StartKind.NONE,
            reporting=is_last,
            report_code=report_code if is_last else None,
            name=f"{name_prefix}{index}" if name_prefix else "",
        )
        if sids:
            automaton.add_edge(sids[-1], sid)
        sids.append(sid)
    return sids


def literal(
    automaton: Automaton,
    text: str | bytes,
    *,
    start: StartKind = StartKind.START_OF_DATA,
    report_code: int | None = None,
) -> list[int]:
    """Append a chain matching the exact byte string ``text``."""
    data = text.encode("latin-1") if isinstance(text, str) else bytes(text)
    return chain(
        automaton,
        [CharClass.single(byte) for byte in data],
        start=start,
        report_code=report_code,
    )


def unanchored(
    automaton: Automaton,
    labels: Sequence[CharClass],
    *,
    report_code: int | None = None,
) -> list[int]:
    """Append ``.*`` followed by the ``labels`` chain.

    On the AP the leading ``.*`` is a single all-input start state; the
    pattern can begin matching at any input offset.  Returns the chain
    ids, *excluding* the ``.*`` state (which is ``result[0] - 1`` ... not
    guaranteed; use the automaton if the ``.*`` state id is needed).
    """
    sids = chain(
        automaton, labels, start=StartKind.ALL_INPUT, report_code=report_code
    )
    return sids


def star_self_loop(automaton: Automaton) -> int:
    """Add a classic always-active hub: all-input start, ``*`` label,
    self loop.  Patterns hung off this state are fully unanchored."""
    sid = automaton.add_state(CharClass.full(), start=StartKind.ALL_INPUT)
    automaton.add_edge(sid, sid)
    return sid


def attach_pattern(
    automaton: Automaton,
    hub: int,
    labels: Sequence[CharClass],
    *,
    report_code: int | None = None,
) -> list[int]:
    """Hang a chain for ``labels`` off an existing hub state.

    The chain head is additionally a start-of-data state: a ``.*``-hub
    enables children only from the second symbol onward, so without the
    start mark an occurrence at input offset 0 would be missed.  This
    mirrors what regex-to-ANML conversion produces for ``.*pattern``.
    """
    if not labels:
        raise AutomatonError("cannot attach an empty pattern")
    sids: list[int] = []
    for index, label in enumerate(labels):
        is_last = index == len(labels) - 1
        sid = automaton.add_state(
            label,
            start=StartKind.START_OF_DATA if index == 0 else StartKind.NONE,
            reporting=is_last,
            report_code=report_code if is_last else None,
        )
        automaton.add_edge(hub if not sids else sids[-1], sid)
        sids.append(sid)
    return sids


def classes_for(text: str | bytes) -> list[CharClass]:
    """Single-symbol classes for each byte of ``text``."""
    data = text.encode("latin-1") if isinstance(text, str) else bytes(text)
    return [CharClass.single(byte) for byte in data]


def merge_all(automata: Iterable[Automaton], name: str = "union") -> Automaton:
    """Disjoint union of any number of automata."""
    result = Automaton(name=name)
    for automaton in automata:
        result = result.union(automaton, name=name)
    return result

"""256-symbol character classes.

The Automata Processor matches 8-bit symbols: every state-transition
element (STE) stores a 256-bit column that one-hot encodes the set of
symbols the state matches.  :class:`CharClass` models exactly that column
as an immutable 256-bit integer bitmask, which makes the set algebra used
throughout the library (range profiling, label intersection during
stepping, prefix merging) cheap and hashable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import AutomatonError

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1


class CharClass:
    """An immutable set of 8-bit symbols, stored as a 256-bit bitmask.

    Instances support the standard set operators (``|``, ``&``, ``-``,
    ``^``), containment tests with ``in`` (accepting either an ``int``
    symbol or a 1-character ``str``), iteration over member symbols, and
    equality/hashing by value.
    """

    __slots__ = ("_mask",)

    def __init__(self, symbols: Iterable[int | str] = ()) -> None:
        mask = 0
        for symbol in symbols:
            mask |= 1 << _as_symbol(symbol)
        self._mask = mask

    @classmethod
    def from_mask(cls, mask: int) -> "CharClass":
        """Build a class directly from a 256-bit bitmask."""
        if mask < 0 or mask > _FULL_MASK:
            raise AutomatonError(f"mask out of range for 256-symbol class: {mask:#x}")
        obj = cls.__new__(cls)
        obj._mask = mask
        return obj

    @classmethod
    def single(cls, symbol: int | str) -> "CharClass":
        """The class containing exactly one symbol."""
        return cls.from_mask(1 << _as_symbol(symbol))

    @classmethod
    def full(cls) -> "CharClass":
        """The class matching every symbol (the ``*`` label)."""
        return cls.from_mask(_FULL_MASK)

    @classmethod
    def empty(cls) -> "CharClass":
        """The class matching no symbol."""
        return cls.from_mask(0)

    @classmethod
    def range(cls, low: int | str, high: int | str) -> "CharClass":
        """The inclusive symbol range ``[low-high]``."""
        lo, hi = _as_symbol(low), _as_symbol(high)
        if lo > hi:
            raise AutomatonError(f"inverted symbol range: {lo}-{hi}")
        return cls.from_mask(((1 << (hi - lo + 1)) - 1) << lo)

    @classmethod
    def from_string(cls, text: str) -> "CharClass":
        """The class of all characters appearing in ``text``."""
        return cls(text)

    @property
    def mask(self) -> int:
        """The raw 256-bit bitmask."""
        return self._mask

    def __contains__(self, symbol: object) -> bool:
        if isinstance(symbol, (int, str)):
            return bool((self._mask >> _as_symbol(symbol)) & 1)
        return False

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    def __or__(self, other: "CharClass") -> "CharClass":
        return CharClass.from_mask(self._mask | other._mask)

    def __and__(self, other: "CharClass") -> "CharClass":
        return CharClass.from_mask(self._mask & other._mask)

    def __sub__(self, other: "CharClass") -> "CharClass":
        return CharClass.from_mask(self._mask & ~other._mask)

    def __xor__(self, other: "CharClass") -> "CharClass":
        return CharClass.from_mask(self._mask ^ other._mask)

    def complement(self) -> "CharClass":
        """All symbols not in this class."""
        return CharClass.from_mask(_FULL_MASK & ~self._mask)

    def is_full(self) -> bool:
        """True when the class matches every one of the 256 symbols."""
        return self._mask == _FULL_MASK

    def isdisjoint(self, other: "CharClass") -> bool:
        return not (self._mask & other._mask)

    def issubset(self, other: "CharClass") -> bool:
        return self._mask & ~other._mask == 0

    def symbols(self) -> tuple[int, ...]:
        """The member symbols in ascending order."""
        return tuple(self)

    def sample(self) -> int:
        """An arbitrary (lowest) member symbol; errors when empty."""
        if not self._mask:
            raise AutomatonError("cannot sample from an empty character class")
        return (self._mask & -self._mask).bit_length() - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharClass) and self._mask == other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    def __repr__(self) -> str:
        return f"CharClass({self.spec()!r})"

    def spec(self) -> str:
        """A compact human-readable spec, e.g. ``'[a-c x]'`` or ``'*'``.

        The spec is for display and debugging; :mod:`repro.regex` has the
        real pattern syntax.
        """
        if self.is_full():
            return "*"
        if not self._mask:
            return "[]"
        parts = []
        for lo, hi in self.intervals():
            lo_txt, hi_txt = _symbol_text(lo), _symbol_text(hi)
            if lo == hi:
                parts.append(lo_txt)
            elif hi == lo + 1:
                parts.extend((lo_txt, hi_txt))
            else:
                parts.append(f"{lo_txt}-{hi_txt}")
        return "[" + " ".join(parts) + "]"

    def intervals(self) -> list[tuple[int, int]]:
        """Maximal runs of consecutive member symbols as (low, high) pairs."""
        runs: list[tuple[int, int]] = []
        start: int | None = None
        previous = -2
        for symbol in self:
            if symbol != previous + 1:
                if start is not None:
                    runs.append((start, previous))
                start = symbol
            previous = symbol
        if start is not None:
            runs.append((start, previous))
        return runs


def _as_symbol(value: int | str) -> int:
    """Normalize an int or 1-char string to a validated 0..255 symbol."""
    if isinstance(value, str):
        if len(value) != 1:
            raise AutomatonError(f"expected a single character, got {value!r}")
        value = ord(value)
    if not 0 <= value < ALPHABET_SIZE:
        raise AutomatonError(f"symbol out of 8-bit range: {value}")
    return value


def _symbol_text(symbol: int) -> str:
    """Printable rendering of one symbol for specs."""
    if 33 <= symbol <= 126 and chr(symbol) not in "[]-\\":
        return chr(symbol)
    return f"\\x{symbol:02x}"

"""ANML (XML) import/export.

Micron's toolchain exchanges automata as ANML — an XML dialect where
``<state-transition-element>`` nodes carry a ``symbol-set``, optional
``<report-on-match>`` / ``<activate-on-match>`` children, and a
``start`` attribute.  This module reads and writes the subset of ANML
those benchmarks use, so automata built here can be inspected with AP
tooling and published ANML machines can be imported.

Symbol sets use the bracket-expression syntax: ``[abc]``, ranges
``[a-z]``, hex escapes ``\\x41``, the ``*`` wildcard, and negation
``[^...]``.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError

_START_ATTR = {
    StartKind.NONE: None,
    StartKind.START_OF_DATA: "start-of-data",
    StartKind.ALL_INPUT: "all-input",
}
_START_KIND = {value: key for key, value in _START_ATTR.items() if value}


def symbol_set_to_anml(label: CharClass) -> str:
    """Render a character class as an ANML symbol-set expression."""
    if label.is_full():
        return "*"
    if not label:
        raise AutomatonError("ANML symbol sets cannot be empty")
    complement = label.complement()
    if 0 < len(complement) < len(label):
        return "[^" + _body(complement) + "]"
    if len(label) == 1 and _plain(label.sample()):
        return chr(label.sample())
    return "[" + _body(label) + "]"


def _body(label: CharClass) -> str:
    parts = []
    for low, high in label.intervals():
        if low == high:
            parts.append(_char(low))
        elif high == low + 1:
            parts.append(_char(low) + _char(high))
        else:
            parts.append(f"{_char(low)}-{_char(high)}")
    return "".join(parts)


def _plain(symbol: int) -> bool:
    return 33 <= symbol <= 126 and chr(symbol) not in "[]^-\\*"


def _char(symbol: int) -> str:
    if _plain(symbol):
        return chr(symbol)
    return f"\\x{symbol:02x}"


def parse_symbol_set(text: str) -> CharClass:
    """Parse an ANML symbol-set expression back into a class."""
    if text == "*":
        return CharClass.full()
    if not text.startswith("["):
        symbols = _scan(text)
        if len(symbols) != 1:
            raise AutomatonError(f"bad bare symbol set: {text!r}")
        return CharClass(symbols)
    if not text.endswith("]"):
        raise AutomatonError(f"unterminated symbol set: {text!r}")
    body = text[1:-1]
    negated = body.startswith("^")
    if negated:
        body = body[1:]
    klass = CharClass(_scan(body, ranges=True))
    return klass.complement() if negated else klass


def _scan(body: str, *, ranges: bool = False) -> list[int]:
    symbols: list[int] = []
    index = 0

    def take_one() -> int:
        nonlocal index
        char = body[index]
        if char == "\\":
            if index + 1 >= len(body):
                raise AutomatonError(f"dangling escape in {body!r}")
            escape = body[index + 1]
            if escape == "x":
                value = int(body[index + 2 : index + 4], 16)
                index += 4
                return value
            index += 2
            return ord(escape)
        index += 1
        return ord(char)

    while index < len(body):
        low = take_one()
        if (
            ranges
            and index < len(body)
            and body[index] == "-"
            and index + 1 < len(body)
        ):
            index += 1
            high = take_one()
            if high < low:
                raise AutomatonError(f"inverted range in {body!r}")
            symbols.extend(range(low, high + 1))
        else:
            symbols.append(low)
    return symbols


def automaton_to_anml_xml(automaton: Automaton) -> str:
    """Serialize to an ANML XML document string."""
    network = ET.Element(
        "automata-network", attrib={"id": automaton.name or "network"}
    )
    for ste in automaton.states():
        attrib = {
            "id": f"ste{ste.sid}",
            "symbol-set": symbol_set_to_anml(ste.label),
        }
        start = _START_ATTR[ste.start]
        if start:
            attrib["start"] = start
        element = ET.SubElement(
            network, "state-transition-element", attrib=attrib
        )
        if ste.reporting:
            ET.SubElement(
                element,
                "report-on-match",
                attrib={"reportcode": str(ste.code)},
            )
        for dst in automaton.successors(ste.sid):
            ET.SubElement(
                element, "activate-on-match", attrib={"element": f"ste{dst}"}
            )
    buffer = io.BytesIO()
    ET.ElementTree(network).write(
        buffer, encoding="utf-8", xml_declaration=True
    )
    return buffer.getvalue().decode("utf-8")


def automaton_from_anml_xml(text: str, *, validate: bool = True) -> Automaton:
    """Parse an ANML XML document into an automaton.

    ``validate=False`` skips :meth:`Automaton.validate` so diagnostic
    tooling (``repro lint``) can report on broken inputs instead of
    refusing to parse them.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise AutomatonError(f"malformed ANML XML: {error}") from error
    if root.tag != "automata-network":
        raise AutomatonError(
            f"expected <automata-network>, got <{root.tag}>"
        )
    automaton = Automaton(name=root.get("id", "network"))
    elements = list(root.iter("state-transition-element"))
    sid_of: dict[str, int] = {}
    for element in elements:
        anml_id = element.get("id")
        symbol_set = element.get("symbol-set")
        if anml_id is None or symbol_set is None:
            raise AutomatonError("STE missing id or symbol-set")
        start = _START_KIND.get(element.get("start", ""), StartKind.NONE)
        report = element.find("report-on-match")
        report_code = None
        if report is not None and report.get("reportcode") is not None:
            report_code = int(report.get("reportcode"))  # type: ignore[arg-type]
        sid = automaton.add_state(
            parse_symbol_set(symbol_set),
            start=start,
            reporting=report is not None,
            report_code=report_code,
            name=anml_id,
        )
        if anml_id in sid_of:
            raise AutomatonError(f"duplicate STE id {anml_id!r}")
        sid_of[anml_id] = sid
    for element in elements:
        src = sid_of[element.get("id")]  # type: ignore[index]
        for activation in element.findall("activate-on-match"):
            target = activation.get("element")
            if target not in sid_of:
                raise AutomatonError(
                    f"activation targets unknown STE {target!r}"
                )
            automaton.add_edge(src, sid_of[target])
    if validate:
        automaton.validate()
    return automaton

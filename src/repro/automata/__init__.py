"""Automata substrate: character classes, classic NFAs, homogeneous
(ANML-style) automata, analyses, and the functional executor."""

from repro.automata.anml import Automaton, StartKind, Ste
from repro.automata.anml_xml import (
    automaton_from_anml_xml,
    automaton_to_anml_xml,
)
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.charclass import ALPHABET_SIZE, CharClass
from repro.automata.conversion import nfa_to_anml
from repro.automata.dfa import Dfa, subset_construction
from repro.automata.minimize import minimize
from repro.automata.execution import (
    CompiledAutomaton,
    ExecutionResult,
    FlowExecution,
    Report,
    run_automaton,
)
from repro.automata.nfa import Nfa
from repro.automata.prefix_merge import compression_ratio, merge_common_prefixes

__all__ = [
    "ALPHABET_SIZE",
    "Automaton",
    "AutomatonAnalysis",
    "CharClass",
    "CompiledAutomaton",
    "Dfa",
    "ExecutionResult",
    "FlowExecution",
    "Nfa",
    "Report",
    "StartKind",
    "Ste",
    "automaton_from_anml_xml",
    "automaton_to_anml_xml",
    "compression_ratio",
    "merge_common_prefixes",
    "minimize",
    "nfa_to_anml",
    "run_automaton",
    "subset_construction",
]

"""DFA minimization (Hopcroft's algorithm).

Completes the determinization substrate: Section 2.1's blowup argument
is strongest against *minimal* DFAs, so the blowup measurements compare
NFA sizes against the canonical minimum, not an accidental subset
construction artifact.  Works over the symbol-partitioned DFAs produced
by :func:`repro.automata.dfa.subset_construction`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.automata.dfa import Dfa


def minimize(dfa: Dfa) -> Dfa:
    """Hopcroft minimization; returns an equivalent minimal DFA.

    The input must be complete (subset construction always is: the
    empty subset is an explicit dead state).  State 0 of the result is
    the class containing the input's initial state.
    """
    num_states = dfa.num_states
    num_classes = len(dfa.classes)
    if num_states == 0:
        return dfa

    accepting = frozenset(
        sid for sid in range(num_states) if dfa.accepting[sid]
    )
    rejecting = frozenset(range(num_states)) - accepting

    # Inverse transition function per symbol class.
    inverse: list[dict[int, set[int]]] = [
        defaultdict(set) for _ in range(num_classes)
    ]
    for src in range(num_states):
        for klass in range(num_classes):
            inverse[klass][dfa.transitions[src][klass]].add(src)

    partition: list[frozenset[int]] = [
        block for block in (accepting, rejecting) if block
    ]
    worklist: list[tuple[frozenset[int], int]] = [
        (block, klass)
        for block in partition
        for klass in range(num_classes)
    ]

    while worklist:
        splitter, klass = worklist.pop()
        predecessors: set[int] = set()
        for target in splitter:
            predecessors |= inverse[klass][target]
        if not predecessors:
            continue
        next_partition: list[frozenset[int]] = []
        for block in partition:
            inside = block & predecessors
            outside = block - predecessors
            if inside and outside:
                next_partition.extend(
                    (frozenset(inside), frozenset(outside))
                )
                smaller = min(inside, outside, key=len)
                for refine_klass in range(num_classes):
                    worklist.append((frozenset(smaller), refine_klass))
            else:
                next_partition.append(block)
        partition = next_partition

    # Renumber with the initial state's block first.
    block_of: dict[int, int] = {}
    ordered: list[frozenset[int]] = []
    initial_block = next(block for block in partition if 0 in block)
    ordered.append(initial_block)
    for block in partition:
        if block is not initial_block:
            ordered.append(block)
    for index, block in enumerate(ordered):
        for sid in block:
            block_of[sid] = index

    minimal = Dfa(classes=list(dfa.classes), symbol_class=list(dfa.symbol_class))
    for block in ordered:
        representative = min(block)
        minimal.subsets.append(frozenset(block))
        minimal.accepting.append(dfa.accepting[representative])
        minimal.transitions.append(
            [
                block_of[dfa.transitions[representative][klass]]
                for klass in range(num_classes)
            ]
        )
    return minimal

"""ANML-lite serialization.

Micron's toolchain exchanges automata as ANML (an XML dialect).  This
library uses a JSON-friendly dict schema carrying the same information —
enough to persist generated workloads, diff automata in tests, and feed
external tooling.

Schema::

    {
      "name": str,
      "states": [
        {"id": int, "label": "<hex mask>", "start": "none|start-of-data|all-input",
         "reporting": bool, "report_code": int|null, "name": str},
        ...
      ],
      "edges": [[src, dst], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.automata.anml import Automaton, StartKind
from repro.automata.charclass import CharClass
from repro.errors import AutomatonError

SCHEMA_VERSION = 1


def automaton_to_dict(automaton: Automaton) -> dict[str, Any]:
    """Serialize to the ANML-lite dict schema."""
    return {
        "schema": SCHEMA_VERSION,
        "name": automaton.name,
        "states": [
            {
                "id": ste.sid,
                "label": f"{ste.label.mask:x}",
                "start": ste.start.value,
                "reporting": ste.reporting,
                "report_code": ste.report_code,
                "name": ste.name,
            }
            for ste in automaton.states()
        ],
        "edges": [[src, dst] for src, dst in automaton.edges()],
    }


def automaton_from_dict(
    payload: dict[str, Any], *, validate: bool = True
) -> Automaton:
    """Deserialize; validates ids are dense and the structure is sound.

    ``validate=False`` skips :meth:`Automaton.validate` so diagnostic
    tooling (``repro lint``) can load a structurally broken automaton
    and report on it instead of refusing to look at it.
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise AutomatonError(
            f"unsupported ANML-lite schema: {payload.get('schema')!r}"
        )
    automaton = Automaton(name=str(payload.get("name", "automaton")))
    states = payload.get("states", [])
    for expected_id, state in enumerate(states):
        if state["id"] != expected_id:
            raise AutomatonError(
                f"non-dense state ids: expected {expected_id}, got {state['id']}"
            )
        automaton.add_state(
            CharClass.from_mask(int(state["label"], 16)),
            start=StartKind(state["start"]),
            reporting=bool(state["reporting"]),
            report_code=state.get("report_code"),
            name=str(state.get("name", "")),
        )
    for src, dst in payload.get("edges", []):
        automaton.add_edge(src, dst)
    if validate:
        automaton.validate()
    return automaton


def dumps(automaton: Automaton, *, indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(automaton_to_dict(automaton), indent=indent)


def loads(text: str, *, validate: bool = True) -> Automaton:
    """Deserialize from a JSON string."""
    return automaton_from_dict(json.loads(text), validate=validate)

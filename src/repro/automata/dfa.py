"""DFA subset construction.

Section 2.1 of the paper notes that converting large NFAs to DFAs
"leads to exponential growth in the number of states" — this module
exists to demonstrate and measure that, and to provide a third
independent semantics for the equivalence tests (classic NFA vs.
homogeneous executor vs. DFA).

The construction is symbol-partitioned: transitions are built only for
the equivalence classes of symbols that the NFA actually distinguishes,
so automata with broad character classes do not pay for 256 columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.charclass import CharClass
from repro.automata.nfa import Nfa
from repro.errors import CapacityError


@dataclass
class Dfa:
    """A deterministic automaton produced by :func:`subset_construction`.

    ``transitions[state][klass]`` gives the next state, where ``klass``
    indexes the symbol partition ``classes``; ``symbol_class[b]`` maps a
    raw byte to its partition index.  State 0 is the initial state.
    """

    classes: list[CharClass]
    symbol_class: list[int]
    transitions: list[list[int]] = field(default_factory=list)
    accepting: list[bool] = field(default_factory=list)
    subsets: list[frozenset[int]] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: int) -> int:
        return self.transitions[state][self.symbol_class[symbol]]

    def run(self, data: bytes, base_offset: int = 0) -> list[int]:
        """Prefix-match; returns offsets at which an accepting state is
        reached (the DFA analogue of the library's report stream)."""
        reports: list[int] = []
        state = 0
        for index, symbol in enumerate(data):
            state = self.transitions[state][self.symbol_class[symbol]]
            if self.accepting[state]:
                reports.append(base_offset + index)
        return reports

    def accepts(self, data: bytes) -> bool:
        state = 0
        for symbol in data:
            state = self.transitions[state][self.symbol_class[symbol]]
        return self.accepting[state]


def symbol_partition(nfa: Nfa) -> tuple[list[CharClass], list[int]]:
    """Partition the 256 symbols into classes the NFA cannot distinguish.

    Two symbols are equivalent when every transition label contains
    either both or neither.  The partition bounds the DFA's transition
    table width by the number of *distinct label signatures*, typically
    far below 256.
    """
    signatures: dict[tuple[bool, ...], list[int]] = {}
    labels: list[CharClass] = []
    for src in range(nfa.num_states):
        for label, _ in nfa.transitions_from(src):
            labels.append(label)
    for symbol in range(256):
        signature = tuple(symbol in label for label in labels)
        signatures.setdefault(signature, []).append(symbol)
    classes = [CharClass(symbols) for symbols in signatures.values()]
    symbol_class = [0] * 256
    for index, klass in enumerate(classes):
        for symbol in klass:
            symbol_class[symbol] = index
    return classes, symbol_class


def subset_construction(nfa: Nfa, *, max_states: int = 1_000_000) -> Dfa:
    """Determinize ``nfa``; raises :class:`CapacityError` past
    ``max_states`` (the paper's exponential-blowup guard)."""
    flat = nfa.without_epsilon() if nfa.has_epsilon() else nfa
    classes, symbol_class = symbol_partition(flat)
    dfa = Dfa(classes=classes, symbol_class=symbol_class)

    initial = flat.initial()
    index_of: dict[frozenset[int], int] = {initial: 0}
    dfa.subsets.append(initial)
    dfa.accepting.append(bool(initial & flat.accept_states))
    dfa.transitions.append([0] * len(classes))

    worklist = [initial]
    while worklist:
        subset = worklist.pop()
        row = dfa.transitions[index_of[subset]]
        for klass_index, klass in enumerate(classes):
            target = flat.step(subset, klass.sample()) if klass else frozenset()
            if target not in index_of:
                if len(index_of) >= max_states:
                    raise CapacityError(
                        f"subset construction exceeded {max_states} states "
                        f"for {nfa.name!r} (the paper's DFA blowup)"
                    )
                index_of[target] = len(dfa.subsets)
                dfa.subsets.append(target)
                dfa.accepting.append(bool(target & flat.accept_states))
                dfa.transitions.append([0] * len(classes))
                worklist.append(target)
            row[klass_index] = index_of[target]
    return dfa

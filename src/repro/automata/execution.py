"""Functional execution of homogeneous automata.

This is the library's VASim substitute: an active-set executor that only
touches states reachable from the currently matched set, which is what
makes simulating large automata over long inputs tractable.

Semantics (shared by every component of the library):

* The dynamic state of an execution is the set of states that *matched*
  the previous symbol (the *current set*, ``C``).
* One step on symbol ``b``::

      enabled  = succ(C) | persistent | one_shot     # one_shot first step only
      C'       = {s in enabled : b in label(s)} - excluded

* A report event ``(element, code, offset)`` fires whenever a reporting
  state enters ``C'``.

``persistent`` models ANML all-input start states (enabled on every
symbol).  ``one_shot`` models start-of-data states (enabled for the first
symbol only).  ``excluded`` lets the PAP enumeration flows drop
always-active states whose behaviour the dedicated ASG flow reproduces;
see :mod:`repro.core.merging`.

Executions are incremental: :meth:`FlowExecution.step` and
:meth:`FlowExecution.run` may be interleaved freely, which is how the TDM
scheduler time-slices many flows over one automaton.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.automata.anml import Automaton

if TYPE_CHECKING:
    from repro.automata.vector import VectorTables


@dataclass(frozen=True, order=True)
class Report:
    """One output event: reporting ``element`` matched at input ``offset``."""

    offset: int
    element: int
    code: int


class CompiledAutomaton:
    """Immutable per-automaton tables shared by all executions.

    Compiling once and instantiating many :class:`FlowExecution` objects
    against the same tables is what makes flow enumeration affordable:
    flows differ only in their (small) dynamic current sets.

    ``latchable`` lists the states that, once matched, stay matched
    forever: full-alphabet labels with a self loop (``.*`` gap and hub
    states).  The executor exploits this — saturated automata (SPM,
    Dotstar) otherwise pay for their whole stable active set on every
    symbol.
    """

    __slots__ = (
        "automaton",
        "succ",
        "label_masks",
        "reporting",
        "report_codes",
        "start_of_data",
        "all_input",
        "latchable",
        "_vector_tables",
    )

    def __init__(self, automaton: Automaton) -> None:
        automaton.validate()
        self.automaton = automaton
        self.succ: list[tuple[int, ...]] = [
            automaton.successors(sid) for sid in range(len(automaton))
        ]
        self.label_masks: list[int] = [
            ste.label.mask for ste in automaton.states()
        ]
        self.reporting: frozenset[int] = frozenset(automaton.reporting_states())
        self.report_codes: dict[int, int] = {
            sid: automaton.state(sid).code for sid in self.reporting
        }
        self.start_of_data: frozenset[int] = frozenset(
            automaton.start_of_data_states()
        )
        self.all_input: frozenset[int] = frozenset(automaton.all_input_states())
        self.latchable: frozenset[int] = frozenset(
            ste.sid
            for ste in automaton.states()
            if ste.label.is_full() and automaton.has_self_loop(ste.sid)
        )
        self._vector_tables: object | None = None

    def __len__(self) -> int:
        return len(self.succ)

    def vector_tables(self) -> "VectorTables":
        """The bit-parallel transition tables for this automaton.

        Built on first use and cached, so only runs that select the
        vector strategy pay the compilation cost (and the NumPy
        import).  See :mod:`repro.automata.vector`.
        """
        tables = self._vector_tables
        if tables is None:
            from repro.automata.vector import VectorTables

            tables = VectorTables(self)
            self._vector_tables = tables
        return tables  # type: ignore[return-value]


class FlowExecution:
    """One incremental execution (one AP flow) over a compiled automaton.

    Parameters
    ----------
    compiled:
        Shared static tables.
    initial_current:
        States treated as having matched the (virtual) symbol just before
        this execution's first symbol.  Enumeration flows seed this with
        candidate boundary states.
    persistent:
        States enabled on *every* step.  ``None`` means the automaton's
        all-input start states (normal semantics).
    one_shot:
        States enabled for the first step only.  ``None`` means the
        automaton's start-of-data states; pass ``frozenset()`` for flows
        that resume mid-input.
    excluded:
        States removed from every new current set (the always-active
        group handled by a separate ASG flow).
    """

    __slots__ = (
        "compiled",
        "persistent",
        "one_shot",
        "excluded",
        "reports",
        "symbols_processed",
        "transitions",
        "_started",
        "_volatile",
        "_latched",
        "_latched_index",
        "_latched_reports",
        "_persistent_index",
    )

    def __init__(
        self,
        compiled: CompiledAutomaton,
        *,
        initial_current: Iterable[int] = (),
        persistent: frozenset[int] | None = None,
        one_shot: frozenset[int] | None = None,
        excluded: frozenset[int] = frozenset(),
    ) -> None:
        self.compiled = compiled
        self.persistent = (
            compiled.all_input if persistent is None else persistent
        )
        self.one_shot = (
            compiled.start_of_data if one_shot is None else one_shot
        )
        self.excluded = excluded
        self.reports: list[Report] = []
        self.symbols_processed = 0
        self.transitions = 0
        self._started = False

        # The current set is split into a monotone *latched* part
        # (full-label self-loop states: once matched, matched forever)
        # and the *volatile* remainder.  Per-symbol work touches only
        # the volatile part plus precomputed per-symbol indexes of the
        # latched successors and persistent states.
        self._volatile: set[int] = set()
        self._latched: set[int] = set()
        self._latched_index: list[set[int]] = [set() for _ in range(256)]
        self._latched_reports: list[int] = []
        self._persistent_index: list[tuple[int, ...]] | None = None
        for sid in initial_current:
            self._admit(sid)

    # -- latched bookkeeping --------------------------------------------

    def _admit(self, sid: int) -> None:
        """Place a just-matched state into latched or volatile."""
        if sid in self.compiled.latchable and sid not in self.excluded:
            if sid not in self._latched:
                self._latch(sid)
        else:
            self._volatile.add(sid)

    def _latch(self, sid: int) -> None:
        compiled = self.compiled
        self._latched.add(sid)
        self._volatile.discard(sid)
        if sid in compiled.reporting:
            # Sorted insertion keeps latched-report order a pure function
            # of the latched set, never of latch arrival order or of set
            # iteration order.  Without it, :meth:`clone` — which rebuilds
            # this list by iterating a ``state_vector()`` frozenset —
            # could reorder ``reports`` relative to the original flow.
            insort(self._latched_reports, sid)
        automaton = compiled.automaton
        for dst in compiled.succ[sid]:
            if dst in self._latched or dst in self.excluded:
                continue
            for symbol in automaton.state(dst).label:
                self._latched_index[symbol].add(dst)

    def _build_persistent_index(self) -> list[tuple[int, ...]]:
        table: list[list[int]] = [[] for _ in range(256)]
        automaton = self.compiled.automaton
        for sid in self.persistent:
            if sid in self.compiled.latchable:
                continue  # latches on its first match instead
            for symbol in automaton.state(sid).label:
                table[symbol].append(sid)
        self._persistent_index = [tuple(row) for row in table]
        return self._persistent_index

    # -- stepping ---------------------------------------------------------

    def step(self, symbol: int, offset: int) -> None:
        """Consume one symbol whose global input offset is ``offset``."""
        compiled = self.compiled
        masks = compiled.label_masks
        succ = compiled.succ
        latchable = compiled.latchable
        bit = 1 << symbol

        fresh: set[int] = set()
        add = fresh.add
        for src in self._volatile:
            for dst in succ[src]:
                if masks[dst] & bit:
                    add(dst)
        fresh |= self._latched_index[symbol]

        if self.persistent:
            persistent_index = self._persistent_index
            if persistent_index is None:
                persistent_index = self._build_persistent_index()
            fresh.update(persistent_index[symbol])
            for sid in self.persistent & latchable:
                if sid not in self._latched and masks[sid] & bit:
                    add(sid)

        if not self._started:
            for dst in self.one_shot:
                if masks[dst] & bit:
                    add(dst)
            self._started = True
        if self.excluded:
            fresh -= self.excluded

        to_latch = [
            sid
            for sid in fresh
            if sid in latchable and sid not in self._latched
        ]
        fresh -= self._latched
        for sid in to_latch:
            self._latch(sid)
            fresh.discard(sid)
        self._volatile = fresh

        self.symbols_processed += 1
        self.transitions += len(self._latched) + len(fresh)

        if compiled.reporting:
            codes = compiled.report_codes
            hits = fresh & compiled.reporting
            # Each step's events are emitted in ascending sid order (the
            # latched list is kept sorted; a fresh batch is sorted and
            # merged in).  This makes the reports *list* — not just its
            # set — a pure function of the execution semantics, which is
            # what lets the vector executor reproduce it bit-for-bit.
            if hits:
                if self._latched_reports:
                    sids: list[int] = sorted(
                        [*self._latched_reports, *hits]
                    )
                else:
                    sids = sorted(hits)
                self.reports.extend(
                    Report(offset=offset, element=sid, code=codes[sid])
                    for sid in sids
                )
            elif self._latched_reports:
                self.reports.extend(
                    Report(offset=offset, element=sid, code=codes[sid])
                    for sid in self._latched_reports
                )

    def run(self, data: bytes, base_offset: int = 0) -> None:
        """Consume every byte of ``data``; offsets start at ``base_offset``."""
        for index, symbol in enumerate(data):
            self.step(symbol, base_offset + index)

    # -- inspection -----------------------------------------------------

    @property
    def current(self) -> set[int]:
        """The full current (just-matched) state set."""
        return self._latched | self._volatile

    def state_vector(self) -> frozenset[int]:
        """Canonical snapshot of the dynamic state (for convergence and
        deactivation checks — the AP's state-vector-cache comparator)."""
        return frozenset(self._latched | self._volatile)

    def is_dead(self) -> bool:
        """True when this flow can never match again.

        With no persistent or pending one-shot states, an empty current
        set is absorbing: ``succ(empty)`` stays empty.
        """
        if self._latched or self._volatile or self.persistent:
            return False
        return self._started or not self.one_shot

    def clone(self) -> "FlowExecution":
        """An independent copy sharing the compiled tables."""
        twin = FlowExecution(
            self.compiled,
            initial_current=self.state_vector(),
            persistent=self.persistent,
            one_shot=self.one_shot,
            excluded=self.excluded,
        )
        twin.reports = list(self.reports)
        twin.symbols_processed = self.symbols_processed
        twin.transitions = self.transitions
        twin._started = self._started
        return twin


@dataclass
class ExecutionResult:
    """Outcome of a complete run: reports plus the final matched set."""

    reports: list[Report]
    final_current: frozenset[int]
    symbols_processed: int
    transitions: int

    @property
    def report_set(self) -> frozenset[Report]:
        """Deduplicated reports — the library-wide correctness currency."""
        return frozenset(self.reports)


def run_automaton(
    automaton: Automaton | CompiledAutomaton,
    data: bytes,
    *,
    base_offset: int = 0,
) -> ExecutionResult:
    """Execute ``automaton`` over ``data`` with normal start semantics.

    This is the reference sequential execution used as ground truth by
    the test suite and as the AP baseline by :mod:`repro.ap.sequential`.
    """
    compiled = (
        automaton
        if isinstance(automaton, CompiledAutomaton)
        else CompiledAutomaton(automaton)
    )
    flow = FlowExecution(compiled)
    flow.run(data, base_offset)
    return ExecutionResult(
        reports=flow.reports,
        final_current=flow.state_vector(),
        symbols_processed=flow.symbols_processed,
        transitions=flow.transitions,
    )

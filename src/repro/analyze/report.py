"""Suite-level analysis and the prediction-vs-actual tolerance gate.

:func:`analyze_suite` runs the fact pass, the cost model, and the
capacity planner over the evaluation benchmarks at exactly the budgets
``repro bench`` uses (same scale/seed/trace parameters, same heavy-
workload trace divisors), so the resulting :class:`AnalysisReport` is
directly comparable to a committed ``BENCH_*.json`` artifact.
:func:`compare_to_baseline` performs that comparison and applies the
documented tolerance — the CI ``analysis-gate`` job fails when any
workload's predicted enumeration cycles drift further from the
simulator's than :data:`DEFAULT_TOLERANCE` allows.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.analyze.cost import WorkloadPrediction, predict_workload
from repro.analyze.facts import gather_facts
from repro.analyze.planner import CapacityPlan, plan_capacity
from repro.ap.geometry import BoardGeometry
from repro.ap.placement import segments_available
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.execution import CompiledAutomaton
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.errors import ConfigurationError
from repro.perf.bench import trace_budget
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    BenchmarkInstance,
    build_benchmark,
)

DEFAULT_TOLERANCE = 0.05
"""The documented prediction error budget (relative, per workload).

The committed ``benchmarks/analysis/ANALYZE_seed.json`` sits at a
maximum absolute error of ~3% against ``BENCH_seed.json``; 5% leaves
headroom for profile jitter without letting real model regressions
through.
"""

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WorkloadAnalysis:
    """Everything the analysis pass derived for one workload."""

    name: str
    ranks: int
    trace_bytes: int
    num_states: int
    num_components: int
    partition_symbol: int
    boundary_flows: int
    unit_bound: int
    prediction: WorkloadPrediction
    plan: CapacityPlan

    @property
    def key(self) -> str:
        """The ``BENCH_*.json`` benchmark key this row compares against."""
        return f"{self.name}@r{self.ranks}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ranks": self.ranks,
            "trace_bytes": self.trace_bytes,
            "num_states": self.num_states,
            "num_components": self.num_components,
            "partition_symbol": self.partition_symbol,
            "boundary_flows": self.boundary_flows,
            "unit_bound": self.unit_bound,
            "prediction": self.prediction.to_dict(),
            "plan": self.plan.to_dict(),
        }


@dataclass(frozen=True)
class ComparisonRow:
    """One workload's prediction measured against a committed artifact."""

    name: str
    key: str
    predicted_cycles: int
    actual_cycles: int
    predicted_speedup: float
    actual_speedup: float
    tolerance: float

    @property
    def error(self) -> float:
        """Signed relative error of predicted enumeration cycles."""
        if self.actual_cycles == 0:
            return 0.0 if self.predicted_cycles == 0 else float("inf")
        return (
            self.predicted_cycles - self.actual_cycles
        ) / self.actual_cycles

    @property
    def passed(self) -> bool:
        return abs(self.error) <= self.tolerance

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "predicted_cycles": self.predicted_cycles,
            "actual_cycles": self.actual_cycles,
            "error": round(self.error, 6),
            "predicted_speedup": round(self.predicted_speedup, 4),
            "actual_speedup": round(self.actual_speedup, 4),
            "tolerance": self.tolerance,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """One full-suite analysis run, comparable and serializable."""

    label: str
    parameters: Mapping[str, Any]
    workloads: tuple[WorkloadAnalysis, ...]
    comparison: tuple[ComparisonRow, ...] = ()
    missing_from_baseline: tuple[str, ...] = ()
    tolerance: float = DEFAULT_TOLERANCE
    created_at: str | None = field(default=None, compare=False)

    @property
    def compared(self) -> bool:
        return bool(self.comparison) or bool(self.missing_from_baseline)

    @property
    def passed(self) -> bool:
        """True when every compared workload is within tolerance and no
        analyzed workload was missing from the baseline."""
        if not self.compared:
            return True
        if self.missing_from_baseline:
            return False
        return all(row.passed for row in self.comparison)

    @property
    def max_abs_error(self) -> float:
        if not self.comparison:
            return 0.0
        return max(abs(row.error) for row in self.comparison)

    @property
    def infeasible(self) -> tuple[str, ...]:
        """Workloads whose capacity plan has violations."""
        return tuple(
            w.name for w in self.workloads if not w.plan.feasible
        )

    def workload(self, name: str) -> WorkloadAnalysis:
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "parameters": dict(self.parameters),
            "environment": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": platform.system().lower(),
                "machine": platform.machine(),
            },
            "summary": {
                "workloads": len(self.workloads),
                "infeasible": list(self.infeasible),
                "total_trials": sum(
                    w.prediction.trials for w in self.workloads
                ),
            },
            "workloads": {w.key: w.to_dict() for w in self.workloads},
        }
        if self.created_at is not None:
            payload["created_at"] = self.created_at
        if self.compared:
            payload["comparison"] = {
                "tolerance": self.tolerance,
                "passed": self.passed,
                "max_abs_error": round(self.max_abs_error, 6),
                "missing_from_baseline": list(self.missing_from_baseline),
                "rows": [row.to_dict() for row in self.comparison],
            }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def analyze_workload(
    bench: BenchmarkInstance,
    *,
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = None,
    trace_seed: int = 1,
    config: PAPConfig = DEFAULT_CONFIG,
    use_trials: bool = True,
) -> WorkloadAnalysis:
    """Run the full analysis stack for one benchmark instance.

    Mirrors :func:`repro.sim.runner.run_benchmark`'s configuration
    derivation — board geometry from ``ranks``, segment count from the
    benchmark's half-core footprint — without ever executing the
    simulator beyond the fact pass's bounded profile prefix and trials.
    """
    board = BoardGeometry(ranks=ranks)
    num_segments = segments_available(board, bench.half_cores)
    if num_segments < 1:
        raise ConfigurationError(
            f"{bench.name}: {bench.half_cores} half-cores exceed the "
            f"{board.half_cores} the board provides"
        )
    data = bench.trace(trace_bytes, trace_seed)
    analysis = AutomatonAnalysis(bench.automaton)
    compiled = CompiledAutomaton(bench.automaton)
    facts = gather_facts(
        bench.automaton,
        data,
        num_segments=num_segments,
        analysis=analysis,
        compiled=compiled,
    )
    prediction = predict_workload(
        bench.automaton,
        data,
        num_segments=num_segments,
        config=config,
        modeled_bytes=modeled_bytes,
        analysis=analysis,
        facts=facts,
        use_trials=use_trials,
    )
    plan = plan_capacity(
        bench.automaton, geometry=board, analysis=analysis
    )
    boundary = facts.boundary(facts.partition_symbol, at_offset_zero=False)
    return WorkloadAnalysis(
        name=bench.name,
        ranks=ranks,
        trace_bytes=len(data),
        num_states=facts.num_states,
        num_components=facts.num_components,
        partition_symbol=facts.partition_symbol,
        boundary_flows=boundary.flow_count,
        unit_bound=boundary.unit_bound,
        prediction=prediction,
        plan=plan,
    )


def analyze_suite(
    names: tuple[str, ...] = BENCHMARK_NAMES,
    *,
    label: str = "local",
    scale: float = 0.1,
    seed: int = 0,
    ranks: int = 1,
    trace_bytes: int = 65_536,
    modeled_bytes: int | None = 1_048_576,
    use_trials: bool = True,
    progress: Callable[[str], None] | None = None,
) -> AnalysisReport:
    """Analyze ``names`` at the standard bench-suite budgets.

    Defaults replicate the committed ``BENCH_seed.json`` parameters
    (scale 0.1, seed 0, one rank, 64 KiB traces modeling 1 MB inputs),
    including the per-workload heavy-trace divisors, so the report is
    comparable against that artifact without further alignment.
    """
    workloads: list[WorkloadAnalysis] = []
    for name in names:
        budget, modeled = trace_budget(name, trace_bytes, modeled_bytes)
        bench = build_benchmark(name, scale=scale, seed=seed)
        row = analyze_workload(
            bench,
            ranks=ranks,
            trace_bytes=budget,
            modeled_bytes=modeled,
            trace_seed=seed + 1,
            use_trials=use_trials,
        )
        workloads.append(row)
        if progress is not None:
            progress(
                f"{row.name}: predicted "
                f"{row.prediction.predicted_cycles} cycles "
                f"({row.prediction.speedup:.2f}x), "
                f"{row.prediction.trials} trial(s)"
            )
    return AnalysisReport(
        label=label,
        parameters={
            "benchmarks": list(names),
            "scale": scale,
            "seed": seed,
            "ranks": ranks,
            "trace_bytes": trace_bytes,
            "modeled_bytes": modeled_bytes,
            "use_trials": use_trials,
        },
        workloads=tuple(workloads),
    )


def compare_to_baseline(
    report: AnalysisReport,
    baseline: Mapping[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> AnalysisReport:
    """Attach a prediction-vs-actual comparison to ``report``.

    ``baseline`` is a parsed ``BENCH_*.json`` payload (see
    :mod:`repro.perf.artifact`).  Every analyzed workload must appear in
    it under its ``Name@rN`` key; absentees are recorded and fail the
    gate, because a silently unchecked prediction is how model rot
    starts.  Returns a new report; the input is unchanged.
    """
    if tolerance <= 0:
        raise ConfigurationError("tolerance must be positive")
    benchmarks = baseline.get("benchmarks", {})
    rows: list[ComparisonRow] = []
    missing: list[str] = []
    for workload in report.workloads:
        record = benchmarks.get(workload.key)
        if record is None:
            missing.append(workload.key)
            continue
        cycles = record["cycles"]
        rows.append(
            ComparisonRow(
                name=workload.name,
                key=workload.key,
                predicted_cycles=workload.prediction.enumeration_cycles,
                actual_cycles=cycles["enumeration_cycles"],
                predicted_speedup=workload.prediction.speedup,
                actual_speedup=cycles["speedup"],
                tolerance=tolerance,
            )
        )
    return replace(
        report,
        comparison=tuple(rows),
        missing_from_baseline=tuple(missing),
        tolerance=tolerance,
    )


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Parse a committed ``BENCH_*.json`` artifact."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ConfigurationError(
            f"{path}: not a BENCH artifact (no 'benchmarks' key)"
        )
    return payload


def load_analysis(path: str | Path) -> dict[str, Any]:
    """Parse a committed ``ANALYZE_*.json`` artifact.

    The drift monitor (:mod:`repro.obs.drift`) loads predictions from
    here by their ``Name@rN`` workload key.  Unreadable or malformed
    files raise :class:`ConfigurationError` so CLI callers exit 1 with
    a one-line message instead of a traceback.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"cannot load analysis artifact {path}: {error}"
        ) from error
    if not isinstance(payload, dict) or "workloads" not in payload:
        raise ConfigurationError(
            f"{path}: not an ANALYZE artifact (no 'workloads' key)"
        )
    return payload

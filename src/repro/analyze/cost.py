"""The cycle cost model: abstract TDM interpretation + availability chain.

For every enumerated segment the model reconstructs, *without running
the scheduler*, the quantities that determine its finish time:

* which flows deactivate and at what depth (abstract divergence pass,
  concretely refined by bounded trials for the few flows the
  abstraction cannot kill — see :mod:`repro.analyze.facts`);
* slice-level cost: each live flow pays its symbols plus the 3-cycle
  context switch per TDM slice whenever more than one flow is live;
* the predecessor's flow-invalidation vector, which arrives at the
  predecessor's availability time and deactivates surviving false
  flows at the next slice boundary (Section 3.3.3) — survival odds
  come from profiled state occupancy.

Segment finish times then chain through the paper's availability
recurrence ``A[j] = max(A[j-1], finish[j]) + tcpu[j]`` (state-vector
readout + host decode, charged only when the successor still has live
enumeration flows), and the host's report drain adds
``ceil(raw_events / 8)`` with raw events extrapolated from the profiled
event rate.  The model reproduces every ``BENCH_seed.json`` workload
within a few percent; see ``benchmarks/analysis/ANALYZE_seed.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.analyze.facts import (
    BoundaryFacts,
    TraceProfile,
    WorkloadFacts,
    boundary_facts,
    gather_facts,
    label_hit_probabilities,
    refine_with_trials,
)
from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton
from repro.core.config import DEFAULT_CONFIG, PAPConfig
from repro.core.partitioning import partition_input
from repro.host.reporting import report_processing_cycles


@dataclass(frozen=True)
class SegmentPrediction:
    """Predicted dynamics of one segment."""

    index: int
    length: int
    boundary_symbol: int | None
    flow_count: int
    survivors: int
    """Enumeration flows predicted to outlive the whole segment
    (before any flow-invalidation-vector kill)."""
    survivors_after_fiv: float
    """Expected live enumeration flows after the predecessor's FIV
    lands (equals ``survivors`` when the FIV arrives too late or there
    is at most one survivor)."""
    deactivation_cost: int
    """Total symbols charged to flows that die mid-segment."""
    fiv_applied_at: int | None
    finish_cycles: int
    flows_at_end: int
    tcpu_cycles: int
    trials: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "length": self.length,
            "boundary_symbol": self.boundary_symbol,
            "flow_count": self.flow_count,
            "survivors": self.survivors,
            "survivors_after_fiv": round(self.survivors_after_fiv, 4),
            "deactivation_cost": self.deactivation_cost,
            "fiv_applied_at": self.fiv_applied_at,
            "finish_cycles": self.finish_cycles,
            "flows_at_end": self.flows_at_end,
            "tcpu_cycles": self.tcpu_cycles,
            "trials": self.trials,
        }


@dataclass(frozen=True)
class WorkloadPrediction:
    """The cost model's verdict for one workload configuration."""

    name: str
    input_bytes: int
    num_segments: int
    segments: tuple[SegmentPrediction, ...]
    enumeration_cycles: int
    golden_cycles: int
    baseline_cycles: int
    raw_events: int
    event_rate: float
    trials: int

    @property
    def golden_fallback(self) -> bool:
        """True when the sequential golden run beats enumeration."""
        return self.golden_cycles < self.enumeration_cycles

    @property
    def predicted_cycles(self) -> int:
        return min(self.enumeration_cycles, self.golden_cycles)

    @property
    def speedup(self) -> float:
        if self.predicted_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.predicted_cycles

    @property
    def ideal_speedup(self) -> int:
        return max(1, self.num_segments)

    @property
    def parallel_efficiency(self) -> float:
        return self.speedup / self.ideal_speedup

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "input_bytes": self.input_bytes,
            "num_segments": self.num_segments,
            "enumeration_cycles": self.enumeration_cycles,
            "golden_cycles": self.golden_cycles,
            "baseline_cycles": self.baseline_cycles,
            "predicted_cycles": self.predicted_cycles,
            "golden_fallback": self.golden_fallback,
            "speedup": round(self.speedup, 4),
            "ideal_speedup": self.ideal_speedup,
            "parallel_efficiency": round(self.parallel_efficiency, 4),
            "raw_events": self.raw_events,
            "event_rate": round(self.event_rate, 6),
            "trials": self.trials,
            "segments": [segment.to_dict() for segment in self.segments],
        }


def _quantize_depth(
    depth: int, length: int, *, slice_symbols: int, early_check_symbols: int
) -> int:
    """Deactivation cost of a flow dying at abstract ``depth``.

    The scheduler only *discovers* death at a check offset: every
    ``early_check_symbols`` within the first slice, then at slice ends.
    """
    if depth <= slice_symbols:
        quantum = early_check_symbols
    else:
        quantum = slice_symbols
    return min(length, math.ceil(depth / quantum) * quantum)


def predict_workload(
    automaton: Automaton,
    data: bytes,
    *,
    num_segments: int,
    config: PAPConfig = DEFAULT_CONFIG,
    modeled_bytes: int | None = None,
    analysis: AutomatonAnalysis | None = None,
    facts: WorkloadFacts | None = None,
    use_trials: bool = True,
) -> WorkloadPrediction:
    """Predict PAP cycle cost for one workload at one segment count.

    ``modeled_bytes`` scales the constant per-segment host costs the
    same way :func:`repro.sim.runner.run_benchmark` does, so
    predictions line up with scaled-input ``BENCH_*.json`` artifacts.
    ``use_trials=False`` keeps the pass fully abstract (no concrete
    execution beyond the profile prefix): unresolved flows are then
    pessimistically treated as survivors.
    """
    if not data:
        # The fact pass needs bytes to profile; an empty input costs
        # nothing under either execution mode.
        return WorkloadPrediction(
            name=automaton.name,
            input_bytes=0,
            num_segments=0,
            segments=(),
            enumeration_cycles=0,
            golden_cycles=0,
            baseline_cycles=0,
            raw_events=0,
            event_rate=0.0,
            trials=0,
        )
    analysis = analysis or AutomatonAnalysis(automaton)
    compiled = CompiledAutomaton(automaton)
    if facts is None:
        facts = gather_facts(
            automaton,
            data,
            num_segments=num_segments,
            analysis=analysis,
            compiled=compiled,
        )
    profile = facts.profile
    timing = config.timing
    if modeled_bytes is not None:
        timing = timing.scaled_for_input(len(data), modeled_bytes)
    slice_symbols = config.tdm_slice_symbols
    early = config.early_check_symbols
    switch = timing.context_switch_cycles

    segments = partition_input(
        data, num_segments, symbol=facts.partition_symbol
    )
    if not segments:
        return WorkloadPrediction(
            name=facts.name,
            input_bytes=0,
            num_segments=0,
            segments=(),
            enumeration_cycles=0,
            golden_cycles=0,
            baseline_cycles=0,
            raw_events=0,
            event_rate=profile.event_rate,
            trials=0,
        )

    asg_count = 1 if facts.path_independent else 0
    hit_probability: tuple[float, ...] | None = None
    successors: tuple[tuple[int, ...], ...] | None = None
    boundary_cache: dict[tuple[int, bool], BoundaryFacts] = dict(
        facts.boundaries
    )

    def boundary_for(symbol: int, at_zero: bool) -> BoundaryFacts:
        nonlocal hit_probability, successors
        key = (symbol, at_zero)
        if key not in boundary_cache:
            if hit_probability is None:
                hit_probability = label_hit_probabilities(
                    automaton, profile
                )
            if successors is None:
                successors = tuple(
                    automaton.successors(sid)
                    for sid in range(len(automaton))
                )
            boundary_cache[key] = boundary_facts(
                automaton,
                analysis,
                symbol,
                at_zero,
                facts.path_independent,
                hit_probability,
                profile,
                successors,
            )
        return boundary_cache[key]

    predictions: list[SegmentPrediction] = []
    availability = 0
    total_trials = 0
    tcpu_base = (
        timing.state_vector_transfer_cycles + timing.decode_base_cycles
    )

    # First pass per segment computes survivors so tcpu gating can look
    # one segment ahead; survivors only depend on segment-local facts.
    per_segment: list[
        tuple[int, int | None, int, int, list[int], float, int]
    ] = []
    for segment in segments:
        length = segment.length
        if segment.index == 0:
            per_segment.append((length, None, 1, 0, [], 0.0, 0))
            continue
        assert segment.boundary_symbol is not None
        bound = boundary_for(segment.boundary_symbol, segment.start == 1)
        trial_verdicts: dict[int, tuple[bool, int]] = {}
        if use_trials and bound.static_survivors:
            trial_verdicts = refine_with_trials(
                compiled,
                data,
                segment,
                bound.flows,
                bound.asg_initial,
                facts.path_independent,
                slice_symbols=slice_symbols,
                early_check_symbols=early,
            )
        trials_here = len(trial_verdicts)
        total_trials += trials_here
        survivors = 0
        fiv_survival = 0.0
        die_costs: list[int] = []
        for flow in bound.flows:
            if flow.resolved:
                if flow.die_depth >= length:
                    survivors += 1
                    fiv_survival += flow.fiv_survival
                else:
                    die_costs.append(
                        _quantize_depth(
                            flow.die_depth,
                            length,
                            slice_symbols=slice_symbols,
                            early_check_symbols=early,
                        )
                    )
            elif flow.flow_id in trial_verdicts:
                died, depth = trial_verdicts[flow.flow_id]
                if died:
                    die_costs.append(min(length, depth))
                else:
                    survivors += 1
                    fiv_survival += flow.fiv_survival
            else:
                # No trial ran: pessimistically keep the flow alive.
                survivors += 1
                fiv_survival += flow.fiv_survival
        per_segment.append(
            (
                length,
                segment.boundary_symbol,
                bound.flow_count,
                survivors,
                die_costs,
                fiv_survival,
                trials_here,
            )
        )

    for index, (
        length,
        boundary_symbol,
        flow_count,
        survivors,
        die_costs,
        fiv_survival,
        trials_here,
    ) in enumerate(per_segment):
        if index == 0:
            finish = length
            flows_at_end = 1
            survivors_after_fiv = 0.0
            fiv_applied_at: int | None = None
        else:
            live = asg_count + survivors
            multi = (asg_count + flow_count) > 1
            slice_cost = slice_symbols + (switch if multi else 0)
            survivors_after_fiv = float(survivors)
            fiv_applied_at = None
            fiv_consumed = 0
            if config.use_fiv and survivors >= 2:
                expected = min(float(survivors), max(1.0, fiv_survival))
                if expected < survivors:
                    arrival = availability
                    slices_done = (
                        math.ceil(arrival / (live * slice_cost))
                        if live * slice_cost > 0
                        else 0
                    )
                    if slices_done * slice_symbols < length:
                        survivors_after_fiv = expected
                        fiv_applied_at = slices_done * live * slice_cost
                        fiv_consumed = slices_done * slice_symbols
            if fiv_applied_at is not None:
                remaining = length - fiv_consumed
                post_live = asg_count + survivors_after_fiv
                finish_f = (
                    fiv_applied_at
                    + remaining * post_live
                    + (
                        switch
                        * post_live
                        * math.ceil(remaining / slice_symbols)
                        if multi
                        else 0.0
                    )
                    + sum(die_costs)
                )
                finish = int(round(finish_f))
            else:
                finish = live * length + sum(die_costs)
                if multi:
                    flow_slices = asg_count * math.ceil(
                        length / slice_symbols
                    ) + sum(
                        math.ceil(min(length, cost) / slice_symbols)
                        for cost in [length] * survivors + die_costs
                    )
                    finish += switch * flow_slices
            flows_at_end = max(
                1,
                asg_count
                + (int(round(survivors_after_fiv)) if survivors else 0),
            )
        successor_live = (
            index + 1 < len(per_segment) and per_segment[index + 1][3] > 0
        )
        tcpu = (
            tcpu_base
            + timing.decode_cycles_per_flow * max(1, flows_at_end)
            if successor_live
            else 0
        )
        predictions.append(
            SegmentPrediction(
                index=index,
                length=length,
                boundary_symbol=boundary_symbol,
                flow_count=flow_count if index else 0,
                survivors=survivors,
                survivors_after_fiv=survivors_after_fiv,
                deactivation_cost=sum(die_costs),
                fiv_applied_at=fiv_applied_at,
                finish_cycles=finish,
                flows_at_end=flows_at_end,
                tcpu_cycles=tcpu,
                trials=trials_here,
            )
        )
        availability = max(availability, finish) + tcpu

    rate = profile.event_rate
    raw_events = int(
        rate
        * sum(
            prediction.length * max(1, prediction.flows_at_end)
            for prediction in predictions
        )
    )
    enumeration = availability + report_processing_cycles(raw_events)
    true_events = int(rate * len(data))
    sequential = len(data) + report_processing_cycles(true_events)
    return WorkloadPrediction(
        name=facts.name,
        input_bytes=len(data),
        num_segments=len(segments),
        segments=tuple(predictions),
        enumeration_cycles=enumeration,
        golden_cycles=sequential,
        baseline_cycles=sequential,
        raw_events=raw_events,
        event_rate=rate,
        trials=total_trials,
    )

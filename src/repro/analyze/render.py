"""Rendering for ``repro analyze``: text, JSON, and SARIF.

The SARIF form reuses :mod:`repro.lint.sarif` — analysis findings are
expressed as plain :class:`~repro.lint.diagnostics.Diagnostic` values
under ``AN``-prefixed codes (``AN001`` prediction summary, ``AN101``
out-of-tolerance prediction, ``AN102`` missing baseline entry), plus
the capacity planner's violations under their original ``AP2xx`` codes.
One artifact therefore carries both the predictions and everything
that gates on them.
"""

from __future__ import annotations

import json

from repro.analyze.report import AnalysisReport
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_run

CODE_PREDICTION = "AN001"
CODE_OUT_OF_TOLERANCE = "AN101"
CODE_MISSING_BASELINE = "AN102"


def analysis_diagnostics(report: AnalysisReport) -> list[Diagnostic]:
    """The analysis run as a flat diagnostic list (SARIF payload)."""
    diagnostics: list[Diagnostic] = []
    rows = {row.key: row for row in report.comparison}
    for workload in report.workloads:
        prediction = workload.prediction
        message = (
            f"predicted {prediction.predicted_cycles} cycles "
            f"({prediction.speedup:.2f}x of ideal "
            f"{prediction.ideal_speedup}x) over "
            f"{prediction.num_segments} segments; "
            f"{workload.boundary_flows} enumeration flows, "
            f"{prediction.trials} trial(s)"
        )
        if prediction.golden_fallback:
            message += "; golden fallback predicted to win"
        diagnostics.append(
            Diagnostic(
                code=CODE_PREDICTION,
                rule="workload-prediction",
                severity=Severity.INFO,
                message=message,
                automaton=workload.name,
                data=prediction.to_dict() | {"key": workload.key},
            )
        )
        for violation in workload.plan.violations:
            diagnostics.append(
                Diagnostic(
                    code=violation.code,
                    rule="capacity-plan-violation",
                    severity=Severity.ERROR,
                    message=f"capacity plan: {violation.message}",
                    automaton=workload.name,
                )
            )
        row = rows.get(workload.key)
        if row is not None and not row.passed:
            diagnostics.append(
                Diagnostic(
                    code=CODE_OUT_OF_TOLERANCE,
                    rule="prediction-out-of-tolerance",
                    severity=Severity.ERROR,
                    message=(
                        f"predicted {row.predicted_cycles} vs actual "
                        f"{row.actual_cycles} enumeration cycles: "
                        f"{row.error:+.2%} exceeds the "
                        f"{row.tolerance:.0%} tolerance"
                    ),
                    automaton=workload.name,
                    data=row.to_dict(),
                )
            )
    for key in report.missing_from_baseline:
        diagnostics.append(
            Diagnostic(
                code=CODE_MISSING_BASELINE,
                rule="missing-baseline-entry",
                severity=Severity.ERROR,
                message=(
                    f"workload {key} has no entry in the baseline "
                    f"artifact; its prediction is unchecked"
                ),
                automaton=key.split("@", 1)[0],
            )
        )
    return diagnostics


def render_analysis_text(report: AnalysisReport) -> str:
    """Human-readable analysis summary (one line per workload)."""
    lines: list[str] = []
    header = (
        f"{'workload':<18}{'segments':>9}{'flows':>7}{'cycles':>10}"
        f"{'speedup':>9}{'trials':>7}  plan"
    )
    lines.append(header)
    rows = {row.key: row for row in report.comparison}
    for workload in report.workloads:
        prediction = workload.prediction
        plan = workload.plan
        plan_text = (
            f"{plan.half_cores}hc ok"
            if plan.feasible
            else f"{plan.half_cores}hc VIOLATIONS:"
            + ",".join(v.code for v in plan.violations)
        )
        line = (
            f"{workload.name:<18}{prediction.num_segments:>9}"
            f"{workload.boundary_flows:>7}"
            f"{prediction.predicted_cycles:>10}"
            f"{prediction.speedup:>8.2f}x{prediction.trials:>7}  "
            f"{plan_text}"
        )
        if prediction.golden_fallback:
            line += "  [golden fallback]"
        row = rows.get(workload.key)
        if row is not None:
            status = "ok" if row.passed else "OUT OF TOLERANCE"
            line += (
                f"  vs actual {row.actual_cycles} "
                f"({row.error:+.2%}, {status})"
            )
        lines.append(line)
    for key in report.missing_from_baseline:
        lines.append(f"{key}: MISSING from baseline artifact")
    if report.compared:
        verdict = "PASS" if report.passed else "FAIL"
        lines.append(
            f"comparison: {len(report.comparison)} workload(s), "
            f"max |error| {report.max_abs_error:.2%} vs tolerance "
            f"{report.tolerance:.0%} -> {verdict}"
        )
    infeasible = report.infeasible
    if infeasible:
        lines.append(
            f"infeasible capacity plans: {', '.join(infeasible)}"
        )
    return "\n".join(lines)


def render_analysis_sarif(
    report: AnalysisReport, *, indent: int | None = 2
) -> str:
    """The analysis run as one SARIF 2.1.0 log."""
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            sarif_run(
                analysis_diagnostics(report), tool_name="repro-analyze"
            )
        ],
    }
    return json.dumps(log, indent=indent, sort_keys=False)

"""Fact extraction: the dataflow pass behind the cost model.

The facts live on a simple lattice.  For every candidate boundary
symbol the pass derives, per enumeration flow, one of three verdicts
ordered by knowledge::

    DIES(depth)  <  UNRESOLVED  <  SURVIVES

* The **abstract pass** (:func:`divergence_depth`) propagates a
  per-state *divergence probability* through the non-path-independent
  reachable subgraph: seeded at the flow's candidate boundary states
  with probability 1, each step multiplies by the successor's label hit
  probability (taken from the trace symbol histogram, or uniform when
  no trace is available) and joins with ``max`` over parents.  When the
  maximum drops below ``epsilon`` the flow is proven to deactivate and
  the step count is its convergence depth; when the iteration horizon
  is exhausted the verdict stays UNRESOLVED.  Acyclic subgraphs always
  resolve (the probability hits exactly zero at the longest path).
* The optional **concrete refinement** (:func:`refine_with_trials`)
  settles UNRESOLVED flows by replaying the deactivation protocol of
  :mod:`repro.core.scheduler` over the segment's actual bytes: the flow
  and the always-active reference execute side by side and the flow
  dies at the first check offset where their state vectors coincide —
  the same 16-symbol early checks in the first TDM slice and
  slice-granular checks afterwards.

Per-component facts (range width under composition, enumeration-unit
bounds, parent sharing, convergence depth) summarize the same pass for
reporting and for the predictive lint rules.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.automata.analysis import AutomatonAnalysis
from repro.automata.anml import Automaton
from repro.automata.execution import CompiledAutomaton, FlowExecution
from repro.core.enumeration import build_units, unit_count_bound
from repro.core.merging import pack_flows
from repro.core.partitioning import InputSegment
from repro.core.ranges import choose_partition_symbol, enumeration_range
from repro.errors import ConfigurationError

#: Divergence probability below which a flow is declared deactivated.
DIVERGENCE_EPSILON = 0.02

#: Abstract-iteration horizon; unresolved flows beyond it go to trials.
DIVERGENCE_HORIZON = 512

#: Profile window (symbols) for event-rate and occupancy measurement.
PROFILE_WINDOW = 4096

#: Occupancy sampling stride inside the profile window.
PROFILE_STRIDE = 16


@dataclass(frozen=True)
class TraceProfile:
    """Input-side facts measured on a bounded trace prefix.

    ``event_rate`` is reports per symbol over the window;
    ``occupancy[s]`` the fraction of sampled steps state ``s`` was in
    the current set (the probability a boundary guess at ``s`` is
    *true*, which drives flow-invalidation-vector survival).
    """

    window: int
    event_rate: float
    symbol_frequency: tuple[float, ...]
    occupancy: Mapping[int, float]

    def __post_init__(self) -> None:
        if len(self.symbol_frequency) != 256:
            raise ConfigurationError(
                "symbol_frequency must have one entry per byte value"
            )


def uniform_profile() -> TraceProfile:
    """The no-trace profile: uniform bytes, nothing active, no events.

    This is what the predictive lint rules use — they must judge an
    automaton without input data, so every label hit probability
    degrades to ``|label| / 256``.
    """
    return TraceProfile(
        window=0,
        event_rate=0.0,
        symbol_frequency=tuple(1.0 / 256.0 for _ in range(256)),
        occupancy={},
    )


def profile_trace(
    compiled: CompiledAutomaton,
    data: bytes,
    *,
    window: int = PROFILE_WINDOW,
    stride: int = PROFILE_STRIDE,
) -> TraceProfile:
    """Measure event rate and sampled state occupancy on a prefix.

    The histogram covers the *whole* input (it is a single cheap pass);
    only the execution-derived facts are bounded by ``window``.
    """
    if stride < 1:
        raise ConfigurationError("profile stride must be >= 1")
    histogram: Counter[int] = Counter(data)
    total = max(1, len(data))
    frequency = tuple(histogram.get(b, 0) / total for b in range(256))

    span = min(window, len(data))
    execution = FlowExecution(compiled)
    occupancy_counts: Counter[int] = Counter()
    samples = 0
    for index in range(span):
        execution.step(data[index], index)
        if index % stride == 0:
            samples += 1
            for sid in execution.current:
                occupancy_counts[sid] += 1
    rate = len(execution.reports) / span if span else 0.0
    occupancy = {
        sid: count / samples for sid, count in occupancy_counts.items()
    }
    return TraceProfile(
        window=span,
        event_rate=rate,
        symbol_frequency=frequency,
        occupancy=occupancy,
    )


def label_hit_probabilities(
    automaton: Automaton, profile: TraceProfile
) -> tuple[float, ...]:
    """Per-state probability that a profiled symbol matches the label."""
    frequency = profile.symbol_frequency
    probabilities: list[float] = []
    for ste in automaton.states():
        probabilities.append(
            sum(frequency[symbol] for symbol in ste.label)
        )
    return tuple(probabilities)


def divergence_depth(
    members: frozenset[int],
    successors: Sequence[tuple[int, ...]],
    path_independent: frozenset[int],
    hit_probability: Sequence[float],
    *,
    horizon: int = DIVERGENCE_HORIZON,
    epsilon: float = DIVERGENCE_EPSILON,
) -> tuple[bool, int]:
    """Abstract divergence lifetime of one flow.

    Returns ``(resolved, depth)``: ``resolved`` is ``True`` when the
    pass proves the flow's divergent states die out, with ``depth`` the
    symbol count until extinction; ``(False, 0)`` means the abstraction
    cannot kill the flow within ``horizon`` steps (a recurrent
    high-probability cycle) and a concrete trial or SURVIVES verdict is
    needed.
    """
    reachable: set[int] = set()
    stack = [m for m in members if m not in path_independent]
    reachable.update(stack)
    while stack:
        src = stack.pop()
        for dst in successors[src]:
            if dst in path_independent or dst in reachable:
                continue
            reachable.add(dst)
            stack.append(dst)
    if not reachable:
        # Every member is covered by the always-active group: the flow
        # is indistinguishable from the ASG after one symbol.
        return True, 1

    divergence = {m: 1.0 for m in members if m not in path_independent}
    depth = 0
    while divergence and depth < horizon:
        frontier: dict[int, float] = {}
        for src, weight in divergence.items():
            for dst in successors[src]:
                if dst not in reachable:
                    continue
                mass = weight * hit_probability[dst]
                if mass > frontier.get(dst, 0.0):
                    frontier[dst] = mass
        divergence = {
            sid: mass for sid, mass in frontier.items() if mass >= epsilon
        }
        depth += 1
    if divergence:
        return False, 0
    return True, max(1, depth)


@dataclass(frozen=True)
class FlowDivergence:
    """Verdict of the pass for one planned enumeration flow."""

    flow_id: int
    members: frozenset[int]
    resolved: bool
    die_depth: int
    fiv_survival: float
    """Probability the flow holds a *truly active* boundary state
    (from profile occupancy) and hence survives the predecessor's
    flow-invalidation vector."""


@dataclass(frozen=True)
class BoundaryFacts:
    """Facts for one candidate boundary (symbol, offset-zero flag)."""

    symbol: int
    at_offset_zero: bool
    range_width: int
    unit_count: int
    unit_bound: int
    flow_count: int
    asg_initial: frozenset[int]
    flows: tuple[FlowDivergence, ...]

    @property
    def static_survivors(self) -> int:
        """Flows the abstract pass could not deactivate."""
        return sum(1 for flow in self.flows if not flow.resolved)

    @property
    def mean_parent_sharing(self) -> float:
        """Average candidate states merged per flow (Fig. 9's ratio)."""
        if not self.flows:
            return 0.0
        members = sum(len(flow.members) for flow in self.flows)
        return members / len(self.flows)


@dataclass(frozen=True)
class ComponentFacts:
    """Per-connected-component summary at the chosen boundary."""

    component: int
    size: int
    range_width: int
    unit_count: int
    unit_bound: int
    parent_sharing: float
    convergence_depth: int
    recurrent: bool


@dataclass(frozen=True)
class WorkloadFacts:
    """Everything the cost model consumes for one workload."""

    name: str
    num_states: int
    num_components: int
    path_independent: frozenset[int]
    partition_symbol: int
    profile: TraceProfile
    boundaries: Mapping[tuple[int, bool], BoundaryFacts]
    components: tuple[ComponentFacts, ...]

    def boundary(self, symbol: int, at_offset_zero: bool) -> BoundaryFacts:
        return self.boundaries[(symbol, at_offset_zero)]


def boundary_facts(
    automaton: Automaton,
    analysis: AutomatonAnalysis,
    symbol: int,
    at_offset_zero: bool,
    path_independent: frozenset[int],
    hit_probability: Sequence[float],
    profile: TraceProfile,
    successors: Sequence[tuple[int, ...]],
) -> BoundaryFacts:
    range_states = enumeration_range(
        analysis,
        symbol,
        exclude=path_independent,
        boundary_at_offset_zero=at_offset_zero,
    )
    force_singletons = (
        frozenset(automaton.start_of_data_states())
        if at_offset_zero
        else frozenset()
    )
    units = build_units(
        analysis, range_states, force_singletons=force_singletons
    )
    plan = pack_flows(units, range_size=len(range_states))
    occupancy = profile.occupancy
    flows: list[FlowDivergence] = []
    for planned in plan.flows:
        resolved = True
        depth = 0
        for unit in planned.units:
            unit_resolved, unit_depth = divergence_depth(
                unit.members,
                successors,
                path_independent,
                hit_probability,
            )
            if not unit_resolved:
                resolved = False
                break
            depth = max(depth, unit_depth)
        dead_probability = 1.0
        for sid in planned.initial_current():
            dead_probability *= 1.0 - occupancy.get(sid, 0.0)
        flows.append(
            FlowDivergence(
                flow_id=planned.flow_id,
                members=planned.initial_current(),
                resolved=resolved,
                die_depth=depth if resolved else 0,
                fiv_survival=1.0 - dead_probability,
            )
        )
    asg_initial = frozenset(
        sid
        for sid in path_independent
        if symbol in automaton.state(sid).label
    )
    return BoundaryFacts(
        symbol=symbol,
        at_offset_zero=at_offset_zero,
        range_width=len(range_states),
        unit_count=len(units),
        unit_bound=unit_count_bound(analysis, range_states),
        flow_count=len(plan.flows),
        asg_initial=asg_initial,
        flows=tuple(flows),
    )


def _component_facts(
    analysis: AutomatonAnalysis,
    symbol: int,
    path_independent: frozenset[int],
    hit_probability: Sequence[float],
    successors: Sequence[tuple[int, ...]],
) -> tuple[ComponentFacts, ...]:
    range_states = enumeration_range(
        analysis, symbol, exclude=path_independent
    )
    component_of = analysis.component_index()
    components = analysis.connected_components()
    by_component: dict[int, set[int]] = {}
    for sid in range_states:
        by_component.setdefault(component_of[sid], set()).add(sid)
    units = build_units(analysis, range_states)
    units_per_component: Counter[int] = Counter(
        unit.component for unit in units
    )
    members_per_component: Counter[int] = Counter()
    for unit in units:
        members_per_component[unit.component] += len(unit.members)
    facts: list[ComponentFacts] = []
    for cid, members in enumerate(components):
        in_range = frozenset(by_component.get(cid, set()))
        resolved, depth = (
            divergence_depth(
                in_range, successors, path_independent, hit_probability
            )
            if in_range
            else (True, 0)
        )
        unit_count = units_per_component.get(cid, 0)
        facts.append(
            ComponentFacts(
                component=cid,
                size=len(members),
                range_width=len(in_range),
                unit_count=unit_count,
                unit_bound=unit_count_bound(analysis, in_range),
                parent_sharing=(
                    members_per_component.get(cid, 0) / unit_count
                    if unit_count
                    else 0.0
                ),
                convergence_depth=depth,
                recurrent=not resolved,
            )
        )
    return tuple(facts)


def gather_facts(
    automaton: Automaton,
    data: bytes,
    *,
    num_segments: int,
    analysis: AutomatonAnalysis | None = None,
    compiled: CompiledAutomaton | None = None,
    asg_max_depth: int = 0,
    profile: TraceProfile | None = None,
) -> WorkloadFacts:
    """Run the full fact pass for one workload at one segment count.

    Mirrors the planning pipeline of
    :class:`repro.core.pap.ParallelAutomataProcessor` exactly —
    partition-symbol choice, snap-adjusted segmentation, range and unit
    construction — so the derived facts describe the very plan the
    simulator would execute.
    """
    analysis = analysis or AutomatonAnalysis(automaton)
    compiled = compiled or CompiledAutomaton(automaton)
    profile = profile or profile_trace(compiled, data)
    path_independent = analysis.path_independent_states(asg_max_depth)
    hit_probability = label_hit_probabilities(automaton, profile)
    successors = tuple(
        automaton.successors(sid) for sid in range(len(automaton))
    )
    choice = choose_partition_symbol(
        analysis, data, num_segments=num_segments, exclude=path_independent
    )
    boundaries: dict[tuple[int, bool], BoundaryFacts] = {}
    # Offset-zero is only reachable when the first boundary lands at
    # offset 1; derive both variants lazily from the segment plan in
    # the cost model — here we precompute the common case plus the
    # degenerate one when it can occur.
    for at_zero in (False, True):
        boundaries[(choice.symbol, at_zero)] = boundary_facts(
            automaton,
            analysis,
            choice.symbol,
            at_zero,
            path_independent,
            hit_probability,
            profile,
            successors,
        )
    return WorkloadFacts(
        name=automaton.name,
        num_states=len(automaton),
        num_components=len(analysis.connected_components()),
        path_independent=path_independent,
        partition_symbol=choice.symbol,
        profile=profile,
        boundaries=boundaries,
        components=_component_facts(
            analysis,
            choice.symbol,
            path_independent,
            hit_probability,
            successors,
        ),
    )


def deactivation_check_offsets(
    length: int,
    *,
    slice_symbols: int = 256,
    early_check_symbols: int = 16,
) -> tuple[int, ...]:
    """Offsets at which the scheduler compares a flow against the ASG.

    Early checks run every ``early_check_symbols`` within the first TDM
    slice; afterwards the comparison happens at every slice boundary.
    The final offset is always the segment end.
    """
    offsets: list[int] = []
    offset = early_check_symbols
    while offset <= min(slice_symbols, length):
        offsets.append(offset)
        offset += early_check_symbols
    offset = 2 * slice_symbols
    while offset < length:
        offsets.append(offset)
        offset += slice_symbols
    if not offsets or offsets[-1] != length:
        offsets.append(length)
    return tuple(offsets)


def refine_with_trials(
    compiled: CompiledAutomaton,
    data: bytes,
    segment: InputSegment,
    flows: Sequence[FlowDivergence],
    asg_initial: frozenset[int],
    path_independent: frozenset[int],
    *,
    slice_symbols: int = 256,
    early_check_symbols: int = 16,
) -> dict[int, tuple[bool, int]]:
    """Concrete verdicts for flows the abstract pass left UNRESOLVED.

    Replays the scheduler's deactivation protocol on the segment's own
    bytes: each unresolved flow executes next to the shared
    always-active reference and dies at the first check offset where
    the state vectors coincide.  Returns ``flow_id -> (died, depth)``
    where ``depth`` is the deactivation offset (already quantized by
    the check protocol) or the segment length for survivors.
    """
    unresolved = [flow for flow in flows if not flow.resolved]
    if not unresolved:
        return {}
    reference = FlowExecution(
        compiled,
        initial_current=asg_initial,
        persistent=path_independent,
        one_shot=frozenset(),
    )
    trials = [
        FlowExecution(
            compiled,
            initial_current=flow.members | asg_initial,
            persistent=path_independent,
            one_shot=frozenset(),
        )
        for flow in unresolved
    ]
    verdicts: dict[int, tuple[bool, int]] = {}
    alive = [True] * len(trials)
    position = 0
    for offset in deactivation_check_offsets(
        segment.length,
        slice_symbols=slice_symbols,
        early_check_symbols=early_check_symbols,
    ):
        chunk = data[segment.start + position : segment.start + offset]
        reference.run(chunk, segment.start + position)
        expected = reference.state_vector()
        for index, trial in enumerate(trials):
            if not alive[index]:
                continue
            trial.run(chunk, segment.start + position)
            if trial.state_vector() == expected:
                alive[index] = False
                verdicts[unresolved[index].flow_id] = (True, offset)
        position = offset
        if not any(alive):
            break
    for index, flow in enumerate(unresolved):
        verdicts.setdefault(flow.flow_id, (False, segment.length))
    return verdicts

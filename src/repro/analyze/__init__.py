"""Predictive static analysis over compiled automata and segment plans.

``repro.analyze`` is the semantic layer above :mod:`repro.lint`: where
the lint pass *checks* facts post hoc (AP001–AP208), this package
*derives* them and rolls them into predictions and plans:

* :mod:`repro.analyze.facts` — a dataflow/abstract-interpretation pass
  over the NFA and the segment plan: per-component range widths under
  composition, enumeration-unit bounds, flow divergence lifetimes
  (convergence depth), parent sharing, and trace-profile facts.
* :mod:`repro.analyze.cost` — the cycle cost model: an abstract TDM
  interpretation per enumerated segment chained through the paper's
  availability recurrence, predicting enumeration cycles and parallel
  speedup *before* running the simulator.
* :mod:`repro.analyze.planner` — the constructive capacity planner:
  first-fit-decreasing packing of connected components into half-core,
  device, and board budgets that *produces* placements satisfying the
  AP201–AP208 capacity rules by construction.
* :mod:`repro.analyze.report` — prediction-vs-actual comparison against
  committed ``BENCH_*.json`` artifacts with a tolerance gate (the CI
  ``analysis-gate`` job).
"""

from repro.analyze.cost import (
    SegmentPrediction,
    WorkloadPrediction,
    predict_workload,
)
from repro.analyze.facts import (
    BoundaryFacts,
    ComponentFacts,
    FlowDivergence,
    TraceProfile,
    WorkloadFacts,
    divergence_depth,
    gather_facts,
    profile_trace,
)
from repro.analyze.planner import CapacityPlan, HalfCoreBin, plan_capacity
from repro.analyze.report import (
    AnalysisReport,
    ComparisonRow,
    WorkloadAnalysis,
    analyze_workload,
    analyze_suite,
    compare_to_baseline,
)

__all__ = [
    "AnalysisReport",
    "BoundaryFacts",
    "CapacityPlan",
    "ComparisonRow",
    "ComponentFacts",
    "FlowDivergence",
    "HalfCoreBin",
    "SegmentPrediction",
    "TraceProfile",
    "WorkloadAnalysis",
    "WorkloadFacts",
    "WorkloadPrediction",
    "analyze_suite",
    "analyze_workload",
    "compare_to_baseline",
    "divergence_depth",
    "gather_facts",
    "plan_capacity",
    "predict_workload",
    "profile_trace",
]
